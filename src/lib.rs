//! # PushdownDB
//!
//! A from-scratch Rust reproduction of *"PushdownDB: Accelerating a DBMS
//! using S3 Computation"* (Yu et al., ICDE 2020), including the simulated
//! S3 + S3 Select substrate the experiments run against.
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`common`] — values, schemas, pricing, the analytical performance model
//! * [`sql`] — the S3 Select SQL dialect (lexer/parser/binder/evaluator)
//! * [`s3`] — the simulated object store
//! * [`format`](mod@format) — CSV and ColumnarLite (Parquet-like) formats
//! * [`select`] — the S3 Select engine
//! * [`bloom`] — Bloom filters with SQL predicate generation
//! * [`core`] — the PushdownDB engine: operators and the paper's algorithms
//! * [`tpch`] — TPC-H generator, synthetic workloads, and the paper's queries
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or run `cargo run --release --example
//! quickstart`.

pub use pushdown_bloom as bloom;
pub use pushdown_common as common;
pub use pushdown_core as core;
pub use pushdown_format as format;
pub use pushdown_s3 as s3;
pub use pushdown_select as select;
pub use pushdown_sql as sql;
pub use pushdown_tpch as tpch;
