//! # PushdownDB
//!
//! A from-scratch Rust reproduction of *"PushdownDB: Accelerating a DBMS
//! using S3 Computation"* (Yu et al., ICDE 2020), including the simulated
//! S3 + S3 Select substrate the experiments run against.
//!
//! ## Workspace layout
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`common`] — values, schemas, rows and [`common::row::RowBatch`]es,
//!   pricing, the cost ledger, the analytical performance model
//! * [`sql`] — the S3 Select SQL dialect (lexer/parser/binder/evaluator)
//! * [`cache`] — the hybrid tier's cost-aware segment cache
//! * [`s3`] — the simulated object store (with the cache's read-through
//!   path)
//! * [`format`](mod@format) — CSV and ColumnarLite (Parquet-like) formats
//! * [`select`] — the S3 Select engine
//! * [`bloom`] — Bloom filters with SQL predicate generation
//! * [`core`] — the PushdownDB engine: streaming scans, operators, the
//!   paper's algorithms, and the scatter-gather cluster
//! * [`tpch`] — TPC-H generator, synthetic workloads, and the paper's
//!   queries
//!
//! The external dependencies the sources use (`bytes`, `parking_lot`,
//! `rand`, `proptest`, `criterion`) are vendored as minimal shims under
//! `crates/shims/` so the workspace builds with **no network access**;
//! swap the `[workspace.dependencies]` entries for the real crates when a
//! registry is available.
//!
//! ## Batched streaming execution
//!
//! Scans decode partitions on a bounded worker pool and hand rows to the
//! operators as fixed-capacity [`common::row::RowBatch`]es, **in
//! partition order** (deterministic results). Filters, aggregations,
//! joins and top-K consume batches incrementally through the state
//! machines in [`core::ops`], so a query pipeline holds its *state* (a
//! K-heap, group accumulators, a join build table, the matches) plus
//! the in-flight rows — `O(scan_threads × batch_rows)` for plain scans,
//! the billed response subset for select scans — never a whole
//! materialized table. `QueryContext::batch_rows` tunes the batch
//! capacity; `QueryContext::scan_threads` the pool width. Cost accounting
//! is batching-invariant: the `CostLedger` and per-query `PhaseStats`
//! charge exactly what the materializing engine charged.
//!
//! ## Cost-based adaptive strategy selection
//!
//! The paper takes the algorithm choice as an explicit input (§VIII);
//! this repo's planner can also choose for itself. `Strategy::Adaptive`
//! ([`core::planner`]) enumerates every applicable algorithm family,
//! predicts each candidate's billable `Usage` and runtime analytically
//! from catalog statistics ([`core::catalog::TableStats`], gathered for
//! free at load time and refreshable with a striped `LIMIT` Select
//! probe, [`core::catalog::probe_stats`]), and executes the cheapest by
//! predicted dollars. Predictions reuse the *same*
//! [`common::perf::PerfModel`] and [`common::pricing::Pricing`] that
//! score measurements ([`core::cost`]), and
//! [`core::planner::execute_sql_verbose`] returns the EXPLAIN surface:
//! every candidate's predicted cost plus a predicted-vs-actual
//! breakdown per phase ([`core::planner::Explain::report`]).
//!
//! ```no_run
//! use pushdowndb::core::planner::execute_sql_verbose;
//! use pushdowndb::core::Strategy;
//! # fn demo(ctx: &pushdowndb::core::QueryContext, table: &pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! let sql = "SELECT id, balance FROM accounts WHERE balance < -990";
//! let (out, explain) = execute_sql_verbose(ctx, table, sql, Strategy::Adaptive)?;
//! println!("{}", explain.report(&out, ctx)); // candidates + predicted vs actual
//! # Ok(()) }
//! ```
//!
//! ## Multi-table SQL & the physical-plan IR
//!
//! Every query lowers to a physical plan ([`core::plan`]) — scan leaves
//! per table (`PushdownScan`/`LocalScan`), hash/Bloom joins, residual
//! filter, project, group-by, multi-key sort and limit — driven by one
//! executor, with the paper's single-table algorithm families
//! participating as leaf operators. The client dialect
//! ([`sql::parse_query`]) accepts equi-`JOIN ... ON` chains, multi-key
//! `ORDER BY`, and ordering GROUP BY results by an aggregate's alias.
//! The primary table is still passed explicitly (`execute_sql*`
//! signatures are unchanged); JOIN tables resolve by name through the
//! context's [`core::Catalog`]:
//!
//! ```no_run
//! use pushdowndb::core::planner::execute_sql_verbose;
//! use pushdowndb::core::Strategy;
//! # fn demo(ctx: &pushdowndb::core::QueryContext,
//! #         customer: &pushdowndb::core::Table, orders: pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! ctx.catalog.register(orders); // or QueryContext::with_tables(...)
//! let sql = "SELECT o_orderdate, SUM(o_totalprice) AS revenue \
//!            FROM customer JOIN orders ON c_custkey = o_custkey \
//!            WHERE c_mktsegment = 'BUILDING' \
//!            GROUP BY o_orderdate ORDER BY revenue DESC LIMIT 10";
//! let (out, explain) = execute_sql_verbose(ctx, customer, sql, Strategy::Adaptive)?;
//! // The report renders the operator tree with per-node predicted vs
//! // actual; Adaptive weighed every join × per-scan-pushdown candidate
//! // ("baseline", "filtered", "build-push", "probe-push", "bloom").
//! println!("{}", explain.report(&out, ctx));
//! # Ok(()) }
//! ```
//!
//! ## The hybrid caching tier
//!
//! Repeated queries stop re-billing S3 for the same bytes: a
//! cost-aware **segment cache** ([`cache::SegmentCache`], installed
//! with [`core::QueryContext::with_cache`]) sits between the engine and
//! the store. Hits bill zero requests/bytes (they appear as
//! `PhaseStats::cache_bytes`, local scan + parse time only); misses
//! fill through the uniform retry policy and bill exactly once;
//! `put_object`/`delete_object` invalidate overlapping segments with an
//! epoch tag so in-flight fills can never publish stale bytes. Eviction
//! is weighted LFU by **dollars saved per byte** under the current
//! [`common::pricing::Pricing`]. The adaptive planner prices
//! cached-local vs pushdown vs remote-full **per scan** (the
//! [`core::plan`] IR gains a `CachedScan` leaf; joined queries add the
//! all-`cached` and mixed `cached-build` candidates), and
//! `Explain::report` shows a `cache:` hit/fill line plus per-node
//! splits in the operator tree.
//!
//! ```no_run
//! use pushdowndb::core::planner::execute_sql_verbose;
//! use pushdowndb::core::{execute_sql, Strategy};
//! # fn demo(ctx: pushdowndb::core::QueryContext, table: &pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! let ctx = ctx.with_cache(256 << 20); // budget knob: 256 MiB
//! let sql = "SELECT g, SUM(v) FROM t GROUP BY g";
//! let _warm = execute_sql(&ctx, table, sql, Strategy::Adaptive)?; // fills
//! let (out, explain) = execute_sql_verbose(&ctx, table, sql, Strategy::Adaptive)?;
//! println!("{}", explain.report(&out, &ctx)); // cached-local candidate + cache: line
//! assert_eq!(out.billed.plain_bytes, 0);      // warm hits bill nothing
//! // Force the cached tier end to end (fills cold, hits warm):
//! let forced = ctx.clone().with_cache_reads(true);
//! let _same_rows = execute_sql(&forced, table, sql, Strategy::Baseline)?;
//! # Ok(()) }
//! ```
//!
//! ### The tiered, chunk-granular cache
//!
//! The cache is two-tiered: a RAM tier in front of a larger on-disk
//! tier (own budget, read at [`common::perf::PerfParams::disk_read_bw`]
//! vs the mem tier's `cache_read_bw`). Segments are **chunks** — one
//! per ColumnarLite row group, fixed byte blocks for CSV
//! ([`core::QueryContext::with_cache_chunk_bytes`]) — so a partially
//! resident object serves its cached chunks from their tier and range-
//! GETs only the **coalesced gaps**: gap bytes bill exactly once, hits
//! bill nothing. Mem evictions *demote* to disk instead of dropping;
//! disk hits *promote* back when they fit; both tiers run the same
//! dollars-saved-per-byte eviction, and the planner prices cached scans
//! per segment per tier from live [`cache::SegmentCache::occupancy`].
//!
//! ```no_run
//! use pushdowndb::core::{execute_sql, Strategy};
//! # fn demo(ctx: pushdowndb::core::QueryContext, table: &pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! // Two budget knobs: 256 MiB of RAM in front of 4 GiB of disk.
//! let ctx = ctx.with_cache_tiers(256 << 20, 4u64 << 30);
//! let sql = "SELECT g, SUM(v) FROM t GROUP BY g";
//! let _cold = execute_sql(&ctx, table, sql, Strategy::Adaptive)?; // fills
//! let warm = execute_sql(&ctx, table, sql, Strategy::Adaptive)?;
//! assert_eq!(warm.billed.plain_bytes, 0); // demoted segments still serve locally
//! let s = ctx.cache().unwrap().stats();   // demotions, promotions, disk_hits, …
//! println!("mem {} B / disk {} B resident", s.used_bytes, s.disk_used_bytes);
//! # Ok(()) }
//! ```
//!
//! ### Persistence: the disk tier survives restarts
//!
//! [`core::QueryContext::with_cache_dir`] composes with the tier
//! budgets above to back the disk tier with a **file-backed segment
//! store** (per-shard segment files guarded by a checksummed, epoch-
//! tagged manifest; segment bytes fsync *before* the manifest record
//! that references them — see the `store` module of `pushdown-cache`).
//! A fresh context pointed at the same directory recovers whatever the
//! previous process left durable: manifest replayed, every segment
//! checksum-verified against the live store, disk tier warm, mem tier
//! cold — so segments disk-resident at shutdown bill **zero** remote
//! bytes again. [`cache::SegmentCache::recover_with`] additionally
//! takes a seeded [`cache::KillPlan`] for deterministic
//! crash-injection at the Nth fsync.
//!
//! ```no_run
//! use pushdowndb::core::{execute_sql, QueryContext, Strategy};
//! # fn demo(ctx: pushdowndb::core::QueryContext, table: &pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! // Budgets first, then the directory: the two compose.
//! let ctx = ctx
//!     .with_cache_tiers(256 << 20, 4u64 << 30)
//!     .with_cache_dir("/var/tmp/pushdowndb-cache")?;
//! let sql = "SELECT g, SUM(v) FROM t GROUP BY g";
//! let _ = execute_sql(&ctx, table, sql, Strategy::Adaptive)?; // warms + persists
//! let store = ctx.store.clone();
//! drop(ctx); // "process exit"
//! let ctx = QueryContext::new(store)
//!     .with_cache_tiers(256 << 20, 4u64 << 30)
//!     .with_cache_dir("/var/tmp/pushdowndb-cache")?; // recovers the warm tier
//! assert!(ctx.cache().unwrap().stats().recovered_segments > 0);
//! # Ok(()) }
//! ```
//!
//! ## The scatter-gather cluster
//!
//! [`core::QueryContext::with_nodes`] attaches an N-node cluster
//! ([`core::Cluster`]): partitions are consistent-hashed across the
//! nodes, each with its own child ledger, virtual clock and cache slice
//! (install the cache *first* to split the budget). The plan IR gains
//! `Exchange`/`Gather`/`Repartition` operators; scan leaves scatter to
//! their owning nodes and partial aggregate states repartition by
//! group-key hash, so rows stay **bit-identical to the serial run at
//! any node count** while the bill decomposes exactly three ways:
//! store-global = Σ node ledgers = Σ per-query bills. `Adaptive` prices
//! the scattered plan on reserved-cluster dollars (every node, the
//! query's wall time) and scatters only when that wins — typically when
//! warm per-node cache slices shave billable bytes. Node-failure chaos
//! is seed-replayable per node (`Cluster::node_salt`); retries bill
//! extra requests, bytes exactly once.
//!
//! ```no_run
//! use pushdowndb::core::{execute_sql, Strategy};
//! use pushdowndb::s3::FaultPlan;
//! # fn demo(ctx: pushdowndb::core::QueryContext, table: &pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! let ctx = ctx.with_cache(64 << 20).with_nodes(4); // 16 MiB slice per node
//! let sql = "SELECT o_orderdate, SUM(o_totalprice) AS revenue \
//!            FROM customer JOIN orders ON c_custkey = o_custkey \
//!            GROUP BY o_orderdate ORDER BY revenue DESC LIMIT 10";
//! let out = execute_sql(&ctx, table, sql, Strategy::Adaptive)?; // == serial rows
//! for ns in ctx.cluster.as_ref().unwrap().snapshots() {
//!     println!("node {}: {:?}, exchanged {} B", ns.node, ns.usage, ns.exchange_bytes);
//! }
//! // Seed-replayable node failures: same seed + salt ⇒ same fault sites.
//! ctx.store.set_fault_plan(Some(FaultPlan::new(7, 0.3)));
//! let retried = execute_sql(&ctx.scoped_with_salt(9), table, sql, Strategy::Pushdown)?;
//! assert_eq!(retried.rows, out.rows); // bytes billed once, retries are requests
//! # Ok(()) }
//! ```
//!
//! ## Concurrent use, ledger scoping & chaos
//!
//! One [`core::QueryContext`] (and its engine) is safely shared by many
//! concurrent queries. Per-query accounting is **scoped**: every planner
//! entry point and algorithm family runs in [`core::QueryContext::scoped`],
//! billing a [`common::CostLedger::child`] that rolls up atomically into
//! the store-global ledger — [`core::QueryOutput::billed`] is the exact
//! per-query AWS bill under any interleaving, and the store-global delta
//! always equals the sum of the children (pinned by `tests/concurrency.rs`
//! at 8-way concurrency).
//!
//! Fault injection is a seeded per-request policy
//! ([`s3::FaultPlan`] via [`s3::S3Store::set_fault_plan`]): faults are a
//! pure function of `(seed, scope salt, key, per-key ordinal)`, so the
//! same seed yields the same fault sites single-threaded or parallel; a
//! failure prints `seed=… salt=… key=… ordinal=…` and is replayed by
//! installing the same plan and scoping with the same salt
//! ([`core::QueryContext::scoped_with_salt`]). All request paths —
//! whole-object, range, multi-range and Select — retry transient faults
//! under one uniform bounded-backoff [`common::RetryPolicy`]
//! (`QueryContext::retry`); each attempt bills a request, bytes bill
//! once, and backoff advances the scope's virtual clock
//! ([`s3::S3Store::virtual_time_s`]). The seeded workload harness
//! (`pushdown_bench::workload`, `fig13_concurrency`) drives mixed TPC-H
//! streams at configurable concurrency and reports throughput,
//! per-query dollars and virtual-time latency percentiles.
//!
//! ```no_run
//! use pushdowndb::core::{execute_sql, Strategy};
//! # fn demo(ctx: &pushdowndb::core::QueryContext, table: &pushdowndb::core::Table)
//! # -> pushdowndb::common::Result<()> {
//! let qctx = ctx.scoped(); // one child-ledger scope per query
//! let out = execute_sql(&qctx, table, "SELECT * FROM t WHERE id < 10", Strategy::Adaptive)?;
//! assert_eq!(out.billed, qctx.billed()); // exact, concurrency-safe bill
//! # Ok(()) }
//! ```
//!
//! ## Quickstart
//!
//! Build and verify everything (tier-1 gate):
//!
//! ```text
//! cargo build --release && cargo test -q
//! ```
//!
//! Then see `examples/quickstart.rs`, or run `cargo run --release
//! --example quickstart`.

pub use pushdown_bloom as bloom;
pub use pushdown_cache as cache;
pub use pushdown_common as common;
pub use pushdown_core as core;
pub use pushdown_format as format;
pub use pushdown_s3 as s3;
pub use pushdown_select as select;
pub use pushdown_sql as sql;
pub use pushdown_tpch as tpch;
