//! The §VI group-by experiment in miniature: a Zipf-skewed table
//! aggregated by all four algorithms — server-side, filtered, S3-side
//! (CASE-WHEN rewrite) and hybrid (populous groups at S3, tail at the
//! server).
//!
//! ```sh
//! cargo run --release --example hybrid_groupby
//! ```

use pushdowndb::common::fmtutil;
use pushdowndb::core::algos::groupby::{self, GroupByQuery, HybridOptions};
use pushdowndb::core::{upload_csv_table, QueryContext};
use pushdowndb::s3::S3Store;
use pushdowndb::sql::agg::AggFunc;
use pushdowndb::tpch::synthetic::zipf_group_table;

fn main() -> pushdowndb::common::Result<()> {
    let ctx = QueryContext::new(S3Store::new());
    let (schema, rows) = zipf_group_table(30_000, 1.3, 7);
    let table = upload_csv_table(&ctx.store, "demo", "zipf", &schema, &rows, 8_000)?;
    let factor = 10e9 / table.total_bytes(&ctx.store) as f64; // paper's 10 GB

    let q = GroupByQuery {
        table,
        group_cols: vec!["g0".into()],
        aggs: vec![(AggFunc::Sum, "v0".into()), (AggFunc::Count, "v0".into())],
        predicate: None,
    };

    let runs = [
        ("server-side", groupby::server_side(&ctx, &q)?),
        ("filtered   ", groupby::filtered(&ctx, &q)?),
        ("s3-side    ", groupby::s3_side(&ctx, &q)?),
        (
            "hybrid     ",
            groupby::hybrid(&ctx, &q, HybridOptions::default())?,
        ),
    ];
    println!("group-by over 100 zipf(θ=1.3) groups, projected to 10 GB:");
    for (name, out) in &runs {
        let m = out.metrics.scaled(factor);
        println!(
            "  {name}: {} groups, runtime {}, cost {}, wire {}",
            out.rows.len(),
            fmtutil::secs(m.runtime(&ctx.model)),
            fmtutil::dollars(m.cost(&ctx.model, &ctx.pricing).total()),
            fmtutil::bytes(m.bytes_returned()),
        );
    }
    // All four agree on the four biggest groups.
    println!("\nlargest groups (group, sum, count):");
    let mut by_count = runs[0].1.rows.clone();
    by_count.sort_by(|a, b| b[2].total_cmp(&a[2]));
    for r in by_count.iter().take(4) {
        println!("  {:?}", r.values());
    }
    Ok(())
}
