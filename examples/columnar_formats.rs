//! The §IX format experiment in miniature: the same table stored as CSV
//! and as ColumnarLite (the Parquet substitute), queried through S3
//! Select with narrow and wide projections.
//!
//! ```sh
//! cargo run --release --example columnar_formats
//! ```

use pushdowndb::common::fmtutil;
use pushdowndb::core::scan::select_scan;
use pushdowndb::core::{upload_columnar_table, upload_csv_table, QueryContext};
use pushdowndb::format::columnar::WriterOptions;
use pushdowndb::s3::S3Store;
use pushdowndb::sql::parse_select;
use pushdowndb::tpch::synthetic::wide_float_table;

fn main() -> pushdowndb::common::Result<()> {
    let ctx = QueryContext::new(S3Store::new());
    let (schema, rows) = wide_float_table(30_000, 20, 11);
    let csv = upload_csv_table(&ctx.store, "demo", "wide_csv", &schema, &rows, 8_000)?;
    let clt = upload_columnar_table(
        &ctx.store,
        "demo",
        "wide_clt",
        &schema,
        &rows,
        8_000,
        WriterOptions::default(),
    )?;
    println!(
        "same 20-column table: CSV {} vs ColumnarLite {} ({:.0}% of CSV)",
        fmtutil::bytes(csv.total_bytes(&ctx.store)),
        fmtutil::bytes(clt.total_bytes(&ctx.store)),
        100.0 * clt.total_bytes(&ctx.store) as f64 / csv.total_bytes(&ctx.store) as f64,
    );

    for sql in [
        "SELECT c0 FROM S3Object WHERE c0 < 0.01", // narrow + selective
        "SELECT * FROM S3Object WHERE c0 < 0.5",   // wide + unselective
    ] {
        let stmt = parse_select(sql)?;
        let a = select_scan(&ctx, &csv, &stmt)?;
        let b = select_scan(&ctx, &clt, &stmt)?;
        assert_eq!(a.rows.len(), b.rows.len());
        println!(
            "\n{sql}\n  csv:      scanned {}, returned {}\n  columnar: scanned {}, returned {}",
            fmtutil::bytes(a.stats.s3_scanned_bytes),
            fmtutil::bytes(a.stats.select_returned_bytes),
            fmtutil::bytes(b.stats.s3_scanned_bytes),
            fmtutil::bytes(b.stats.select_returned_bytes),
        );
    }
    println!("\nnote: S3 Select returns CSV either way (paper §IX) — the");
    println!("columnar win exists only while the scan, not the transfer, dominates.");
    Ok(())
}
