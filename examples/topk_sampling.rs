//! The §VII top-K experiment in miniature: server-side heap vs the
//! two-phase sampling algorithm, including the analytic optimal sample
//! size `S* = sqrt(K·N/α)`.
//!
//! ```sh
//! cargo run --release --example topk_sampling
//! ```

use pushdowndb::common::fmtutil;
use pushdowndb::core::algos::topk::{self, optimal_sample_size, TopKQuery};
use pushdowndb::tpch::tpch_context;

fn main() -> pushdowndb::common::Result<()> {
    let (ctx, t) = tpch_context(0.005, 4_000)?;
    let k = 10;
    let q = TopKQuery {
        table: t.lineitem.clone(),
        order_col: "l_extendedprice".into(),
        k,
        asc: true,
    };
    let n = t.lineitem.row_count;
    let alpha = 1.0 / t.lineitem.schema.len() as f64;
    println!(
        "lineitem: {n} rows; K = {k}; analytic optimal sample size S* = {}",
        optimal_sample_size(k, n, alpha)
    );

    let server = topk::server_side(&ctx, &q)?;
    let sampled = topk::sampling(&ctx, &q, None)?;

    println!("\ncheapest {k} lineitems by l_extendedprice (both algorithms agree):");
    for (a, b) in server.rows.iter().zip(&sampled.rows) {
        assert_eq!(a[5], b[5], "order keys must agree");
        println!("  order {:?} price {:?}", a[0], a[5]);
    }

    for (name, out) in [("server-side", &server), ("sampling  ", &sampled)] {
        println!(
            "{name}: runtime {}, wire {}",
            fmtutil::secs(out.runtime(&ctx)),
            fmtutil::bytes(out.metrics.bytes_returned()),
        );
    }
    println!(
        "\nsampling phases: {:?}",
        sampled
            .metrics
            .phase_seconds(&ctx.model)
            .iter()
            .map(|(l, s)| format!("{l}: {}", fmtutil::secs(*s)))
            .collect::<Vec<_>>()
    );
    Ok(())
}
