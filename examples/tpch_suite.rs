//! Run the paper's TPC-H suite (Q1, Q3, Q6, Q14, Q17, Q19) in both
//! configurations and print the Fig-10-style comparison.
//!
//! ```sh
//! cargo run --release --example tpch_suite [scale_factor]
//! ```

use pushdowndb::common::fmtutil;
use pushdowndb::tpch::{all_queries, tpch_context, Mode};

fn main() -> pushdowndb::common::Result<()> {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    let (ctx, t) = tpch_context(sf, 10_000)?;
    let f = 10.0 / sf;
    println!("TPC-H at SF {sf} (metrics projected to the paper's SF 10):\n");
    let mut speedups = Vec::new();
    for (name, q) in all_queries() {
        let base = q(&ctx, &t, Mode::Baseline)?;
        let opt = q(&ctx, &t, Mode::Optimized)?;
        let bt = base.metrics.scaled(f).runtime(&ctx.model);
        let ot = opt.metrics.scaled(f).runtime(&ctx.model);
        speedups.push(bt / ot);
        println!(
            "{name}: baseline {} -> optimized {}  ({:.1}x)   first row: {:?}",
            fmtutil::secs(bt),
            fmtutil::secs(ot),
            bt / ot,
            opt.rows.first().map(|r| r.values()),
        );
    }
    println!(
        "\ngeo-mean speedup: {:.1}x (paper: 6.7x)",
        fmtutil::geo_mean(&speedups)
    );
    Ok(())
}
