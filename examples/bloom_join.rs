//! The paper's §V join experiment in miniature: the Listing 2 query
//! (`SUM(o_totalprice)` over customer ⋈ orders) under the baseline,
//! filtered, and Bloom join algorithms, including the Bloom SQL predicate
//! actually shipped to (simulated) S3.
//!
//! ```sh
//! cargo run --release --example bloom_join
//! ```

use pushdowndb::bloom::BloomFilter;
use pushdowndb::common::fmtutil;
use pushdowndb::core::algos::join::{self, BloomOutcome, JoinQuery};
use pushdowndb::sql::parse_expr;
use pushdowndb::tpch::tpch_context;

fn main() -> pushdowndb::common::Result<()> {
    let (ctx, t) = tpch_context(0.005, 2_000)?;
    let q = JoinQuery {
        left: t.customer.clone(),
        right: t.orders.clone(),
        left_key: "c_custkey".into(),
        right_key: "o_custkey".into(),
        left_pred: Some(parse_expr("c_acctbal <= -950")?),
        right_pred: None,
        left_proj: vec!["c_custkey".into()],
        right_proj: vec!["o_totalprice".into()],
        sum_column: Some("o_totalprice".into()),
    };

    // Show what a Bloom probe predicate looks like on the wire
    // (paper Listing 1).
    let mut demo = BloomFilter::with_geometry(68, 1, 5);
    demo.insert(42);
    println!(
        "a 1-hash Bloom probe, as shipped to S3 Select:\n  {}\n",
        demo.sql_predicate("o_custkey")
    );

    let f = 10.0 / t.scale_factor; // project to the paper's SF 10
    let base = join::baseline(&ctx, &q)?;
    let filt = join::filtered(&ctx, &q)?;
    let (bloom, outcome) = join::bloom_with_outcome(&ctx, &q, 0.01)?;

    println!("join algorithms on SUM(o_totalprice), projected to SF 10:");
    for (name, out) in [
        ("baseline", &base),
        ("filtered", &filt),
        ("bloom   ", &bloom),
    ] {
        let m = out.metrics.scaled(f);
        println!(
            "  {name}: answer {:?}, runtime {}, cost {}, bytes over the wire {}",
            out.rows[0][0],
            fmtutil::secs(m.runtime(&ctx.model)),
            fmtutil::dollars(m.cost(&ctx.model, &ctx.pricing).total()),
            fmtutil::bytes(m.bytes_returned()),
        );
    }
    match outcome {
        BloomOutcome::Applied { fpr, bits, hashes } => println!(
            "\nbloom filter: fpr {fpr}, {bits} bits as a '0'/'1' string, {hashes} hash functions"
        ),
        other => println!("\nbloom outcome: {other:?}"),
    }
    Ok(())
}
