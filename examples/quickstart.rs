//! Quickstart: stand up the simulated S3 + S3 Select substrate, load a
//! table, run the same filter query three ways — exactly the §IV
//! experiment of the paper, in miniature — then let the cost-based
//! optimizer (`Strategy::Adaptive`, beyond the paper) pick the plan
//! itself and explain its decision.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pushdowndb::common::{fmtutil, DataType, Row, Schema, Value};
use pushdowndb::core::algos::filter::{self, FilterQuery};
use pushdowndb::core::planner::execute_sql_verbose;
use pushdowndb::core::{build_index, upload_csv_table, QueryContext, Strategy};
use pushdowndb::s3::S3Store;
use pushdowndb::select::InputFormat;
use pushdowndb::sql::parse_expr;

fn main() -> pushdowndb::common::Result<()> {
    // 1. A simulated S3 with a partitioned CSV table.
    let store = S3Store::new();
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("city", DataType::Str),
        ("balance", DataType::Float),
    ]);
    let rows: Vec<Row> = (0..10_000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Str(["tokyo", "zurich", "boston", "madrid"][(i % 4) as usize].into()),
                Value::Float((i as f64 * 7.7) % 2000.0 - 1000.0),
            ])
        })
        .collect();
    let ctx = QueryContext::new(store);
    let table = upload_csv_table(&ctx.store, "demo", "accounts", &schema, &rows, 2_500)?;

    // 2. Talk to S3 Select directly, like a client would.
    let resp = ctx.engine.select(
        "demo",
        "accounts/part-00000.csv",
        "SELECT COUNT(*), AVG(balance), MIN(balance) FROM S3Object WHERE balance < 0",
        &schema,
        InputFormat::Csv,
    )?;
    println!("S3 Select says: {:?}", resp.rows()?[0]);
    println!(
        "  (scanned {}, returned {})",
        fmtutil::bytes(resp.stats.bytes_scanned),
        fmtutil::bytes(resp.stats.bytes_returned)
    );

    // 3. Run a filter query under each strategy of paper §IV and compare
    //    modeled runtime + dollar cost.
    let q = FilterQuery {
        table: table.clone(),
        predicate: parse_expr("id < 40")?,
        projection: Some(vec!["id".into(), "balance".into()]),
    };
    let index = build_index(&ctx, &table, "id")?;

    println!("\nfilter `id < 40` ({} matching rows):", 40);
    for (name, out) in [
        ("server-side", filter::server_side(&ctx, &q)?),
        ("s3-side    ", filter::s3_side(&ctx, &q)?),
        ("indexed    ", filter::indexed(&ctx, &index, &q)?),
    ] {
        println!(
            "  {name}: {} rows, modeled runtime {}, cost {}",
            out.rows.len(),
            fmtutil::secs(out.runtime(&ctx)),
            fmtutil::dollars(out.cost(&ctx).total()),
        );
    }

    // 4. Or let the cost-based optimizer choose. The loader gathered
    //    column statistics (min/max/NDV/null fraction/width) for free at
    //    upload time; `Strategy::Adaptive` predicts every candidate's
    //    footprint from them — priced by the same models that score the
    //    measurement — and executes the argmin. The EXPLAIN surface
    //    shows every candidate and predicted-vs-actual per phase.
    let sql = "SELECT id, balance FROM accounts WHERE balance < -990";
    let (out, explain) = execute_sql_verbose(&ctx, &table, sql, Strategy::Adaptive)?;
    println!("\nadaptive: {sql}\n{}", explain.report(&out, &ctx));
    Ok(())
}
