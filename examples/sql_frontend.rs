//! PushdownDB's SQL front-end (paper §III: "a minimal optimizer and an
//! executor"): run client-dialect SQL against a TPC-H table under both
//! strategies and watch what the optimizer ships to S3.
//!
//! ```sh
//! cargo run --release --example sql_frontend
//! cargo run --release --example sql_frontend "SELECT * FROM orders ORDER BY o_totalprice DESC LIMIT 5"
//! ```

use pushdowndb::common::fmtutil;
use pushdowndb::core::planner::{execute_sql_explained, Strategy};
use pushdowndb::tpch::tpch_context;

fn main() -> pushdowndb::common::Result<()> {
    let (ctx, t) = tpch_context(0.005, 5_000)?;
    let user_query: Option<String> = std::env::args().nth(1);
    let queries: Vec<String> = match user_query {
        Some(q) => vec![q],
        None => vec![
            "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice < 1500".into(),
            "SELECT SUM(o_totalprice), COUNT(*) FROM orders WHERE o_orderdate < DATE '1995-01-01'".into(),
            "SELECT o_orderpriority, SUM(o_totalprice), COUNT(*) FROM orders GROUP BY o_orderpriority".into(),
            "SELECT * FROM orders ORDER BY o_totalprice ASC LIMIT 3".into(),
        ],
    };
    for sql in queries {
        println!("\nSQL> {sql}");
        for strategy in [Strategy::Baseline, Strategy::Pushdown] {
            let (out, plan) = execute_sql_explained(&ctx, &t.orders, &sql, strategy)?;
            println!(
                "  {:?} -> {plan}: {} rows, modeled {}, wire {}",
                strategy,
                out.rows.len(),
                fmtutil::secs(out.runtime(&ctx)),
                fmtutil::bytes(out.metrics.bytes_returned()),
            );
            if out.rows.len() <= 5 {
                for r in &out.rows {
                    println!("    {:?}", r.values());
                }
            }
        }
    }
    Ok(())
}
