//! PushdownDB's SQL front-end (paper §III: "a minimal optimizer and an
//! executor"): run client-dialect SQL — single-table shapes and
//! multi-table `JOIN ... ON` — against the TPC-H dataset under each
//! strategy, and watch what the optimizer ships to S3.
//!
//! ```sh
//! cargo run --release --example sql_frontend
//! cargo run --release --example sql_frontend "SELECT * FROM orders ORDER BY o_totalprice DESC LIMIT 5"
//! ```
//!
//! The primary FROM table of each statement resolves by name through
//! the context catalog (`tpch_context` registers all eight tables), so
//! any TPC-H table — joined or not — works on the command line.

use pushdowndb::common::fmtutil;
use pushdowndb::core::planner::{execute_sql_verbose, Strategy};
use pushdowndb::sql::parse_query;
use pushdowndb::tpch::tpch_context;

fn main() -> pushdowndb::common::Result<()> {
    let (ctx, _t) = tpch_context(0.005, 5_000)?;
    let user_query: Option<String> = std::env::args().nth(1);
    let queries: Vec<String> = match user_query {
        Some(q) => vec![q],
        None => vec![
            "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice < 1500".into(),
            "SELECT SUM(o_totalprice), COUNT(*) FROM orders \
             WHERE o_orderdate < DATE '1995-01-01'"
                .into(),
            "SELECT o_orderpriority, SUM(o_totalprice), COUNT(*) FROM orders \
             GROUP BY o_orderpriority"
                .into(),
            "SELECT * FROM orders ORDER BY o_totalprice ASC LIMIT 3".into(),
            // TPC-H Q3-shaped: one composed physical plan — filter +
            // equi-join + group-by + multi-key order-by (by the
            // aggregate's alias) + limit.
            "SELECT o_orderdate, o_shippriority, SUM(o_totalprice) AS revenue \
             FROM customer JOIN orders ON c_custkey = o_custkey \
             WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' \
             GROUP BY o_orderdate, o_shippriority \
             ORDER BY revenue DESC, o_orderdate LIMIT 5"
                .into(),
        ],
    };
    for sql in queries {
        println!("\nSQL> {sql}");
        // The planner's entry points take the primary table explicitly;
        // look it up from the statement's FROM clause.
        let from = parse_query(&sql)?.from;
        let table = ctx
            .catalog
            .resolve(&from)
            .ok_or_else(|| pushdowndb::common::Error::Bind(format!("unknown table `{from}`")))?;
        for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
            let (out, explain) = execute_sql_verbose(&ctx, &table, &sql, strategy)?;
            println!(
                "  {:?} -> {}: {} rows, modeled {}, wire {}",
                strategy,
                explain.kind,
                out.rows.len(),
                fmtutil::secs(out.runtime(&ctx)),
                fmtutil::bytes(out.metrics.bytes_returned()),
            );
            // The adaptive run shows the full EXPLAIN surface: candidate
            // costs, per-phase prediction, the operator tree.
            if strategy == Strategy::Adaptive {
                for line in explain.report(&out, &ctx).lines() {
                    println!("    {line}");
                }
                if out.rows.len() <= 5 {
                    for r in &out.rows {
                        println!("    {:?}", r.values());
                    }
                }
            }
        }
    }
    Ok(())
}
