//! Differential tests for vectorized columnar execution: with
//! `QueryContext::with_columnar` toggled, the columnar path must be
//! *indistinguishable* from the row path — identical rows, identical
//! per-phase metrics (including CPU charges), identical bills, and
//! identical EXPLAIN trees — over dictionary-encoded, NULL-heavy and
//! mixed-chunk ColumnarLite tables, at any batch size.

use proptest::prelude::*;
use pushdowndb::common::perf::PhaseStats;
use pushdowndb::common::{DataType, Row, Schema, Value};
use pushdowndb::core::algos::{filter, groupby, topk};
use pushdowndb::core::{
    execute_sql_verbose, upload_columnar_table, OpReport, QueryContext, QueryMetrics, Strategy,
    Table,
};
use pushdowndb::format::columnar::WriterOptions;
use pushdowndb::s3::S3Store;
use pushdowndb::sql::agg::AggFunc;

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("name", DataType::Str),
        ("bal", DataType::Float),
        ("d", DataType::Date),
        ("flag", DataType::Bool),
        ("maybe", DataType::Int),
    ])
}

/// Mixed rows: a dictionary-eligible string column (5 distinct values),
/// NULLs sprinkled through every column, and a NULL-heavy tail column.
fn rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let null_at = |m: usize| i % m == m - 1;
            Row::new(vec![
                if null_at(11) {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                },
                if null_at(7) {
                    Value::Null
                } else {
                    Value::Str(format!("name-{}", i % 5))
                },
                if null_at(13) {
                    Value::Null
                } else {
                    Value::Float(i as f64 / 3.0 - 40.0)
                },
                if null_at(17) {
                    Value::Null
                } else {
                    Value::Date(18_000 + (i % 400) as i32)
                },
                if null_at(5) {
                    Value::Null
                } else {
                    Value::Bool(i % 3 == 0)
                },
                if i % 3 == 0 {
                    Value::Int((i % 10) as i64)
                } else {
                    Value::Null
                },
            ])
        })
        .collect()
}

/// Upload as ColumnarLite with small row groups, so partitions hold
/// several chunks and dictionary encoding kicks in.
fn columnar_ctx(n: usize, per_part: usize, rows_per_group: usize) -> (QueryContext, Table) {
    let store = S3Store::new();
    let t = upload_columnar_table(
        &store,
        "b",
        "t",
        &schema(),
        &rows(n),
        per_part,
        WriterOptions {
            rows_per_group,
            compress: true,
        },
    )
    .unwrap();
    (QueryContext::new(store), t)
}

fn assert_metrics_equal(a: &QueryMetrics, b: &QueryMetrics, what: &str) {
    assert_eq!(a.groups.len(), b.groups.len(), "{what}: phase group count");
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.phases.len(), gb.phases.len(), "{what}: phase count");
        for (pa, pb) in ga.phases.iter().zip(&gb.phases) {
            assert_eq!(pa.label, pb.label, "{what}: phase label");
            assert_eq!(pa.stats, pb.stats, "{what}: phase `{}`", pa.label);
        }
    }
}

fn assert_reports_equal(a: &OpReport, b: &OpReport, what: &str) {
    assert_eq!(a.label, b.label, "{what}: operator label");
    assert_eq!(a.actual, b.actual, "{what}: actual of `{}`", a.label);
    assert_eq!(
        a.predicted, b.predicted,
        "{what}: predicted of `{}`",
        a.label
    );
    assert_eq!(a.children.len(), b.children.len(), "{what}: child count");
    for (ca, cb) in a.children.iter().zip(&b.children) {
        assert_reports_equal(ca, cb, what);
    }
}

/// Run one statement with the columnar path off and on; everything
/// observable must agree exactly, and each mode's bill must equal its
/// own metrics.
fn assert_modes_agree(ctx: &QueryContext, t: &Table, sql: &str, strategy: Strategy) {
    let row_ctx = ctx.clone().with_columnar(false);
    let col_ctx = ctx.clone().with_columnar(true);
    let (a, ea) = execute_sql_verbose(&row_ctx, t, sql, strategy).unwrap();
    let (b, eb) = execute_sql_verbose(&col_ctx, t, sql, strategy).unwrap();
    assert_eq!(a.rows, b.rows, "{sql}: rows");
    assert_metrics_equal(&a.metrics, &b.metrics, sql);
    assert_eq!(a.billed, b.billed, "{sql}: bill");
    // The ledger and the attached metrics agree, field for field, in
    // both modes.
    for (out, mode) in [(&a, "row"), (&b, "columnar")] {
        let u = out.metrics.usage();
        assert_eq!(u, out.billed, "{sql} [{mode}]: metrics vs ledger");
    }
    // EXPLAIN trees — actuals and predictions — are identical too.
    match (&ea.operators, &eb.operators) {
        (Some(ra), Some(rb)) => assert_reports_equal(ra, rb, sql),
        (None, None) => {}
        _ => panic!("{sql}: one mode produced an operator report, the other did not"),
    }
}

const QUERIES: &[&str] = &[
    "SELECT * FROM t WHERE k < 120",
    "SELECT name, bal FROM t WHERE bal >= 0 AND flag = true",
    "SELECT * FROM t WHERE name = 'name-2'",
    "SELECT * FROM t WHERE name IN ('name-0', 'name-3') AND k BETWEEN 40 AND 400",
    "SELECT * FROM t WHERE maybe IS NULL AND d > '2019-06-01'",
    "SELECT * FROM t WHERE NOT (flag = false) OR bal < -20",
    // Shapes the vectorized compiler cannot handle — exercise the
    // row-at-a-time fallback kernel on columnar batches.
    "SELECT * FROM t WHERE k % 7 = 3",
    "SELECT * FROM t WHERE name LIKE 'name-%' AND k + 1 > 100",
    "SELECT SUM(bal), COUNT(*), MIN(k), MAX(name), AVG(bal) FROM t WHERE k >= 50",
    "SELECT COUNT(maybe) FROM t",
    "SELECT name, COUNT(*), SUM(bal), MIN(d), MAX(k) FROM t GROUP BY name",
    "SELECT flag, AVG(bal) FROM t WHERE k < 300 GROUP BY flag",
    "SELECT * FROM t ORDER BY bal LIMIT 25",
    "SELECT * FROM t ORDER BY name DESC LIMIT 10",
];

/// Columnar ≡ row across every supported query shape and strategy, on a
/// dict-encoded, NULL-heavy, multi-chunk table.
#[test]
fn columnar_execution_is_indistinguishable_from_row_execution() {
    let (ctx, t) = columnar_ctx(900, 170, 47);
    for sql in QUERIES {
        for strategy in [Strategy::Baseline, Strategy::Adaptive] {
            assert_modes_agree(&ctx, &t, sql, strategy);
        }
    }
}

/// The agreement holds through the segment-cache read path, cold and
/// warm. Each mode gets its own store and cache (uploads are
/// deterministic), so both observe the same cold-fill then warm-hit
/// progression rather than the row pass pre-warming the columnar one.
#[test]
fn columnar_cached_execution_matches_row_execution() {
    let run = |columnar: bool, sql: &str| {
        let (ctx, t) = columnar_ctx(600, 140, 31);
        let ctx = ctx
            .with_cache(1 << 30)
            .with_cache_reads(true)
            .with_columnar(columnar);
        let cold = execute_sql_verbose(&ctx, &t, sql, Strategy::Baseline)
            .unwrap()
            .0;
        let warm = execute_sql_verbose(&ctx, &t, sql, Strategy::Baseline)
            .unwrap()
            .0;
        (cold, warm)
    };
    for sql in [
        "SELECT * FROM t WHERE k < 100",
        "SELECT name, COUNT(*) FROM t GROUP BY name",
    ] {
        let (cold_row, warm_row) = run(false, sql);
        let (cold_col, warm_col) = run(true, sql);
        for ((a, b), phase) in [
            ((&cold_row, &cold_col), "cold"),
            ((&warm_row, &warm_col), "warm"),
        ] {
            assert_eq!(a.rows, b.rows, "{sql} [{phase}]: rows");
            assert_metrics_equal(&a.metrics, &b.metrics, &format!("{sql} [{phase}]"));
            assert_eq!(a.billed, b.billed, "{sql} [{phase}]: bill");
        }
        // Warm passes actually hit the cache: no billable re-reads.
        assert_eq!(warm_col.billed.requests, 0, "{sql}: warm requests");
        assert_eq!(warm_col.billed.plain_bytes, 0, "{sql}: warm plain bytes");
    }
}

/// Batch capacity is an execution detail: results AND stats of the
/// columnar path are invariant to it (and stay equal to the row path).
#[test]
fn columnar_path_is_batch_size_invariant() {
    let (ctx, t) = columnar_ctx(700, 160, 53);
    let sql = "SELECT name, SUM(bal), COUNT(*) FROM t WHERE k < 500 GROUP BY name";
    let reference = execute_sql_verbose(
        &ctx.clone().with_columnar(true),
        &t,
        sql,
        Strategy::Baseline,
    )
    .unwrap()
    .0;
    for batch_rows in [1usize, 17, 64, 100_000] {
        let ctx2 = ctx.clone().with_batch_rows(batch_rows);
        assert_modes_agree(&ctx2, &t, sql, Strategy::Baseline);
        let got = execute_sql_verbose(&ctx2.with_columnar(true), &t, sql, Strategy::Baseline)
            .unwrap()
            .0;
        assert_eq!(got.rows, reference.rows, "batch_rows={batch_rows}");
        assert_metrics_equal(
            &got.metrics,
            &reference.metrics,
            &format!("batch_rows={batch_rows}"),
        );
    }
}

/// The three algorithm families' server-side paths: exact stats parity
/// between the row and columnar kernels, driven directly.
#[test]
fn algo_server_side_paths_agree_exactly() {
    let (ctx, t) = columnar_ctx(800, 190, 37);
    let row_ctx = ctx.clone().with_columnar(false);
    let col_ctx = ctx.clone().with_columnar(true);

    let fq = filter::FilterQuery {
        table: t.clone(),
        predicate: pushdowndb::sql::parse_expr("bal > 10 AND name <> 'name-4'").unwrap(),
        projection: Some(vec!["k".into(), "name".into()]),
    };
    let a = filter::server_side(&row_ctx, &fq).unwrap();
    let b = filter::server_side(&col_ctx, &fq).unwrap();
    assert_eq!(a.rows, b.rows, "filter rows");
    assert_metrics_equal(&a.metrics, &b.metrics, "filter");
    assert_eq!(a.billed, b.billed, "filter bill");

    let gq = groupby::GroupByQuery {
        table: t.clone(),
        group_cols: vec!["name".into()],
        aggs: vec![
            (AggFunc::Sum, "bal".into()),
            (AggFunc::Count, "k".into()),
            (AggFunc::Min, "d".into()),
            (AggFunc::Max, "name".into()),
        ],
        predicate: Some(pushdowndb::sql::parse_expr("k < 600").unwrap()),
    };
    let a = groupby::server_side(&row_ctx, &gq).unwrap();
    let b = groupby::server_side(&col_ctx, &gq).unwrap();
    assert_eq!(a.rows, b.rows, "groupby rows");
    assert_metrics_equal(&a.metrics, &b.metrics, "groupby");
    assert_eq!(a.billed, b.billed, "groupby bill");

    for (col, asc, k) in [("bal", true, 20), ("name", false, 7), ("maybe", true, 15)] {
        let tq = topk::TopKQuery {
            table: t.clone(),
            order_col: col.into(),
            k,
            asc,
        };
        let a = topk::server_side(&row_ctx, &tq).unwrap();
        let b = topk::server_side(&col_ctx, &tq).unwrap();
        assert_eq!(a.rows, b.rows, "topk({col}) rows");
        assert_metrics_equal(&a.metrics, &b.metrics, &format!("topk({col})"));
        assert_eq!(a.billed, b.billed, "topk({col}) bill");
    }
}

/// Scan-level parity: the reported footprint never depends on the
/// execution representation, and ColumnarLite parse bytes are reported
/// by BOTH paths (they are a property of the stored format).
#[test]
fn scan_stats_report_columnar_parse_bytes_in_both_modes() {
    let (ctx, t) = columnar_ctx(500, 120, 29);
    let sql = "SELECT * FROM t WHERE k < 50";
    for columnar in [false, true] {
        let out = execute_sql_verbose(
            &ctx.clone().with_columnar(columnar),
            &t,
            sql,
            Strategy::Baseline,
        )
        .unwrap()
        .0;
        let total: PhaseStats = {
            let mut s = PhaseStats::default();
            for g in &out.metrics.groups {
                for p in &g.phases {
                    s.merge(&p.stats);
                }
            }
            s
        };
        assert!(total.cl_parse_bytes > 0, "columnar={columnar}");
        assert_eq!(
            total.cl_parse_bytes, total.plain_bytes,
            "columnar={columnar}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary dict/NULL-heavy tables and layouts: columnar ≡ row for
    /// a predicate sweep covering vectorized and fallback shapes.
    #[test]
    fn columnar_differential_holds_on_arbitrary_tables(
        vals in proptest::collection::vec((0i64..50, any::<bool>(), 0u8..4), 1..250),
        per_part in 1usize..80,
        rows_per_group in 3usize..60,
        compress in any::<bool>(),
    ) {
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("s", DataType::Str),
            ("v", DataType::Int),
        ]);
        let table_rows: Vec<Row> = vals
            .iter()
            .map(|(v, null_s, tag)| {
                Row::new(vec![
                    Value::Int(v % 7),
                    if *null_s {
                        Value::Null
                    } else {
                        Value::Str(format!("tag-{tag}"))
                    },
                    Value::Int(*v),
                ])
            })
            .collect();
        let store = S3Store::new();
        let t = upload_columnar_table(
            &store, "p", "t", &schema, &table_rows, per_part,
            WriterOptions { rows_per_group, compress },
        ).unwrap();
        let ctx = QueryContext::new(store);
        for sql in [
            "SELECT * FROM t WHERE v >= 25",
            "SELECT * FROM t WHERE s = 'tag-2' OR s IS NULL",
            "SELECT * FROM t WHERE v % 2 = 1",
            "SELECT g, COUNT(*), SUM(v), MAX(s) FROM t GROUP BY g",
            "SELECT * FROM t ORDER BY v LIMIT 9",
        ] {
            let (a, _) = execute_sql_verbose(
                &ctx.clone().with_columnar(false), &t, sql, Strategy::Baseline).unwrap();
            let (b, _) = execute_sql_verbose(
                &ctx.clone().with_columnar(true), &t, sql, Strategy::Baseline).unwrap();
            prop_assert_eq!(&a.rows, &b.rows, "{}", sql);
            assert_metrics_equal(&a.metrics, &b.metrics, sql);
            prop_assert_eq!(a.billed, b.billed, "{}", sql);
        }
    }
}
