//! Differential testing: the pushdown side of every execution path must
//! return exactly what its baseline returns, while never transferring
//! *more* bytes — under the batched streaming engine, across batch
//! sizes, and with the cost ledger agreeing with the attached metrics.

use pushdowndb::common::{Row, Value};
use pushdowndb::core::{execute_sql, QueryContext, Strategy};
use pushdowndb::tpch::{all_queries, load_tpch, tpch_context, Mode};

fn assert_rows_close(a: &[Row], b: &[Row], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.len(), y.len(), "{what}: row widths differ");
        for (vx, vy) in x.values().iter().zip(y.values()) {
            match (vx, vy) {
                (Value::Float(fx), Value::Float(fy)) => assert!(
                    (fx - fy).abs() <= 1e-6 * (1.0 + fx.abs().max(fy.abs())),
                    "{what}: {fx} vs {fy}"
                ),
                _ => assert_eq!(vx, vy, "{what}"),
            }
        }
    }
}

/// Every TPC-H query: Baseline and Optimized agree row-for-row, and the
/// optimized plan never returns more bytes over the wire.
#[test]
fn tpch_baseline_vs_pushdown_differential() {
    let (ctx, t) = tpch_context(0.003, 1_500).unwrap();
    for (name, q) in all_queries() {
        let base = q(&ctx, &t, Mode::Baseline).unwrap();
        let push = q(&ctx, &t, Mode::Optimized).unwrap();
        assert_rows_close(&base.rows, &push.rows, name);
        assert!(
            push.metrics.bytes_returned() <= base.metrics.bytes_returned(),
            "{name}: pushdown transferred {} bytes vs baseline {}",
            push.metrics.bytes_returned(),
            base.metrics.bytes_returned()
        );
    }
}

/// The differential must be invariant to the streaming batch capacity:
/// batching is an execution detail, not a semantics knob.
#[test]
fn tpch_differential_is_batch_size_invariant() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let reference: Vec<(&str, Vec<Row>)> = all_queries()
        .into_iter()
        .map(|(name, q)| (name, q(&ctx, &t, Mode::Optimized).unwrap().rows))
        .collect();
    for batch_rows in [1usize, 17, 100_000] {
        let ctx2 = ctx.clone().with_batch_rows(batch_rows);
        for (i, (name, q)) in all_queries().into_iter().enumerate() {
            let base = q(&ctx2, &t, Mode::Baseline).unwrap();
            let push = q(&ctx2, &t, Mode::Optimized).unwrap();
            assert_rows_close(&base.rows, &push.rows, name);
            assert_rows_close(
                &reference[i].1,
                &push.rows,
                &format!("{name} @ batch_rows={batch_rows}"),
            );
        }
    }
}

/// The planner-level strategies agree on SQL queries of every supported
/// shape, and pushdown's billable transfer never exceeds the baseline's.
/// `Strategy::Adaptive` must return the same rows as both.
#[test]
fn planner_strategies_differential() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let orders = &t.orders;
    for sql in [
        "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice < 50000",
        "SELECT * FROM orders WHERE o_custkey = 7",
        "SELECT SUM(o_totalprice), COUNT(*), AVG(o_totalprice) FROM orders \
         WHERE o_orderkey > 100",
        "SELECT o_orderpriority, COUNT(*), MAX(o_totalprice) FROM orders \
         GROUP BY o_orderpriority",
        "SELECT * FROM orders ORDER BY o_totalprice DESC LIMIT 20",
    ] {
        let base = execute_sql(&ctx, orders, sql, Strategy::Baseline).unwrap();
        let push = execute_sql(&ctx, orders, sql, Strategy::Pushdown).unwrap();
        let adapt = execute_sql(&ctx, orders, sql, Strategy::Adaptive).unwrap();
        assert_rows_close(&base.rows, &push.rows, sql);
        assert_rows_close(&base.rows, &adapt.rows, &format!("{sql} (adaptive)"));
        assert!(
            push.metrics.bytes_returned() <= base.metrics.bytes_returned(),
            "{sql}: pushdown must not transfer more"
        );
    }
}

/// The store's AWS-style ledger and the per-query metrics account the
/// same billable quantities for a full TPC-H run — streaming must not
/// lose or double-count a byte.
#[test]
fn ledger_agrees_with_metrics_across_the_suite() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    for (name, q) in all_queries() {
        for mode in [Mode::Baseline, Mode::Optimized] {
            let out = q(&ctx, &t, mode).unwrap();
            // The query's scoped child ledger: exact per-query usage, no
            // reset needed (and correct even under concurrent queries).
            let billed = out.billed;
            let metered = out.metrics.usage();
            assert_eq!(
                billed.select_scanned_bytes, metered.select_scanned_bytes,
                "{name} {mode:?}: scanned bytes"
            );
            assert_eq!(
                billed.select_returned_bytes, metered.select_returned_bytes,
                "{name} {mode:?}: returned bytes"
            );
            assert_eq!(
                billed.plain_bytes, metered.plain_bytes,
                "{name} {mode:?}: plain bytes"
            );
            assert_eq!(
                billed.requests, metered.requests,
                "{name} {mode:?}: requests"
            );
        }
    }
}

/// Loading the same data twice yields bit-identical query answers — the
/// generator and the streaming scan are fully deterministic.
#[test]
fn repeated_runs_are_deterministic() {
    let (ctx_a, ta) = tpch_context(0.002, 900).unwrap();
    let (ctx_b, tb) = tpch_context(0.002, 900).unwrap();
    // Different partitioning of the identical logical data.
    let store_c = pushdowndb::s3::S3Store::new();
    let tc = load_tpch(&store_c, "tpch", pushdowndb::tpch::TpchGen::new(0.002), 333).unwrap();
    let ctx_c = QueryContext::new(store_c);
    for (name, q) in all_queries() {
        let a = q(&ctx_a, &ta, Mode::Optimized).unwrap();
        let b = q(&ctx_b, &tb, Mode::Optimized).unwrap();
        let c = q(&ctx_c, &tc, Mode::Optimized).unwrap();
        assert_eq!(
            a.rows, b.rows,
            "{name}: identical setup must be bit-identical"
        );
        assert_rows_close(&a.rows, &c.rows, &format!("{name}: repartitioned"));
    }
}
