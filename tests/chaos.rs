//! Seeded chaos suite (ISSUE 3): under the deterministic fault plan,
//! every query either returns results identical to its fault-free run or
//! fails with a retryable error — and the outcome is a pure function of
//! (seed, salt), independent of thread interleaving.
//!
//! Sweep: `CHAOS_SEED_BASE` (CI matrix) selects a 4-seed window; the CI
//! job runs four windows for a 16-seed matrix. For each (seed,
//! fault_prob) and every planner-suite query:
//!
//! * success ⇒ rows identical to the fault-free reference, billed
//!   scan/return/plain bytes identical (faulted attempts scan nothing),
//!   billed requests ≥ fault-free (retries are extra requests), and
//!   `metrics.usage() == billed` exactly — no ledger double-counting
//!   across retries;
//! * failure ⇒ a retryable `ServiceFault` carrying the seed for replay;
//! * same (seed, salt) ⇒ same outcome, rerun or interleaved.
//!
//! Pinned regression seeds cover each algo family (filter, group-by,
//! top-K, join) with at least one actually-retried request.

use pushdowndb::common::{RetryPolicy, Value};
use pushdowndb::core::algos::join;
use pushdowndb::core::{execute_sql, QueryOutput, Strategy};
use pushdowndb::s3::FaultPlan;
use pushdowndb::sql::parse_expr;
use pushdowndb::tpch::{planner_suite, tpch_context};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Outcome fingerprint: success carries (rows, billed); failure carries
/// the error code (always retryable under chaos).
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Ok(
        Vec<pushdowndb::common::Row>,
        pushdowndb::common::pricing::Usage,
    ),
    Fault(String),
}

fn outcome(res: Result<QueryOutput, pushdowndb::common::Error>) -> Outcome {
    match res {
        Ok(out) => {
            assert_eq!(
                out.metrics.usage(),
                out.billed,
                "metrics must equal the child ledger even across retries"
            );
            Outcome::Ok(out.rows, out.billed)
        }
        Err(e) => {
            assert!(
                e.is_retryable(),
                "chaos may only surface retryable faults, got {e}"
            );
            assert!(
                e.to_string().contains("seed="),
                "fault must print its seed for replay: {e}"
            );
            Outcome::Fault(e.code().to_string())
        }
    }
}

#[test]
fn chaos_sweep_queries_match_fault_free_or_fail_retryably() {
    let (ctx, tables) = tpch_context(0.002, 1_000).unwrap();
    let ctx = ctx.with_retry(RetryPolicy::with_attempts(8));
    let suite = planner_suite();
    // Fault-free references.
    let clean: Vec<QueryOutput> = suite
        .iter()
        .map(|q| execute_sql(&ctx, (q.table)(&tables), q.sql, Strategy::Adaptive).unwrap())
        .collect();

    let base = seed_base();
    let mut retried_queries = 0u32;
    let mut failures = 0u32;
    for seed in base..base + 4 {
        for prob in [0.05, 0.3, 0.9] {
            ctx.store.set_fault_plan(Some(FaultPlan::new(seed, prob)));
            for (qi, q) in suite.iter().enumerate() {
                let salt = seed.wrapping_mul(1_000) + qi as u64;
                let run = || {
                    let qctx = ctx.scoped_with_salt(salt);
                    outcome(execute_sql(
                        &qctx,
                        (q.table)(&tables),
                        q.sql,
                        Strategy::Adaptive,
                    ))
                };
                let first = run();
                // Same seed+salt ⇒ byte-identical outcome on a rerun.
                assert_eq!(first, run(), "seed {seed} prob {prob} {}", q.name);
                match &first {
                    Outcome::Ok(rows, billed) => {
                        let reference = &clean[qi];
                        assert_eq!(rows, &reference.rows, "seed {seed} {}", q.name);
                        assert_eq!(
                            billed.select_scanned_bytes, reference.billed.select_scanned_bytes,
                            "seed {seed} {}: no scan double-billing across retries",
                            q.name
                        );
                        assert_eq!(
                            billed.select_returned_bytes, reference.billed.select_returned_bytes,
                            "seed {seed} {}",
                            q.name
                        );
                        assert_eq!(
                            billed.plain_bytes, reference.billed.plain_bytes,
                            "seed {seed} {}",
                            q.name
                        );
                        assert!(
                            billed.requests >= reference.billed.requests,
                            "seed {seed} {}: retried attempts are extra requests",
                            q.name
                        );
                        if billed.requests > reference.billed.requests {
                            retried_queries += 1;
                        }
                    }
                    Outcome::Fault(_) => failures += 1,
                }
            }
        }
    }
    ctx.store.set_fault_plan(None);
    // The sweep must actually exercise both paths somewhere.
    assert!(retried_queries > 0, "no seed in the window caused a retry");
    assert!(
        failures > 0,
        "prob 0.9 should out-last an 8-attempt budget somewhere"
    );
}

/// Same seed ⇒ same fault sites, single-threaded or parallel: the whole
/// suite under one chaotic plan, executed serially and then by 8
/// threads, produces identical per-query outcomes (including which
/// queries fail).
#[test]
fn chaos_outcomes_are_interleaving_independent() {
    let (ctx, tables) = tpch_context(0.002, 1_000).unwrap();
    let ctx = ctx.with_retry(RetryPolicy::with_attempts(4));
    let suite = planner_suite();
    let seed = seed_base() + 101;
    ctx.store.set_fault_plan(Some(FaultPlan::new(seed, 0.45)));

    let run_query = |qi: usize| {
        let q = &suite[qi];
        let qctx = ctx.scoped_with_salt(qi as u64);
        outcome(execute_sql(
            &qctx,
            (q.table)(&tables),
            q.sql,
            Strategy::Pushdown,
        ))
    };
    // Serial pass.
    let serial: Vec<Outcome> = (0..suite.len()).map(run_query).collect();
    // 8-thread pass over the same (seed, salt) pairs, twice for measure.
    for round in 0..2 {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Outcome>>> = Mutex::new(vec![None; suite.len()]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= suite.len() {
                        break;
                    }
                    let o = run_query(i);
                    slots.lock().unwrap()[i] = Some(o);
                });
            }
        });
        let parallel: Vec<Outcome> = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|o| o.unwrap())
            .collect();
        assert_eq!(
            serial, parallel,
            "round {round}: fault sites moved under parallel execution"
        );
    }
    ctx.store.set_fault_plan(None);
}

/// Pinned regression seeds, one per algo family. Each seed demonstrably
/// exercises the retry path (billed requests exceed the fault-free run)
/// and still returns the exact fault-free answer. If one of these ever
/// fails, replay it: install `FaultPlan::new(seed, 0.45)`, scope with the
/// printed salt, rerun the query.
#[test]
fn pinned_regression_seeds_per_algo_family() {
    let (ctx, tables) = tpch_context(0.002, 1_000).unwrap();
    let ctx = ctx.with_retry(RetryPolicy::with_attempts(12));
    let suite = planner_suite();
    let by_name = |name: &str| {
        suite
            .iter()
            .find(|q| q.name == name)
            .copied()
            .unwrap_or_else(|| panic!("suite query {name}"))
    };

    // (family, suite query, pinned seed, salt). The joined-plan pins
    // exercise retries through *both* join phases (build-side select and
    // probe-side select) of a composed physical plan: success must be
    // row-identical to the fault-free run with no byte double-billed,
    // even when a retry lands mid-join.
    let pinned = [
        ("filter", by_name("filter-selective"), 3u64, 0u64),
        ("group-by", by_name("groupby-uniform"), 5, 1),
        ("top-k", by_name("topk-100"), 7, 2),
        ("join-plan-q3", by_name("join-q3ish"), 21, 4),
        ("join-plan-q12", by_name("join-q12ish"), 22, 5),
    ];
    for (family, q, seed, salt) in pinned {
        let table = (q.table)(&tables);
        ctx.store.set_fault_plan(None);
        let clean = execute_sql(
            &ctx.scoped_with_salt(salt),
            table,
            q.sql,
            Strategy::Pushdown,
        )
        .unwrap();
        ctx.store.set_fault_plan(Some(FaultPlan::new(seed, 0.45)));
        let chaotic = execute_sql(
            &ctx.scoped_with_salt(salt),
            table,
            q.sql,
            Strategy::Pushdown,
        )
        .unwrap_or_else(|e| panic!("{family} seed {seed}: {e}"));
        assert_eq!(chaotic.rows, clean.rows, "{family} seed {seed}");
        assert!(
            chaotic.billed.requests > clean.billed.requests,
            "{family} seed {seed}: expected at least one retried attempt \
             ({} vs clean {})",
            chaotic.billed.requests,
            clean.billed.requests
        );
        assert_eq!(
            chaotic.billed.select_scanned_bytes, clean.billed.select_scanned_bytes,
            "{family} seed {seed}: retries must not re-bill scans"
        );
    }

    // Pinned **cache-fill** seeds (ISSUE 5): with a segment cache
    // installed and the cached-local strategy forced, the fills are the
    // retried requests — success must be row-identical to the fault-free
    // fill with the bytes billed exactly once, for a single-table and a
    // joined plan. Replay: fresh cache, `FaultPlan::new(seed, 0.45)`,
    // scope with the salt.
    let cache_pins = [
        (
            "cache-fill group-by",
            by_name("groupby-uniform"),
            1u64,
            1u64,
        ),
        ("cache-fill join-plan", by_name("join-q3ish"), 1, 2),
    ];
    for (family, q, seed, salt) in cache_pins {
        let table = (q.table)(&tables);
        ctx.store.set_fault_plan(None);
        // Fresh cold cache per run so every partition read is a fill.
        let cached_ctx = ctx.clone().with_cache(64 << 20).with_cache_reads(true);
        let clean = execute_sql(
            &cached_ctx.scoped_with_salt(salt),
            table,
            q.sql,
            Strategy::Baseline,
        )
        .unwrap();
        let cached_ctx = ctx.clone().with_cache(64 << 20).with_cache_reads(true);
        ctx.store.set_fault_plan(Some(FaultPlan::new(seed, 0.45)));
        let chaotic = execute_sql(
            &cached_ctx.scoped_with_salt(salt),
            table,
            q.sql,
            Strategy::Baseline,
        )
        .unwrap_or_else(|e| panic!("{family} seed {seed}: {e}"));
        assert_eq!(chaotic.rows, clean.rows, "{family} seed {seed}");
        assert!(
            chaotic.billed.requests > clean.billed.requests,
            "{family} seed {seed}: expected retried fill attempts ({} vs {})",
            chaotic.billed.requests,
            clean.billed.requests
        );
        assert_eq!(
            chaotic.billed.plain_bytes, clean.billed.plain_bytes,
            "{family} seed {seed}: fill bytes bill once across retries"
        );
        assert_eq!(
            chaotic.billed.select_scanned_bytes, clean.billed.select_scanned_bytes,
            "{family} seed {seed}: retries must not re-bill scans"
        );
    }
    ctx.store.set_fault_plan(None);
    ctx.store.set_cache(None);

    // Join family: customer ⋈ orders through the Bloom join.
    let jq = join::JoinQuery {
        left: tables.customer.clone(),
        right: tables.orders.clone(),
        left_key: "c_custkey".into(),
        right_key: "o_custkey".into(),
        left_pred: Some(parse_expr("c_acctbal < 0").unwrap()),
        right_pred: None,
        left_proj: vec!["c_custkey".into()],
        right_proj: vec!["o_totalprice".into()],
        sum_column: Some("o_totalprice".into()),
    };
    ctx.store.set_fault_plan(None);
    let clean = join::bloom(&ctx.scoped_with_salt(3), &jq, 0.01).unwrap();
    ctx.store.set_fault_plan(Some(FaultPlan::new(12, 0.45)));
    let chaotic = join::bloom(&ctx.scoped_with_salt(3), &jq, 0.01)
        .unwrap_or_else(|e| panic!("join seed 12: {e}"));
    assert_eq!(chaotic.rows.len(), 1);
    match (&chaotic.rows[0][0], &clean.rows[0][0]) {
        (Value::Float(a), Value::Float(b)) => {
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                "join sum {a} vs {b}"
            )
        }
        (a, b) => assert_eq!(a, b, "join seed 12"),
    }
    assert!(
        chaotic.billed.requests > clean.billed.requests,
        "join seed 12: expected retried attempts ({} vs {})",
        chaotic.billed.requests,
        clean.billed.requests
    );
    ctx.store.set_fault_plan(None);
}
