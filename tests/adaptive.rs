//! `Strategy::Adaptive` acceptance and calibration (ISSUE 2):
//!
//! * on every TPC-H query of the planner-dialect differential suite the
//!   adaptive strategy returns the same rows as both fixed strategies,
//!   is never measurably worse than either, and matches the cheaper of
//!   the two (measured dollars + modeled runtime) within 10%;
//! * the cost estimator is calibrated: for the plan actually chosen, the
//!   predicted `Usage` (requests, scanned, returned, plain bytes) lands
//!   within 15% of the measured ledger (with a small absolute floor for
//!   near-zero quantities such as aggregate response payloads);
//! * ledger/metrics agreement holds on multi-phase adaptive plans, and
//!   scaled projections round once at the aggregate level.

use pushdowndb::common::{Row, Value};
use pushdowndb::core::planner::execute_sql_verbose;
use pushdowndb::core::{execute_sql, Strategy};
use pushdowndb::tpch::{planner_suite, tpch_context};

fn assert_rows_close(a: &[Row], b: &[Row], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        for (vx, vy) in x.values().iter().zip(y.values()) {
            match (vx, vy) {
                (Value::Float(fx), Value::Float(fy)) => assert!(
                    (fx - fy).abs() <= 1e-6 * (1.0 + fx.abs().max(fy.abs())),
                    "{what}: {fx} vs {fy}"
                ),
                _ => assert_eq!(vx, vy, "{what}"),
            }
        }
    }
}

/// Acceptance: Adaptive is never measurably worse than *both* fixed
/// strategies, and matches the cheaper of the two within 10% on measured
/// dollar cost and modeled runtime — on every query of the suite.
#[test]
fn adaptive_matches_the_cheaper_fixed_strategy_within_10_percent() {
    let (ctx, t) = tpch_context(0.005, 1_500).unwrap();
    for q in planner_suite() {
        let table = (q.table)(&t);
        let run = |s: Strategy| execute_sql(&ctx, table, q.sql, s).unwrap();
        let base = run(Strategy::Baseline);
        let push = run(Strategy::Pushdown);
        let adapt = run(Strategy::Adaptive);
        assert_rows_close(&base.rows, &push.rows, q.name);
        assert_rows_close(&base.rows, &adapt.rows, &format!("{} (adaptive)", q.name));

        let cost =
            |o: &pushdowndb::core::QueryOutput| o.metrics.cost(&ctx.model, &ctx.pricing).total();
        let runtime = |o: &pushdowndb::core::QueryOutput| o.metrics.runtime(&ctx.model);
        let min_cost = cost(&base).min(cost(&push));
        let min_runtime = runtime(&base).min(runtime(&push));
        assert!(
            cost(&adapt) <= min_cost * 1.10,
            "{}: adaptive ${:.6} vs min(fixed) ${min_cost:.6}",
            q.name,
            cost(&adapt)
        );
        assert!(
            runtime(&adapt) <= min_runtime * 1.10,
            "{}: adaptive {:.3}s vs min(fixed) {min_runtime:.3}s",
            q.name,
            runtime(&adapt)
        );
    }
}

/// Calibration: predicted `Usage` of the chosen plan within 15% of the
/// measured ledger, field by field. Near-zero quantities (aggregate
/// payloads of a few hundred bytes) get a 512-byte absolute floor so the
/// relative bound stays meaningful.
#[test]
fn cost_estimator_predictions_are_calibrated_against_the_ledger() {
    let (ctx, t) = tpch_context(0.005, 1_500).unwrap();
    for q in planner_suite() {
        let table = (q.table)(&t);
        let (out, explain) = execute_sql_verbose(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
        let measured = out.billed;
        let predicted = explain
            .predicted
            .as_ref()
            .expect("adaptive plans carry a prediction")
            .usage();
        let check = |pred: u64, meas: u64, what: &str| {
            let slack = (0.15 * meas as f64).max(512.0);
            assert!(
                (pred as f64 - meas as f64).abs() <= slack,
                "{} [{}]: predicted {pred} vs measured {meas} (slack {slack:.0})",
                q.name,
                what
            );
        };
        check(predicted.requests, measured.requests, "requests");
        check(
            predicted.select_scanned_bytes,
            measured.select_scanned_bytes,
            "scanned",
        );
        check(
            predicted.select_returned_bytes,
            measured.select_returned_bytes,
            "returned",
        );
        check(predicted.plain_bytes, measured.plain_bytes, "plain");
    }
}

/// The AWS-style ledger and the per-query metrics agree exactly on
/// multi-phase adaptive plans, and the scaled projection equals scaling
/// the summed usage once (`Usage::scaled` is not distributive, so the
/// single-rounding path is the one projections must take).
#[test]
fn ledger_agrees_with_metrics_on_adaptive_plans() {
    let (ctx, t) = tpch_context(0.003, 1_000).unwrap();
    for q in planner_suite() {
        let table = (q.table)(&t);
        let out = execute_sql(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
        let billed = out.billed;
        let metered = out.metrics.usage();
        assert_eq!(billed, metered, "{}: ledger vs metrics", q.name);
        // Multi-phase projection invariant (the Usage::scaled bugfix).
        for factor in [1.0, 2.5, 2000.0 / 3.0] {
            assert_eq!(
                out.metrics.scaled_usage(factor),
                out.metrics.usage().scaled(factor),
                "{}: projection must round once at the aggregate level",
                q.name
            );
        }
    }
}
