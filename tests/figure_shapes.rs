//! Shape assertions for every paper figure: the qualitative claims of
//! the evaluation (who wins, what grows, where crossovers sit) must hold
//! on the reproduction's own output. These run the same experiment code
//! as the `figNN_*` binaries, at reduced scale.

use pushdown_bench::experiments as ex;

#[test]
fn fig01_filter_shapes() {
    let rows = ex::fig01_filter::run(30_000).unwrap();
    for r in &rows {
        // "a dramatic 10x" server → s3 (we accept anything ≥ 5x).
        assert!(
            r.server.runtime > 5.0 * r.s3.runtime,
            "sel {}: server {} vs s3 {}",
            r.selectivity,
            r.server.runtime,
            r.s3.runtime
        );
        // Server-side cost is compute-dominated; s3-side scan-dominated.
        assert!(r.server.cost.compute > r.server.cost.scan);
        assert!(r.s3.cost.scan > r.s3.cost.compute);
    }
    // Indexing: competitive when selective, collapsing at 1e-2.
    let first = &rows[0];
    let last = rows.last().unwrap();
    assert!(first.indexed.runtime <= 1.5 * first.s3.runtime);
    assert!(last.indexed.runtime > 5.0 * last.s3.runtime);
    // Indexing cost explodes with selectivity (requests), ≥ 10x.
    assert!(last.indexed.cost.total() > 10.0 * first.indexed.cost.total());
    // And is the cheapest option when highly selective (paper: 2.7x
    // cheaper than server-side).
    assert!(first.indexed.cost.total() * 2.0 < first.server.cost.total());
}

#[test]
fn fig02_join_customer_shapes() {
    let rows = ex::fig02_join_customer::run(0.004).unwrap();
    for r in &rows {
        // Bloom wins while the customer predicate is selective.
        assert!(
            r.bloom.runtime < r.filtered.runtime,
            "upper {}",
            r.upper_acctbal
        );
        assert!(
            r.bloom.runtime < r.baseline.runtime,
            "upper {}",
            r.upper_acctbal
        );
        // Baseline and filtered are within the same regime (paper:
        // "perform similarly") — no more than ~2.5x apart.
        assert!(r.baseline.runtime < 2.5 * r.filtered.runtime);
    }
    // Bloom degrades (monotone non-decreasing modulo noise) as the
    // predicate loosens.
    assert!(rows.last().unwrap().bloom.runtime >= rows[0].bloom.runtime * 0.95);
}

#[test]
fn fig03_join_orders_shapes() {
    let rows = ex::fig03_join_orders::run(0.004).unwrap();
    // Filtered gets slower as the date bound loosens...
    assert!(rows[0].filtered.runtime < rows.last().unwrap().filtered.runtime);
    // ...and beats baseline when selective.
    assert!(rows[0].filtered.runtime * 2.0 < rows[0].baseline.runtime);
    // Bloom stays roughly constant (paper: "remains fairly constant").
    let bloom_min = rows
        .iter()
        .map(|r| r.bloom.runtime)
        .fold(f64::MAX, f64::min);
    let bloom_max = rows.iter().map(|r| r.bloom.runtime).fold(0.0, f64::max);
    assert!(
        bloom_max < 1.5 * bloom_min,
        "bloom {bloom_min}..{bloom_max}"
    );
}

#[test]
fn fig04_fpr_shapes() {
    let res = ex::fig04_join_fpr::run(0.004).unwrap();
    let runtimes: Vec<f64> = res.sweep.iter().map(|r| r.bloom.runtime).collect();
    let min = runtimes.iter().copied().fold(f64::MAX, f64::min);
    // The low-FPR end pays for its hash count: every extra conjunct slows
    // the storage-side scan, so the tightest rate is strictly worse than
    // the best one.
    assert!(runtimes[0] > min, "low-FPR end should pay for hash count");
    // The high-FPR end pays in transfer: bytes returned grow strictly
    // with the false-positive rate across the whole sweep. (At bench
    // scale the build side is a handful of keys, so the *runtime* at the
    // loose end stays latency/scan-bound and the paper's full U-shape
    // only emerges at larger scale factors; the byte series is the
    // scale-independent form of the claim.)
    let bytes: Vec<u64> = res.sweep.iter().map(|r| r.bloom.bytes_returned).collect();
    assert!(
        bytes.windows(2).all(|w| w[0] < w[1]),
        "transfer must grow with FPR: {bytes:?}"
    );
    // Bloom at its best beats filtered and baseline.
    assert!(min < res.filtered.runtime);
    assert!(min < res.baseline.runtime);
}

#[test]
fn fig05_groupby_uniform_shapes() {
    let rows = ex::fig05_groupby_uniform::run(20_000).unwrap();
    // Server and filtered are flat in the group count (±10%).
    let s0 = rows[0].server.runtime;
    let f0 = rows[0].filtered.runtime;
    for r in &rows {
        assert!((r.server.runtime / s0 - 1.0).abs() < 0.1);
        assert!((r.filtered.runtime / f0 - 1.0).abs() < 0.1);
        // Filtered beats server-side at every group count (paper: 64%).
        assert!(r.filtered.runtime < r.server.runtime);
    }
    // S3-side degrades monotonically with groups...
    for w in rows.windows(2) {
        assert!(w[1].s3_side.runtime > w[0].s3_side.runtime);
    }
    // ...beating filtered at 2 groups, losing by 32 (the crossover).
    assert!(rows[0].s3_side.runtime < rows[0].filtered.runtime);
    assert!(rows.last().unwrap().s3_side.runtime > rows.last().unwrap().filtered.runtime);
}

#[test]
fn fig06_hybrid_split_shapes() {
    let rows = ex::fig06_hybrid_split::run(20_000).unwrap();
    for w in rows.windows(2) {
        // More groups at S3: the S3 bar grows, the server bar shrinks,
        // fewer bytes come back (paper Fig 6).
        assert!(w[1].s3_seconds > w[0].s3_seconds);
        assert!(w[1].server_seconds < w[0].server_seconds);
        assert!(w[1].bytes_returned < w[0].bytes_returned);
    }
    // The best total is interior (paper: 6–8 groups).
    let totals: Vec<f64> = rows.iter().map(|r| r.total.runtime).collect();
    let min = totals.iter().copied().fold(f64::MAX, f64::min);
    assert!(totals[0] > min);
    assert!(*totals.last().unwrap() > min);
}

#[test]
fn fig07_skew_shapes() {
    let rows = ex::fig07_groupby_skew::run(20_000).unwrap();
    // Server-side and filtered are insensitive to skew (±10%).
    let s0 = rows[0].server.runtime;
    for r in &rows {
        assert!(
            (r.server.runtime / s0 - 1.0).abs() < 0.1,
            "theta {}",
            r.theta
        );
    }
    // Hybrid improves monotonically with skew and wins clearly at 1.3
    // (paper: 31% over filtered).
    for w in rows.windows(2) {
        assert!(w[1].hybrid.runtime <= w[0].hybrid.runtime * 1.05);
    }
    let last = rows.last().unwrap();
    assert!(last.hybrid.runtime < 0.75 * last.filtered.runtime);
    // At theta 0 hybrid degenerates to ~filtered (within 25%).
    assert!(rows[0].hybrid.runtime < 1.25 * rows[0].filtered.runtime);
}

#[test]
fn fig08_sample_size_shapes() {
    let res = ex::fig08_topk_sample::run(0.004, 50).unwrap();
    let s = &res.sweep;
    // Sampling phase grows with S; scanning phase shrinks.
    assert!(s.last().unwrap().sampling_seconds > s[0].sampling_seconds);
    assert!(s.last().unwrap().scanning_seconds < s[0].scanning_seconds);
    // Returned bytes are U-shaped: interior minimum.
    let bytes: Vec<u64> = s.iter().map(|r| r.bytes_returned).collect();
    let min = *bytes.iter().min().unwrap();
    assert!(bytes[0] > min);
    assert!(*bytes.last().unwrap() > min);
    // The measured best total sits within 4x of the analytic optimum's
    // total (the paper: "stable in a relatively wide range around S*").
    let best = s.iter().map(|r| r.total.runtime).fold(f64::MAX, f64::min);
    let at_analytic = s
        .iter()
        .min_by_key(|r| r.sample_size.abs_diff(res.analytic_optimum))
        .unwrap()
        .total
        .runtime;
    assert!(at_analytic <= best * 4.0);
}

#[test]
fn fig09_k_shapes() {
    let rows = ex::fig09_topk_k::run(0.004).unwrap();
    for r in &rows {
        // Sampling is consistently faster and cheaper (paper Fig 9).
        assert!(r.sampling.runtime < r.server.runtime, "K={}", r.k);
        assert!(r.sampling.cost.total() < r.server.cost.total(), "K={}", r.k);
    }
    // Both grow with K.
    assert!(rows.last().unwrap().server.runtime > rows[0].server.runtime);
    assert!(rows.last().unwrap().sampling.runtime > rows[0].sampling.runtime);
}

#[test]
fn fig10_suite_shapes() {
    let res = ex::fig10_tpch::run(0.003).unwrap();
    for r in &res.rows {
        assert!(r.speedup() > 1.0, "{}: speedup {:.2}", r.name, r.speedup());
    }
    // Headline claims: large geo-mean speedup, net cost reduction.
    assert!(
        res.geo_mean_speedup > 3.0,
        "geo-mean speedup {:.2} (paper: 6.7)",
        res.geo_mean_speedup
    );
    assert!(
        res.geo_mean_cost_ratio < 1.0,
        "geo-mean cost ratio {:.2} (paper: 0.70)",
        res.geo_mean_cost_ratio
    );
}

#[test]
fn ablation_shapes() {
    // Suggestions 1 & 2: each step removes request overhead; at high
    // selectivity the orderings are strict.
    let idx = ex::ablation::run_index_ablation(20_000).unwrap();
    let worst = idx.last().unwrap();
    assert!(worst.multi_range.runtime * 5.0 < worst.single_range.runtime);
    assert!(worst.in_s3.runtime <= worst.multi_range.runtime);
    // (Batch counts over-project at tiny scale — one partial batch per
    // partition scales as a full one — so assert a conservative 20x.)
    assert!(worst.requests_multi < worst.requests_single / 20);
    assert!(worst.requests_in_s3 < worst.requests_multi);

    // Suggestion 3: ~4x denser SQL, same answer.
    let bloom = ex::ablation::run_bloom_ablation(0.004).unwrap();
    assert!(bloom.binary_sql_bytes * 3 < bloom.string_sql_bytes);
    assert_eq!(bloom.max_keys_binary, bloom.max_keys_string * 4);

    // Suggestion 4: native group-by flat in the group count and never
    // slower than the CASE-WHEN rewrite.
    let gb = ex::ablation::run_groupby_ablation(10_000).unwrap();
    for r in &gb {
        assert!(
            r.native.runtime <= r.case_when.runtime,
            "{} groups",
            r.n_groups
        );
    }
    let native_spread = gb.last().unwrap().native.runtime / gb[0].native.runtime;
    assert!(
        native_spread < 1.2,
        "native should be flat, spread {native_spread}"
    );
    assert!(gb.last().unwrap().case_when.runtime > 1.5 * gb[0].case_when.runtime);

    // Suggestion 5: simple scans get cheaper under aware pricing (Q6 is
    // the simplest pushed scan in the suite).
    let pricing = ex::ablation::run_pricing_ablation(0.004).unwrap();
    let q6 = pricing.iter().find(|r| r.name == "TPCH Q6").unwrap();
    assert!(q6.aware.scan < q6.flat.scan);
}

#[test]
fn fig11_format_shapes() {
    let rows = ex::fig11_parquet::run(8_000).unwrap();
    let get = |cols: usize, sel: f64| {
        rows.iter()
            .find(|r| r.columns == cols && (r.selectivity - sel).abs() < 1e-9)
            .unwrap()
    };
    // Columnar never loses.
    for r in &rows {
        assert!(r.columnar.runtime <= r.csv.runtime * 1.02);
    }
    // CSV pays for width at selectivity 0; columnar does not.
    assert!(get(20, 0.0).csv.runtime > 1.5 * get(1, 0.0).csv.runtime);
    assert!(get(20, 0.0).columnar.runtime < 1.2 * get(1, 0.0).columnar.runtime);
    // At selectivity 1 the two formats converge (transfer-bound; the
    // response is CSV either way — paper §IX).
    let r = get(20, 1.0);
    assert!(r.csv.runtime < 1.2 * r.columnar.runtime);
    // Compression ratio near the paper's 70%.
    assert!((0.5..0.95).contains(&r.size_ratio), "{}", r.size_ratio);
}
