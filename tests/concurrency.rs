//! Concurrency stress suite (ISSUE 3): many queries on **one shared
//! engine** must behave exactly as they do alone.
//!
//! * every result set at 8-way concurrency is identical to its serial
//!   execution (streaming scans are partition-ordered, so results are
//!   deterministic — contention must not change them);
//! * the store-global ledger delta equals the **sum of the per-query
//!   child ledgers** (conservation: scoped accounting loses nothing and
//!   double-counts nothing, with no resets anywhere);
//! * the adaptive planner's calibration bounds (tests/adaptive.rs) still
//!   hold per query while 8 threads hammer the same store.

use pushdowndb::common::pricing::Usage;
use pushdowndb::core::planner::execute_sql_verbose;
use pushdowndb::core::{execute_sql, QueryOutput, Strategy};
use pushdowndb::tpch::{planner_suite, tpch_context, PlannerQuery, TpchTables};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const THREADS: usize = 8;

fn run_suite_concurrently(
    ctx: &pushdowndb::core::QueryContext,
    tables: &TpchTables,
    suite: &[PlannerQuery],
    threads: usize,
    strategy: Strategy,
) -> Vec<QueryOutput> {
    // `threads × suite` queries: every thread runs the whole suite, all
    // interleaved on the shared context. Slot (t, q) keeps each output.
    let jobs: Vec<(usize, usize)> = (0..threads)
        .flat_map(|t| (0..suite.len()).map(move |q| (t, q)))
        .collect();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<QueryOutput>>> = Mutex::new(vec![None; jobs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(_, qi)) = jobs.get(i) else { break };
                let q = &suite[qi];
                let table = (q.table)(tables);
                let out = execute_sql(ctx, table, q.sql, strategy).unwrap();
                slots.lock().unwrap()[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("slot filled"))
        .collect()
}

/// (a) + (b): serial/concurrent result equivalence and exact global
/// ledger = Σ child ledgers, at 8 concurrent queries, for both fixed
/// strategies and the adaptive planner.
#[test]
fn concurrent_queries_match_serial_and_conserve_the_ledger() {
    let (ctx, tables) = tpch_context(0.003, 1_200).unwrap();
    let suite = planner_suite();
    for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
        // Serial references, one per suite query.
        let serial: Vec<QueryOutput> = suite
            .iter()
            .map(|q| execute_sql(&ctx, (q.table)(&tables), q.sql, strategy).unwrap())
            .collect();

        let before = ctx.store.global_ledger().snapshot();
        let outputs = run_suite_concurrently(&ctx, &tables, &suite, THREADS, strategy);
        let after = ctx.store.global_ledger().snapshot();

        let mut sum = Usage::default();
        for (i, out) in outputs.iter().enumerate() {
            let reference = &serial[i % suite.len()];
            assert_eq!(
                out.rows,
                reference.rows,
                "{:?} {}: concurrent result differs from serial",
                strategy,
                suite[i % suite.len()].name
            );
            assert_eq!(
                out.billed,
                reference.billed,
                "{:?} {}: per-query bill differs under contention",
                strategy,
                suite[i % suite.len()].name
            );
            // Each query's metrics agree with its own child ledger — the
            // invariant `delta_since` could never give under concurrency.
            assert_eq!(
                out.metrics.usage(),
                out.billed,
                "{:?} {}: metrics vs child ledger",
                strategy,
                suite[i % suite.len()].name
            );
            sum += out.billed;
        }
        assert_eq!(
            after,
            before + sum,
            "{strategy:?}: global ledger delta must equal the sum of child ledgers"
        );
    }
}

/// (c): the adaptive estimator's calibration bound — predicted usage
/// within 15% of the child ledger (512 B floor) — holds for every query
/// while 8 threads run the suite concurrently.
#[test]
fn adaptive_calibration_bounds_hold_under_contention() {
    let (ctx, tables) = tpch_context(0.003, 1_200).unwrap();
    let suite = planner_suite();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let jobs: Vec<usize> = (0..THREADS).flat_map(|_| 0..suite.len()).collect();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&qi) = jobs.get(i) else { break };
                let q = &suite[qi];
                let (out, explain) =
                    execute_sql_verbose(&ctx, (q.table)(&tables), q.sql, Strategy::Adaptive)
                        .unwrap();
                let predicted = explain
                    .predicted
                    .as_ref()
                    .expect("adaptive plans carry a prediction")
                    .usage();
                let measured = out.billed;
                let check = |pred: u64, meas: u64, what: &str| {
                    let slack = (0.15 * meas as f64).max(512.0);
                    if (pred as f64 - meas as f64).abs() > slack {
                        failures.lock().unwrap().push(format!(
                            "{} [{what}]: predicted {pred} vs billed {meas} (slack {slack:.0})",
                            q.name
                        ));
                    }
                };
                check(predicted.requests, measured.requests, "requests");
                check(
                    predicted.select_scanned_bytes,
                    measured.select_scanned_bytes,
                    "scanned",
                );
                check(
                    predicted.select_returned_bytes,
                    measured.select_returned_bytes,
                    "returned",
                );
                check(predicted.plain_bytes, measured.plain_bytes, "plain");
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    assert!(
        failures.is_empty(),
        "calibration violated under contention:\n{}",
        failures.join("\n")
    );
}

/// The workload driver (bench) at ≥ 8-way concurrency: digests, bills
/// and the conservation law hold end-to-end through the public harness.
#[test]
fn workload_driver_is_concurrency_invariant_at_8_way() {
    use pushdown_bench::workload::{run_workload, WorkloadSpec};
    let (ctx, tables) = tpch_context(0.002, 1_000).unwrap();
    let mut spec = WorkloadSpec {
        seed: 33,
        queries: 24,
        concurrency: 1,
        strategy: Strategy::Adaptive,
    };
    let serial = run_workload(&ctx, &tables, &spec).unwrap();
    assert_eq!(serial.failed, 0);
    spec.concurrency = 8;
    let before = ctx.store.global_ledger().snapshot();
    let concurrent = run_workload(&ctx, &tables, &spec).unwrap();
    let after = ctx.store.global_ledger().snapshot();
    assert_eq!(concurrent.failed, 0);
    for (a, b) in serial.per_query.iter().zip(&concurrent.per_query) {
        assert_eq!(a.row_digest, b.row_digest, "query {}", a.index);
        assert_eq!(a.billed, b.billed, "query {}", a.index);
    }
    assert_eq!(after, before + concurrent.sum_billed);
    assert!(concurrent.total_dollars > 0.0);
}
