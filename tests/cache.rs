//! Hybrid caching-tier suite (ISSUE 5; tiered + chunked in ISSUE 9).
//!
//! * **Differential** — `cached ≡ uncached`: every planner-suite query
//!   (joins included) returns identical rows with the cache cold, warm,
//!   forced, or absent; a proptest interleaves `put_object` /
//!   `delete_object` invalidation between runs and checks the cache
//!   never serves stale bytes.
//! * **Ledger conservation** — global = Σ child ledgers at 8 threads
//!   sharing one `SegmentCache`; a hit never bills a byte, and a fill
//!   never bills its bytes twice across retries.
//! * **Acceptance** — on a Zipf(θ=1.0) repeated workload whose hot set
//!   fits the budget, remotely scanned billed bytes drop ≥ 50% vs
//!   cache-disabled; the cache-aware adaptive plan's measured $ stays
//!   ≤ 1.1× min(cached-local, pushdown, remote-full) per suite query;
//!   and predicted Usage for chosen cached plans stays within the 15%
//!   calibration bound.
//! * **Tiered partial hits** (ISSUE 9) — a partially resident object
//!   bills exactly its coalesced gap bytes (never a full reload), from
//!   either tier; tier movement (demote / promote / gap fill) keeps
//!   `metrics.usage() == billed` exact; a disk tier keeps demoted
//!   segments servable; per-node cluster slices split both tier
//!   budgets and stay byte-equal to the serial bill on cold passes; a
//!   proptest pins `served-locally + billed == bytes scanned` across
//!   random tier budgets, chunk sizes, mutations and chaos seeds.

use proptest::prelude::*;
use pushdown_bench::workload::{generate_zipf, run_stream, WorkloadSpec};
use pushdowndb::common::pricing::Usage;
use pushdowndb::common::{DataType, Row, Schema, Value};
use pushdowndb::core::planner::execute_sql_verbose;
use pushdowndb::core::{execute_sql, upload_csv_table, QueryContext, QueryOutput, Strategy};
use pushdowndb::tpch::{planner_suite, tpch_context, TpchTables};

fn assert_rows_close(a: &[Row], b: &[Row], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        for (vx, vy) in x.values().iter().zip(y.values()) {
            match (vx, vy) {
                (Value::Float(fx), Value::Float(fy)) => assert!(
                    (fx - fy).abs() <= 1e-6 * (1.0 + fx.abs().max(fy.abs())),
                    "{what}: {fx} vs {fy}"
                ),
                _ => assert_eq!(vx, vy, "{what}"),
            }
        }
    }
}

fn dataset_bytes(ctx: &QueryContext, t: &TpchTables) -> u64 {
    t.all().iter().map(|t| t.total_bytes(&ctx.store)).sum()
}

/// Differential: the full planner suite (single-table families + joined
/// plans) returns identical rows with the cache absent, cold, warm, and
/// under the forced cached-local strategy.
#[test]
fn cached_equals_uncached_on_the_full_suite() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let reference: Vec<QueryOutput> = planner_suite()
        .iter()
        .map(|q| execute_sql(&ctx, (q.table)(&t), q.sql, Strategy::Adaptive).unwrap())
        .collect();
    let ctx = ctx.with_cache(64 << 20);
    let forced = ctx.clone().with_cache_reads(true);
    for (qi, q) in planner_suite().iter().enumerate() {
        let table = (q.table)(&t);
        // Cold (fills), then warm (hits), then forced cached-local.
        for pass in ["cold", "warm"] {
            let out = execute_sql(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
            assert_rows_close(
                &reference[qi].rows,
                &out.rows,
                &format!("{} ({pass})", q.name),
            );
        }
        let out = execute_sql(&forced, table, q.sql, Strategy::Baseline).unwrap();
        assert_rows_close(
            &reference[qi].rows,
            &out.rows,
            &format!("{} (forced cached)", q.name),
        );
        // The fixed remote strategies stay pure even with a cache
        // installed: Baseline bills actual remote bytes.
        let base = execute_sql(&ctx, table, q.sql, Strategy::Baseline).unwrap();
        assert_rows_close(&reference[qi].rows, &base.rows, q.name);
    }
    let stats = ctx.cache().unwrap().stats();
    assert!(stats.fills > 0, "the suite must fill the cache");
    assert!(stats.hits > 0, "warm passes must hit");
}

/// Ledger conservation with the cache enabled: 8 threads × the planner
/// suite over one shared `SegmentCache`; global ledger delta equals the
/// sum of the per-query child ledgers, metrics equal ledgers per query,
/// and the billed bytes never exceed the uncached bill (hits are free).
#[test]
fn ledger_conservation_at_8_threads_sharing_one_cache() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    // Uncached reference bill, per query.
    let uncached: Vec<Usage> = planner_suite()
        .iter()
        .map(|q| {
            execute_sql(&ctx, (q.table)(&t), q.sql, Strategy::Adaptive)
                .unwrap()
                .billed
        })
        .collect();
    let ctx = ctx.with_cache(64 << 20);
    let suite = planner_suite();
    for round in 0..2 {
        let before = ctx.store.global_ledger().snapshot();
        let outputs: Vec<QueryOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let ctx = &ctx;
                    let t = &t;
                    let q = &suite[i % suite.len()];
                    scope.spawn(move || {
                        execute_sql(&ctx.scoped(), (q.table)(t), q.sql, Strategy::Adaptive).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let after = ctx.store.global_ledger().snapshot();
        let mut sum = Usage::default();
        for (i, out) in outputs.iter().enumerate() {
            sum += out.billed;
            assert_eq!(
                out.metrics.usage(),
                out.billed,
                "round {round} query {i}: metrics must equal the child ledger"
            );
            let reference = &uncached[i % suite.len()];
            assert!(
                out.billed.select_scanned_bytes + out.billed.plain_bytes
                    <= reference.select_scanned_bytes + reference.plain_bytes,
                "round {round} query {i}: a hit never bills bytes"
            );
        }
        assert_eq!(
            after,
            before + sum,
            "round {round}: global = Σ child ledgers with a shared cache"
        );
    }
    // Round 2 ran fully warm: billed bytes must have dropped.
    let s = ctx.cache().unwrap().stats();
    assert!(s.hits > 0, "{s:?}");
}

/// Acceptance: Zipf(θ=1.0) repeated workload, budget ≥ the hot set ⇒
/// total billed remotely-scanned bytes drop ≥ 50% vs cache-disabled.
#[test]
fn zipf_hot_set_cuts_billed_bytes_by_half() {
    let spec = WorkloadSpec {
        seed: 42,
        queries: 48,
        concurrency: 1,
        strategy: Strategy::Adaptive,
    };
    let stream = generate_zipf(spec.seed, spec.queries, 1.0);
    let remote = |u: &Usage| u.select_scanned_bytes + u.plain_bytes;

    let (ctx_off, t_off) = tpch_context(0.002, 1_000).unwrap();
    let disabled = run_stream(&ctx_off, &t_off, &spec, &stream).unwrap();
    assert_eq!(disabled.failed, 0);

    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let budget = dataset_bytes(&ctx, &t); // hot set trivially fits
    let ctx = ctx.with_cache(budget);
    let cached = run_stream(&ctx, &t, &spec, &stream).unwrap();
    assert_eq!(cached.failed, 0);

    // Same answers, query for query. (Row *counts* here, not digests:
    // a float SUM accumulated locally vs merged from pushdown partials
    // differs in the last ulp, and the dedicated differential test
    // already pins value equality under a tolerance.)
    for (a, b) in disabled.per_query.iter().zip(&cached.per_query) {
        assert_eq!(a.rows, b.rows, "query {} ({})", a.index, a.name);
        assert!(a.error.is_none() && b.error.is_none(), "query {}", a.index);
    }
    let (off, on) = (remote(&disabled.sum_billed), remote(&cached.sum_billed));
    assert!(
        (on as f64) <= 0.5 * off as f64,
        "billed remote bytes {on} vs disabled {off}: expected ≥ 50% drop"
    );
    // And the bill itself never got worse.
    assert!(cached.total_dollars <= disabled.total_dollars * 1.001);
}

/// Acceptance: with a warm cache, the adaptive plan's *measured* dollars
/// are ≤ 1.1 × min(cached-local, pushdown, remote-full) on every
/// planner-suite query.
#[test]
fn cache_aware_adaptive_tracks_the_cheapest_tier() {
    let (ctx, t) = tpch_context(0.005, 1_500).unwrap();
    let budget = dataset_bytes(&ctx, &t);
    let ctx = ctx.with_cache(budget);
    let forced_cached = ctx.clone().with_cache_reads(true);
    for q in planner_suite() {
        let table = (q.table)(&t);
        // Warm the cache for this query's table(s).
        execute_sql(&forced_cached, table, q.sql, Strategy::Baseline).unwrap();
        let cost = |o: &QueryOutput| o.metrics.cost(&ctx.model, &ctx.pricing).total();
        let remote_full = cost(&execute_sql(&ctx, table, q.sql, Strategy::Baseline).unwrap());
        let pushdown = cost(&execute_sql(&ctx, table, q.sql, Strategy::Pushdown).unwrap());
        let cached = cost(&execute_sql(&forced_cached, table, q.sql, Strategy::Baseline).unwrap());
        let adaptive = cost(&execute_sql(&ctx, table, q.sql, Strategy::Adaptive).unwrap());
        let min = remote_full.min(pushdown).min(cached);
        assert!(
            adaptive <= min * 1.10,
            "{}: adaptive ${adaptive:.6} vs min(cached ${cached:.6}, pushdown \
             ${pushdown:.6}, remote ${remote_full:.6})",
            q.name
        );
    }
}

/// Calibration: when the adaptive planner picks a cached plan, its
/// predicted `Usage` lands within 15% of the measured child ledger
/// (512-byte absolute floor), exactly like the uncached bound.
#[test]
fn cached_plan_predictions_stay_calibrated() {
    let (ctx, t) = tpch_context(0.005, 1_500).unwrap();
    let budget = dataset_bytes(&ctx, &t);
    let ctx = ctx.with_cache(budget);
    let mut cached_plans = 0;
    for q in planner_suite() {
        let table = (q.table)(&t);
        // Warm pass, then the measured pass.
        execute_sql(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
        let (out, explain) = execute_sql_verbose(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
        let chosen = explain
            .candidates
            .iter()
            .find(|c| c.chosen)
            .expect("adaptive marks a chosen candidate");
        if !chosen.algorithm.starts_with("cached") {
            continue;
        }
        cached_plans += 1;
        let predicted = explain.predicted.as_ref().unwrap().usage();
        let measured = out.billed;
        let check = |pred: u64, meas: u64, what: &str| {
            let slack = (0.15 * meas as f64).max(512.0);
            assert!(
                (pred as f64 - meas as f64).abs() <= slack,
                "{} [{}]: predicted {pred} vs measured {meas} (slack {slack:.0})",
                q.name,
                what
            );
        };
        check(predicted.requests, measured.requests, "requests");
        check(
            predicted.select_scanned_bytes,
            measured.select_scanned_bytes,
            "scanned",
        );
        check(
            predicted.select_returned_bytes,
            measured.select_returned_bytes,
            "returned",
        );
        check(predicted.plain_bytes, measured.plain_bytes, "plain");
        // Metrics and ledger agree exactly on cached plans too.
        assert_eq!(out.metrics.usage(), out.billed, "{}", q.name);
    }
    assert!(
        cached_plans >= 3,
        "a warm full-dataset cache should win several suite queries, got {cached_plans}"
    );
}

/// EXPLAIN surfaces the cache: candidates list the cached plan, and the
/// operator tree reports the hit/fill byte split per cache-serving node.
#[test]
fn explain_reports_cache_candidates_and_hit_fill_bytes() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let budget = dataset_bytes(&ctx, &t);
    let ctx = ctx.with_cache(budget);
    let sql = "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority";
    // Warm, then explain.
    execute_sql(&ctx, &t.orders, sql, Strategy::Adaptive).unwrap();
    let (out, ex) = execute_sql_verbose(&ctx, &t.orders, sql, Strategy::Adaptive).unwrap();
    let names: Vec<&str> = ex.candidates.iter().map(|c| c.algorithm).collect();
    assert!(names.contains(&"cached-local"), "{names:?}");
    let report = ex.report(&out, &ctx);
    assert!(report.contains("cache:"), "{report}");
    assert!(report.contains("B hit"), "{report}");
    // Joined shape: the candidate space includes the all-cached and the
    // mixed build-cached plans, and a warm cached join renders CachedScan
    // nodes with their partition hit counts.
    let jsql = "SELECT l_shipmode, COUNT(*) AS n FROM orders \
                JOIN lineitem ON o_orderkey = l_orderkey \
                GROUP BY l_shipmode ORDER BY l_shipmode";
    execute_sql(&ctx, &t.orders, jsql, Strategy::Adaptive).unwrap();
    let (jout, jex) = execute_sql_verbose(&ctx, &t.orders, jsql, Strategy::Adaptive).unwrap();
    let names: Vec<&str> = jex.candidates.iter().map(|c| c.algorithm).collect();
    assert!(names.contains(&"cached"), "{names:?}");
    assert!(names.contains(&"cached-build"), "{names:?}");
    let jreport = jex.report(&jout, &ctx);
    let cached_join = matches!(
        jex.kind,
        pushdowndb::core::planner::PlanKind::Join {
            algorithm: "cached"
        } | pushdowndb::core::planner::PlanKind::Join {
            algorithm: "cached-build"
        }
    );
    if cached_join {
        assert!(jreport.contains("CachedScan["), "{jreport}");
        assert!(jreport.contains("partitions hit"), "{jreport}");
    }
}

/// Chaos during fills: with a fault plan installed, cached scans retry
/// fills under the uniform policy — the answer matches the fault-free
/// run, bytes bill once, retried attempts bill extra requests.
#[test]
fn chaos_faults_during_fills_bill_bytes_once() {
    use pushdowndb::common::RetryPolicy;
    use pushdowndb::s3::FaultPlan;
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let ctx = ctx
        .with_retry(RetryPolicy::with_attempts(12))
        .with_cache(64 << 20);
    let forced = ctx.clone().with_cache_reads(true);
    let q = planner_suite()
        .into_iter()
        .find(|q| q.name == "groupby-uniform")
        .unwrap();
    let clean = execute_sql(&forced, (q.table)(&t), q.sql, Strategy::Baseline).unwrap();
    // Fresh cold cache + chaos: every partition fill retries through the
    // fault plan.
    let ctx = ctx.with_cache(64 << 20);
    let forced = ctx.clone().with_cache_reads(true);
    ctx.store.set_fault_plan(Some(FaultPlan::new(1, 0.45)));
    let chaotic = execute_sql(
        &forced.scoped_with_salt(1),
        (q.table)(&t),
        q.sql,
        Strategy::Baseline,
    )
    .unwrap();
    assert_rows_close(&clean.rows, &chaotic.rows, "chaotic fills");
    assert_eq!(
        chaotic.billed.plain_bytes, clean.billed.plain_bytes,
        "fill bytes bill once across retries"
    );
    assert!(
        chaotic.billed.requests > clean.billed.requests,
        "retried fill attempts are extra requests ({} vs {})",
        chaotic.billed.requests,
        clean.billed.requests
    );
    // Warm after the chaotic fill: hits are free even under chaos.
    let warm = execute_sql(
        &forced.scoped_with_salt(2),
        (q.table)(&t),
        q.sql,
        Strategy::Baseline,
    )
    .unwrap();
    ctx.store.set_fault_plan(None);
    assert_rows_close(&clean.rows, &warm.rows, "warm under chaos");
    assert_eq!(warm.billed.plain_bytes, 0, "hits bill no bytes");
    assert_eq!(warm.billed.requests, 0, "hits bill no requests");
}

/// Differential proptest: arbitrary data, interleaved re-uploads
/// (put_object over live partitions) and partition deletes — the
/// cached run must match the uncached ground truth after every
/// mutation, i.e. invalidation never lets the cache serve stale bytes.
#[derive(Debug, Clone)]
enum Step {
    Query(usize),
    Rewrite(u64),
    DeleteTail,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_matches_uncached_across_mutations(
        n in 40usize..160,
        per_part in 10usize..40,
        budget_kb in 1u64..64,
        steps in proptest::collection::vec(0u8..8, 4..14),
    ) {
        let make_rows = |version: u64, n: usize| -> Vec<Row> {
            (0..n)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Int(((i as u64).wrapping_mul(7 + version) % 100) as i64),
                        Value::Str(format!("s{}", (i as u64 + version) % 5)),
                    ])
                })
                .collect()
        };
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("s", DataType::Str),
        ]);
        let queries = [
            "SELECT k, v FROM t WHERE v < 40",
            "SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s",
            "SELECT SUM(v), COUNT(*) FROM t",
            "SELECT * FROM t ORDER BY k DESC LIMIT 7",
        ];
        let store = pushdowndb::s3::S3Store::new();
        let mut table = upload_csv_table(&store, "b", "t", &schema, &make_rows(0, n), per_part).unwrap();
        let ctx = QueryContext::new(store.clone()).with_cache(budget_kb << 10);
        let cached_ctx = ctx.clone().with_cache_reads(true);
        // Decode the step stream: 0..=4 → run query (idx % 4), 5..=6 →
        // rewrite the table in place, 7 → delete the last partition.
        for (si, s) in steps.iter().enumerate() {
            let step = match *s {
                0..=4 => Step::Query(*s as usize % queries.len()),
                5 | 6 => Step::Rewrite(si as u64 + 1),
                _ => Step::DeleteTail,
            };
            match step {
                Step::Query(qi) => {
                    let sql = queries[qi];
                    let truth = execute_sql(&ctx, &table, sql, Strategy::Baseline).unwrap();
                    let cached = execute_sql(&cached_ctx, &table, sql, Strategy::Baseline).unwrap();
                    let adaptive = execute_sql(&ctx, &table, sql, Strategy::Adaptive).unwrap();
                    prop_assert_eq!(&truth.rows, &cached.rows, "step {} {}", si, sql);
                    prop_assert_eq!(&truth.rows, &adaptive.rows, "step {} {}", si, sql);
                }
                Step::Rewrite(version) => {
                    table = upload_csv_table(
                        &store, "b", "t", &schema, &make_rows(version, n), per_part,
                    ).unwrap();
                }
                Step::DeleteTail => {
                    let parts = table.partitions(&store);
                    if parts.len() > 1 {
                        store.delete_object("b", parts.last().unwrap());
                        // The catalog row count is stale after a raw
                        // delete; shrink it so LIMIT sizing stays within
                        // the live data.
                        table.row_count = table.row_count.saturating_sub(per_part as u64);
                    }
                }
            }
        }
    }
}

/// Tiered partial hits (ISSUE 9): an object with only alternating
/// chunks resident serves the cached chunks from their tier and bills
/// exactly the coalesced gap bytes — one range GET per gap run, never a
/// full reload — from the mem tier and from the disk tier alike.
#[test]
fn partial_hit_scans_bill_exactly_the_gap_bytes() {
    use pushdowndb::cache::SegmentKey;
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let rows: Vec<Row> = (0..400i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int((i * 7) % 100)]))
        .collect();
    let sql = "SELECT k, v FROM t WHERE v < 50";
    const CHUNK: u64 = 256;
    for (mem, disk) in [(1u64 << 20, 0u64), (0, 1 << 20)] {
        let store = pushdowndb::s3::S3Store::new();
        let table = upload_csv_table(&store, "b", "t", &schema, &rows, 400).unwrap();
        let truth = execute_sql(
            &QueryContext::new(store.clone()),
            &table,
            sql,
            Strategy::Baseline,
        )
        .unwrap();

        let ctx = QueryContext::new(store.clone())
            .with_cache_tiers(mem, disk)
            .with_cache_chunk_bytes(CHUNK);
        let forced = ctx.clone().with_cache_reads(true);
        let key = table.partitions(&store)[0].clone();
        let len = store.object_size("b", &key).unwrap();
        let data = store.get_object("b", &key).unwrap();
        assert!(len > 4 * CHUNK, "need a multi-chunk object, got {len} B");

        // Insert the even chunks by hand (the same fixed-block layout
        // the CSV scan derives); the odd chunks are the gaps, and the
        // alternation makes every gap its own coalesced run.
        let cache = ctx.cache().unwrap();
        let epoch = cache.begin_fill(&SegmentKey::whole("b", &key));
        let chunks: Vec<(u64, u64)> = (0..len)
            .step_by(CHUNK as usize)
            .map(|f| (f, (f + CHUNK).min(len)))
            .collect();
        cache.record_layout("b", &key, epoch, chunks.clone());
        let (mut local, mut gaps, mut gap_runs) = (0u64, 0u64, 0u64);
        for (i, &(first, last)) in chunks.iter().enumerate() {
            if i % 2 == 0 {
                cache.insert(
                    SegmentKey::chunk("b", &key, (first, last)),
                    data.slice(first as usize..last as usize),
                    epoch,
                );
                local += last - first;
            } else {
                gaps += last - first;
                gap_runs += 1;
            }
        }
        let occ = cache.occupancy("b", &key, len);
        assert_eq!(occ.gap_bytes, gaps, "occupancy agrees with the inserts");
        assert_eq!(occ.gap_requests, gap_runs);
        assert_eq!(occ.mem_bytes + occ.disk_bytes, local);

        let before = cache.stats();
        let out = execute_sql(&forced, &table, sql, Strategy::Baseline).unwrap();
        assert_rows_close(&truth.rows, &out.rows, "partial-hit rows");
        assert_eq!(
            out.billed.plain_bytes, gaps,
            "mem {mem} disk {disk}: bill exactly the gap bytes"
        );
        assert_eq!(
            out.billed.requests, gap_runs,
            "mem {mem} disk {disk}: one range GET per coalesced gap run"
        );
        assert_eq!(out.metrics.usage(), out.billed);
        let after = cache.stats();
        assert_eq!(
            after.hit_bytes - before.hit_bytes,
            local,
            "cached chunks serve locally"
        );
        if mem == 0 {
            assert_eq!(
                after.disk_hit_bytes - before.disk_hit_bytes,
                local,
                "zero mem budget: partial hits serve in place from disk"
            );
        }

        // The gap fill completed the object: the next pass is free.
        let warm = execute_sql(&forced, &table, sql, Strategy::Baseline).unwrap();
        assert_rows_close(&truth.rows, &warm.rows, "warm rows");
        assert_eq!(
            warm.billed.requests + warm.billed.plain_bytes,
            0,
            "fully resident after the gap fill: nothing billed"
        );
    }
}

/// Chaos on the gap-fill path: with a fault plan installed mid-scan,
/// the coalesced gap GETs retry under the uniform policy — rows match
/// the clean run, gap *bytes* bill exactly once, retried attempts bill
/// extra *requests*, and metrics stay equal to the ledger.
#[test]
fn chaos_retried_gap_fills_bill_gap_bytes_once() {
    use pushdowndb::cache::SegmentKey;
    use pushdowndb::common::RetryPolicy;
    use pushdowndb::s3::FaultPlan;
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let rows: Vec<Row> = (0..400i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int((i * 3) % 100)]))
        .collect();
    let sql = "SELECT SUM(v), COUNT(*) FROM t";
    const CHUNK: u64 = 256;
    let store = pushdowndb::s3::S3Store::new();
    let table = upload_csv_table(&store, "b", "t", &schema, &rows, 400).unwrap();
    let truth = execute_sql(
        &QueryContext::new(store.clone()),
        &table,
        sql,
        Strategy::Baseline,
    )
    .unwrap();

    let ctx = QueryContext::new(store.clone())
        .with_retry(RetryPolicy::with_attempts(12))
        .with_cache_tiers(1 << 20, 1 << 20)
        .with_cache_chunk_bytes(CHUNK);
    let forced = ctx.clone().with_cache_reads(true);
    let key = table.partitions(&store)[0].clone();
    let len = store.object_size("b", &key).unwrap();
    let data = store.get_object("b", &key).unwrap();
    let cache = ctx.cache().unwrap();
    let epoch = cache.begin_fill(&SegmentKey::whole("b", &key));
    let chunks: Vec<(u64, u64)> = (0..len)
        .step_by(CHUNK as usize)
        .map(|f| (f, (f + CHUNK).min(len)))
        .collect();
    cache.record_layout("b", &key, epoch, chunks.clone());
    let (mut gaps, mut gap_runs) = (0u64, 0u64);
    for (i, &(first, last)) in chunks.iter().enumerate() {
        if i % 2 == 0 {
            cache.insert(
                SegmentKey::chunk("b", &key, (first, last)),
                data.slice(first as usize..last as usize),
                epoch,
            );
        } else {
            gaps += last - first;
            gap_runs += 1;
        }
    }
    store.set_fault_plan(Some(FaultPlan::new(3, 0.45)));
    let out = execute_sql(&forced.scoped_with_salt(1), &table, sql, Strategy::Baseline).unwrap();
    store.set_fault_plan(None);
    assert_rows_close(&truth.rows, &out.rows, "chaotic gap fill");
    assert_eq!(
        out.billed.plain_bytes, gaps,
        "retried gap fills bill their bytes exactly once"
    );
    assert!(
        out.billed.requests > gap_runs,
        "seed 3 salt 1 must retry at least one gap GET ({} vs {gap_runs} runs)",
        out.billed.requests
    );
    assert_eq!(
        out.metrics.usage(),
        out.billed,
        "metrics == ledger under chaos"
    );
}

/// Tier movement: with a mem tier holding ⅛ of the table, repeated
/// scans demote on eviction and promote on hit; metrics equal the
/// billed ledger on every pass, and a disk tier behind the same mem
/// budget keeps the demoted segments servable — warm passes bill
/// nothing, where mem-only keeps re-billing the evicted ⅞.
#[test]
fn disk_tier_keeps_demoted_segments_servable() {
    let q = planner_suite()
        .into_iter()
        .find(|q| q.name == "groupby-uniform")
        .unwrap();
    let run = |disk_factor: u64| {
        let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
        let table = (q.table)(&t);
        let bytes = table.total_bytes(&ctx.store);
        let ctx = ctx
            .with_cache_tiers(bytes / 8, bytes * disk_factor)
            .with_cache_chunk_bytes(4096)
            .with_cache_reads(true);
        let mut last = 0;
        for pass in 0..3 {
            let out = execute_sql(&ctx, table, q.sql, Strategy::Baseline).unwrap();
            assert_eq!(
                out.metrics.usage(),
                out.billed,
                "disk×{disk_factor} pass {pass}: metrics == ledger through tier movement"
            );
            last = out.billed.plain_bytes;
        }
        (last, ctx.cache().unwrap().stats())
    };
    let (mem_only_remote, mem_stats) = run(0);
    let (tiered_remote, tier_stats) = run(4);
    assert!(
        mem_stats.evictions > 0,
        "a ⅛ mem budget must churn: {mem_stats:?}"
    );
    assert!(
        mem_only_remote > 0,
        "mem-only keeps re-billing evicted segments"
    );
    assert_eq!(
        tiered_remote, 0,
        "mem + disk hold the table: warm passes bill nothing ({tier_stats:?})"
    );
    assert!(
        tier_stats.demotions > 0 && tier_stats.promotions > 0 && tier_stats.disk_hits > 0,
        "the warm passes must exercise demote + disk-hit + promote: {tier_stats:?}"
    );
}

/// Per-node tier slices (ISSUE 9): a cluster with a tiered cache bills
/// byte-for-byte the serial uncached ledger on the cold pass at 1, 2
/// and 4 nodes (read-through creates no extra billable bytes), serves
/// the warm pass entirely from the node slices, and conserves the
/// global ledger as Σ per-query bills.
#[test]
fn cluster_tiered_slices_bill_byte_equal_and_serve_warm() {
    let sql = "SELECT l_shipmode, COUNT(*) AS n FROM orders \
               JOIN lineitem ON o_orderkey = l_orderkey \
               GROUP BY l_shipmode ORDER BY l_shipmode";
    let (sctx, st) = tpch_context(0.002, 1_000).unwrap();
    let serial = execute_sql(&sctx, &st.orders, sql, Strategy::Baseline).unwrap();
    for n in [1usize, 2, 4] {
        let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
        let total = dataset_bytes(&ctx, &t);
        // Install the tiered cache *before* attaching the cluster so
        // every node slices both budgets (mem/4/n + 4·total/n each).
        let ctx = ctx
            .with_cache_tiers(total / 4, total * 4)
            .with_cache_chunk_bytes(4096)
            .with_nodes(n)
            .with_cache_reads(true);
        let before = ctx.store.global_ledger().snapshot();
        let cold = execute_sql(&ctx, &t.orders, sql, Strategy::Baseline).unwrap();
        let warm = execute_sql(&ctx, &t.orders, sql, Strategy::Baseline).unwrap();
        let after = ctx.store.global_ledger().snapshot();
        assert_eq!(cold.rows, serial.rows, "{n} nodes: cold rows");
        assert_eq!(
            cold.billed, serial.billed,
            "{n} nodes: the cold read-through bills exactly the serial uncached ledger"
        );
        assert_eq!(cold.metrics.usage(), cold.billed, "{n} nodes: cold metrics");
        assert_eq!(warm.rows, serial.rows, "{n} nodes: warm rows");
        assert_eq!(
            warm.billed.requests + warm.billed.plain_bytes,
            0,
            "{n} nodes: the warm pass serves fully from the node slices"
        );
        assert_eq!(warm.metrics.usage(), warm.billed, "{n} nodes: warm metrics");
        assert_eq!(
            after,
            before + cold.billed + warm.billed,
            "{n} nodes: global = Σ children with per-node tier slices"
        );
    }
}

// Differential proptest over the tiered chunked path: random tier
// budgets (zero included), chunk sizes, rewrite/delete interleavings
// and pinned chaos seeds retrying gap fills mid-scan. Every cached run
// matches the cold ground truth row-for-row, and conservation holds
// exactly: locally served bytes + billed gap bytes == bytes scanned —
// a hit never bills, a gap never bills twice, even across retries.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tiered_partial_hits_match_cold_across_mutations(
        n in 60usize..160,
        per_part in 12usize..40,
        mem_kb in 0u64..8,
        disk_kb in 0u64..16,
        chunk in 64u64..512,
        chaos_seed in 0u64..4,
        steps in proptest::collection::vec(0u8..10, 4..12),
    ) {
        use pushdowndb::common::RetryPolicy;
        use pushdowndb::s3::FaultPlan;
        let make_rows = |version: u64, n: usize| -> Vec<Row> {
            (0..n)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Int(((i as u64).wrapping_mul(11 + version) % 100) as i64),
                        Value::Str(format!("s{}", (i as u64 + version) % 5)),
                    ])
                })
                .collect()
        };
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("s", DataType::Str),
        ]);
        let queries = [
            "SELECT k, v FROM t WHERE v < 40",
            "SELECT s, COUNT(*), SUM(v) FROM t GROUP BY s",
            "SELECT SUM(v), COUNT(*) FROM t",
            "SELECT * FROM t ORDER BY k DESC LIMIT 7",
        ];
        let store = pushdowndb::s3::S3Store::new();
        let mut table = upload_csv_table(&store, "b", "t", &schema, &make_rows(0, n), per_part).unwrap();
        let ctx = QueryContext::new(store.clone())
            .with_retry(RetryPolicy::with_attempts(12))
            .with_cache_tiers(mem_kb << 10, disk_kb << 10)
            .with_cache_chunk_bytes(chunk);
        let cached_ctx = ctx.clone().with_cache_reads(true);
        let cache = ctx.cache().unwrap();
        // Decode the step stream: 0..=3 → clean query, 4..=6 → query
        // under a pinned-seed fault plan (gap fills retry mid-scan),
        // 7 | 8 → rewrite the table in place, 9 → delete the tail.
        for (si, s) in steps.iter().enumerate() {
            match *s {
                0..=6 => {
                    let chaotic = *s >= 4;
                    let sql = queries[*s as usize % queries.len()];
                    let truth = execute_sql(&ctx, &table, sql, Strategy::Baseline).unwrap();
                    let scanned: u64 = table
                        .partitions(&store)
                        .iter()
                        .map(|k| store.object_size("b", k).unwrap())
                        .sum();
                    if chaotic {
                        store.set_fault_plan(Some(FaultPlan::new(chaos_seed, 0.35)));
                    }
                    let before = cache.stats();
                    let out = execute_sql(
                        &cached_ctx.scoped_with_salt(si as u64),
                        &table,
                        sql,
                        Strategy::Baseline,
                    )
                    .unwrap();
                    store.set_fault_plan(None);
                    let after = cache.stats();
                    prop_assert_eq!(&truth.rows, &out.rows, "step {} {}", si, sql);
                    let local = after.hit_bytes - before.hit_bytes;
                    prop_assert_eq!(
                        out.billed.plain_bytes + local,
                        scanned,
                        "step {} {}: served-locally + billed == scanned (chaos {})",
                        si, sql, chaotic
                    );
                    prop_assert_eq!(
                        out.metrics.usage(),
                        out.billed,
                        "step {} {}: metrics == ledger",
                        si, sql
                    );
                }
                7 | 8 => {
                    table = upload_csv_table(
                        &store, "b", "t", &schema, &make_rows(si as u64 + 1, n), per_part,
                    ).unwrap();
                }
                _ => {
                    let parts = table.partitions(&store);
                    if parts.len() > 1 {
                        store.delete_object("b", parts.last().unwrap());
                        table.row_count = table.row_count.saturating_sub(per_part as u64);
                    }
                }
            }
        }
    }
}
