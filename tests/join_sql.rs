//! Differential tests for multi-table SQL (ISSUE 4): join plans built
//! from SQL through the physical-plan IR must return row-identical
//! results to the programmatic `join::adaptive` path, pushdown join
//! plans must never bill more transferred bytes than Baseline (mirrors
//! `tests/differential.rs`), and the TPC-H Q3-shaped statement must run
//! end-to-end under every strategy with a per-operator
//! predicted-vs-actual tree and a competitive adaptive pick.

use pushdowndb::core::algos::join;
use pushdowndb::core::planner::{execute_sql_verbose, PlanKind};
use pushdowndb::core::{execute_sql, QueryOutput, Strategy};
use pushdowndb::sql::parse_expr;
use pushdowndb::tpch::{planner_suite, tpch_context};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

fn sorted_rows(mut out: QueryOutput) -> Vec<pushdowndb::common::Row> {
    out.rows.sort_by(|x, y| {
        for (a, b) in x.values().iter().zip(y.values()) {
            let o = a.total_cmp(b);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    out.rows
}

/// The SQL join path returns exactly what the programmatic
/// `join::adaptive` API returns — for the paper's Listing-2 SUM shape
/// and for plain row output.
#[test]
fn sql_join_plans_match_the_programmatic_join_path() {
    let (ctx, t) = tpch_context(0.003, 1_200).unwrap();
    let q = join::JoinQuery {
        left: t.customer.clone(),
        right: t.orders.clone(),
        left_key: "c_custkey".into(),
        right_key: "o_custkey".into(),
        left_pred: Some(parse_expr("c_acctbal < 0").unwrap()),
        right_pred: None,
        left_proj: vec!["c_custkey".into()],
        right_proj: vec!["o_totalprice".into()],
        sum_column: Some("o_totalprice".into()),
    };
    let (programmatic, algorithm) = join::adaptive(&ctx, &q).unwrap();
    assert!(["baseline", "filtered", "bloom"].contains(&algorithm));

    let sql = "SELECT SUM(o_totalprice) FROM customer \
               JOIN orders ON c_custkey = o_custkey WHERE c_acctbal < 0";
    for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
        let out = execute_sql(&ctx, &t.customer, sql, strategy).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(
            close(
                out.rows[0][0].as_f64().unwrap(),
                programmatic.rows[0][0].as_f64().unwrap()
            ),
            "{strategy:?}: SQL {:?} vs programmatic {:?}",
            out.rows[0][0],
            programmatic.rows[0][0]
        );
    }

    // Row output: same join, projected columns, compared as sets.
    let mut rq = q.clone();
    rq.sum_column = None;
    let want = sorted_rows(join::filtered(&ctx, &rq).unwrap());
    let sql = "SELECT c_custkey, o_totalprice FROM customer \
               JOIN orders ON c_custkey = o_custkey WHERE c_acctbal < 0";
    for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
        let got = sorted_rows(execute_sql(&ctx, &t.customer, sql, strategy).unwrap());
        assert_eq!(got, want, "{strategy:?}");
    }
}

/// Pushdown join plans never bill more transferred bytes than Baseline,
/// and Adaptive returns the same rows as both — over every joined query
/// of the planner suite.
#[test]
fn joined_suite_pushdown_never_transfers_more_than_baseline() {
    let (ctx, t) = tpch_context(0.003, 1_200).unwrap();
    let mut joined = 0;
    for q in planner_suite() {
        if !q.name.starts_with("join-") {
            continue;
        }
        joined += 1;
        let table = (q.table)(&t);
        let base = execute_sql(&ctx, table, q.sql, Strategy::Baseline).unwrap();
        let push = execute_sql(&ctx, table, q.sql, Strategy::Pushdown).unwrap();
        let adapt = execute_sql(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
        assert_eq!(base.rows, push.rows, "{}", q.name);
        assert_eq!(base.rows, adapt.rows, "{}", q.name);
        assert!(
            push.metrics.bytes_returned() <= base.metrics.bytes_returned(),
            "{}: pushdown transferred {} vs baseline {}",
            q.name,
            push.metrics.bytes_returned(),
            base.metrics.bytes_returned()
        );
        // Scoped accounting holds through both join phases.
        assert_eq!(base.metrics.usage(), base.billed, "{} baseline", q.name);
        assert_eq!(push.metrics.usage(), push.billed, "{} pushdown", q.name);
        assert_eq!(adapt.metrics.usage(), adapt.billed, "{} adaptive", q.name);
    }
    assert!(joined >= 2, "suite carries at least two joined queries");
}

/// Acceptance (ISSUE 4): the TPC-H Q3-shaped statement — filter +
/// 2-table equi-join + GROUP BY + ORDER BY + LIMIT — executes through
/// `execute_sql_verbose` under every strategy; its report renders a
/// per-operator tree with predictions; and adaptive lands within 1.1×
/// of the cheaper fixed strategy on measured dollars.
#[test]
fn q3_shaped_statement_end_to_end_acceptance() {
    let (ctx, t) = tpch_context(0.003, 1_200).unwrap();
    let sql = "SELECT o_orderdate, o_shippriority, SUM(o_totalprice) AS revenue \
               FROM customer JOIN orders ON c_custkey = o_custkey \
               WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' \
               GROUP BY o_orderdate, o_shippriority \
               ORDER BY revenue DESC, o_orderdate LIMIT 10";
    let mut outputs = Vec::new();
    for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
        let (out, explain) = execute_sql_verbose(&ctx, &t.customer, sql, strategy).unwrap();
        assert!(
            matches!(explain.kind, PlanKind::Join { .. }),
            "{strategy:?}: {:?}",
            explain.kind
        );
        assert!(!out.rows.is_empty(), "{strategy:?}");
        assert!(out.rows.len() <= 10, "{strategy:?}");
        assert_eq!(
            out.schema.names(),
            vec!["o_orderdate", "o_shippriority", "revenue"],
            "{strategy:?}"
        );
        // Ordered by revenue desc, then date asc on ties.
        for w in out.rows.windows(2) {
            let major = w[0][2].total_cmp(&w[1][2]);
            assert!(major.is_ge(), "{strategy:?}");
            if major == std::cmp::Ordering::Equal {
                assert!(w[0][0].total_cmp(&w[1][0]).is_le(), "{strategy:?}");
            }
        }
        // The operator tree renders per node with predicted-vs-actual.
        let report = explain.report(&out, &ctx);
        assert!(report.contains("operators"), "{strategy:?}:\n{report}");
        assert!(report.contains("Join["), "{strategy:?}:\n{report}");
        assert!(report.contains("Scan["), "{strategy:?}:\n{report}");
        assert!(report.contains("GroupBy["), "{strategy:?}:\n{report}");
        assert!(report.contains("TopK["), "{strategy:?}:\n{report}");
        assert!(
            report.contains("predicted") && report.contains("actual"),
            "{strategy:?}:\n{report}"
        );
        outputs.push(out);
    }
    // All three strategies agree on the answer.
    assert_eq!(outputs[0].rows, outputs[1].rows);
    assert_eq!(outputs[0].rows, outputs[2].rows);

    // Adaptive is competitive: ≤ 1.1× the cheaper fixed strategy on
    // measured dollars.
    let cost = |o: &QueryOutput| o.metrics.cost(&ctx.model, &ctx.pricing).total();
    let min_fixed = cost(&outputs[0]).min(cost(&outputs[1]));
    assert!(
        cost(&outputs[2]) <= min_fixed * 1.10,
        "adaptive ${:.6} vs min(fixed) ${min_fixed:.6}",
        cost(&outputs[2])
    );
}

/// Joined queries through the workload harness: per-query child ledgers
/// sum exactly to the global ledger delta at 8 threads (the PR-3
/// conservation law extended to two-phase join plans).
#[test]
fn joined_queries_conserve_ledgers_at_8_threads() {
    use pushdowndb::common::pricing::Usage;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let suite: Vec<_> = planner_suite()
        .into_iter()
        .filter(|q| q.name.starts_with("join-"))
        .collect();
    let serial: Vec<QueryOutput> = suite
        .iter()
        .map(|q| execute_sql(&ctx, (q.table)(&t), q.sql, Strategy::Adaptive).unwrap())
        .collect();

    let jobs: Vec<usize> = (0..8).flat_map(|_| 0..suite.len()).collect();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<QueryOutput>>> = Mutex::new(vec![None; jobs.len()]);
    let before = ctx.store.global_ledger().snapshot();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&qi) = jobs.get(i) else { break };
                let q = &suite[qi];
                let out = execute_sql(&ctx, (q.table)(&t), q.sql, Strategy::Adaptive).unwrap();
                slots.lock().unwrap()[i] = Some(out);
            });
        }
    });
    let after = ctx.store.global_ledger().snapshot();
    let mut sum = Usage::default();
    for (i, out) in slots.into_inner().unwrap().into_iter().enumerate() {
        let out = out.expect("slot filled");
        let reference = &serial[jobs[i]];
        assert_eq!(out.rows, reference.rows, "join query {} rows", jobs[i]);
        assert_eq!(out.billed, reference.billed, "join query {} bill", jobs[i]);
        sum += out.billed;
    }
    assert_eq!(
        after,
        before + sum,
        "global ledger delta must equal the sum of joined queries' child ledgers"
    );
}
