//! Open-loop admission suite (ISSUE 8): the tenant-ledger conservation
//! law under *concurrent* admission with rejections interleaved, and a
//! pinned chaos seed driven through the admission queue.
//!
//! The admission layer hangs everything on one identity: a tenant's
//! ledger delta equals the sum of its queries' child ledgers, exactly,
//! with the global ledger equal to the sum over tenants. The property
//! test attacks it with racy queue occupancy (sheds interleave with
//! admissions nondeterministically); the chaos pin attacks it with
//! retries (requests bill per attempt, bytes once — the same invariant
//! as tests/chaos.rs, here flowing through tenant-joint scopes).

use proptest::prelude::*;
use pushdown_bench::admission::{run_open_loop, AdmissionController, TenantSpec};
use pushdown_bench::arrivals::{poisson_arrivals, Arrival, OpenLoopSpec};
use pushdown_bench::workload::query_salt;
use pushdowndb::common::pricing::Usage;
use pushdowndb::common::RetryPolicy;
use pushdowndb::core::{execute_sql, Strategy};
use pushdowndb::s3::FaultPlan;
use pushdowndb::tpch::tpch_context;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn trace(seed: u64, queries: usize, lambda_qps: f64) -> Vec<Arrival> {
    poisson_arrivals(&OpenLoopSpec {
        seed,
        queries,
        lambda_qps,
        tenants: 2,
        theta: 1.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// 8 threads admit and execute one trace against a shared
    /// controller. Queue occupancy is read racily, so which arrivals
    /// shed depends on interleaving — but every executed query bills
    /// jointly to its tenant, so tenant delta = Σ its queries and
    /// global delta = Σ tenants must hold on every interleaving.
    #[test]
    fn tenant_ledgers_decompose_under_concurrent_admission(
        seed in 0u64..500,
        queue_bound in 1usize..5,
        budget_micro in 1u64..60,
    ) {
        let (ctx, tables) = tpch_context(0.001, 500).unwrap();
        let specs = [
            TenantSpec { name: "gold", budget_dollars: f64::INFINITY },
            TenantSpec { name: "bronze", budget_dollars: budget_micro as f64 * 1e-6 },
        ];
        let adm = AdmissionController::new(ctx.store.global_ledger(), &ctx, &specs, queue_bound);
        let arrivals = trace(seed, 16, 100.0);
        let global_base = ctx.store.global_ledger().snapshot();
        let tenant_base: Vec<Usage> = adm
            .tenants()
            .iter()
            .map(|t| t.budget.ledger().snapshot())
            .collect();
        let sums: Vec<Mutex<Usage>> =
            (0..specs.len()).map(|_| Mutex::new(Usage::default())).collect();
        let in_flight = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(a) = arrivals.get(i) else { break };
                    let depth = in_flight.load(Ordering::Relaxed);
                    if adm.try_admit(a.tenant, depth).is_err() {
                        continue;
                    }
                    in_flight.fetch_add(1, Ordering::Relaxed);
                    let qctx = adm.scope(&ctx, a.tenant, query_salt(seed, a.index));
                    let table = (a.query.query.table)(&tables);
                    let _ = execute_sql(&qctx, table, a.query.query.sql, Strategy::Adaptive);
                    *sums[a.tenant].lock().unwrap() += qctx.billed();
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                });
            }
        });
        let mut total = Usage::default();
        let mut shed = 0;
        for (t, base) in adm.tenants().iter().zip(&tenant_base) {
            let delta = t.budget.ledger().delta_since(base);
            let sum = *sums[t.id].lock().unwrap();
            assert_eq!(delta, sum, "tenant {} ledger != Σ its queries", t.name);
            total += sum;
            shed += t.shed_queue() + t.shed_budget();
        }
        assert_eq!(ctx.store.global_ledger().delta_since(&global_base), total);
        // The bronze budget is at most a couple of queries' worth, so
        // rejections genuinely interleaved with the admissions above.
        assert!(shed > 0, "case must exercise the rejection path");
    }
}

/// A pinned chaos seed driven through the admission queue: every
/// admitted query retries transient faults inside its tenant-joint
/// scope. Success must return the exact fault-free rows with scan and
/// transfer bytes billed once (faulted attempts scan nothing) and
/// retries visible as extra billed requests — and the whole run must
/// replay bit-for-bit from the seed.
#[test]
fn pinned_chaos_seed_through_the_admission_queue() {
    const SEED: u64 = 9;
    const PROB: f64 = 0.35;
    let run = |plan: Option<FaultPlan>| {
        let (ctx, tables) = tpch_context(0.002, 1_000).unwrap();
        let ctx = ctx.with_retry(RetryPolicy::with_attempts(12));
        ctx.store.set_fault_plan(plan);
        let specs = [
            TenantSpec {
                name: "gold",
                budget_dollars: f64::INFINITY,
            },
            TenantSpec {
                name: "silver",
                budget_dollars: f64::INFINITY,
            },
        ];
        let adm = AdmissionController::new(ctx.store.global_ledger(), &ctx, &specs, 1024);
        run_open_loop(
            &ctx,
            &tables,
            Strategy::Pushdown,
            &trace(SEED, 12, 20.0),
            &adm,
            2,
            SEED,
        )
    };
    let reference = run(None);
    assert_eq!(reference.completed, 12, "unbounded queue admits everything");
    let chaos = run(Some(FaultPlan::new(SEED, PROB)));
    assert_eq!(chaos.completed, 12);
    let mut retried = 0;
    for (a, b) in reference.per_query.iter().zip(&chaos.per_query) {
        assert!(
            b.error.is_none(),
            "query {} (salt {}): 12 attempts must absorb prob {PROB}: {:?}",
            b.index,
            b.salt,
            b.error
        );
        assert_eq!(a.row_digest, b.row_digest, "query {}: rows moved", a.index);
        assert_eq!(
            a.billed.select_scanned_bytes, b.billed.select_scanned_bytes,
            "query {}: scanned bytes billed more than once",
            a.index
        );
        assert_eq!(
            a.billed.select_returned_bytes, b.billed.select_returned_bytes,
            "query {}: returned bytes billed more than once",
            a.index
        );
        assert_eq!(
            a.billed.plain_bytes, b.billed.plain_bytes,
            "query {}: plain bytes billed more than once",
            a.index
        );
        assert!(b.billed.requests >= a.billed.requests);
        retried += (b.billed.requests > a.billed.requests) as usize;
        // Retry backoff shows up in virtual latency, never negative.
        assert!(b.service_s >= a.service_s - 1e-12);
    }
    assert!(retried > 0, "pinned seed must exercise the retry path");
    // Same plan, same seed: the chaos run replays bit-for-bit.
    let again = run(Some(FaultPlan::new(SEED, PROB)));
    assert_eq!(chaos.digest(), again.digest());
}
