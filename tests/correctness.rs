//! End-to-end correctness: every pushdown algorithm must produce exactly
//! the answer its no-pushdown baseline produces, across operators and
//! under fault injection.

use pushdowndb::common::RetryPolicy;
use pushdowndb::common::{DataType, Row, Schema, Value};
use pushdowndb::core::algos::{filter, groupby, join, topk};
use pushdowndb::core::{build_index, upload_csv_table, QueryContext};
use pushdowndb::s3::{FaultPlan, S3Store};
use pushdowndb::sql::agg::AggFunc;
use pushdowndb::sql::parse_expr;
use pushdowndb::tpch::{all_queries, tpch_context, Mode};

fn assert_rows_close(a: &[Row], b: &[Row], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (x, y) in a.iter().zip(b) {
        for (vx, vy) in x.values().iter().zip(y.values()) {
            match (vx, vy) {
                (Value::Float(fx), Value::Float(fy)) => assert!(
                    (fx - fy).abs() <= 1e-6 * (1.0 + fx.abs().max(fy.abs())),
                    "{what}: {fx} vs {fy}"
                ),
                _ => assert_eq!(vx, vy, "{what}"),
            }
        }
    }
}

#[test]
fn tpch_queries_agree_and_push_less_data() {
    let (ctx, t) = tpch_context(0.003, 1_500).unwrap();
    for (name, q) in all_queries() {
        let base = q(&ctx, &t, Mode::Baseline).unwrap();
        let opt = q(&ctx, &t, Mode::Optimized).unwrap();
        assert_rows_close(&base.rows, &opt.rows, name);
        assert!(
            opt.metrics.bytes_returned() < base.metrics.bytes_returned(),
            "{name}: pushdown should reduce wire bytes"
        );
    }
}

#[test]
fn filter_strategies_agree_under_fault_injection() {
    let store = S3Store::new();
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
    let rows: Vec<Row> = (0..2_000)
        .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("val-{i}"))]))
        .collect();
    let table = upload_csv_table(&store, "b", "t", &schema, &rows, 333).unwrap();
    let ctx = QueryContext::new(store);
    let index = build_index(&ctx, &table, "k").unwrap();
    let q = filter::FilterQuery {
        table: table.clone(),
        predicate: parse_expr("k >= 100 AND k < 160").unwrap(),
        projection: None,
    };
    // Transient faults are retried transparently on every request path.
    ctx.store.set_fault_plan(Some(FaultPlan::new(17, 0.25)));
    let ctx = ctx.with_retry(RetryPolicy::with_attempts(12));
    let server = filter::server_side(&ctx, &q).unwrap();
    let s3 = filter::s3_side(&ctx, &q).unwrap();
    let indexed = filter::indexed(&ctx, &index, &q).unwrap();
    assert_eq!(server.rows.len(), 60);
    assert_rows_close(&server.rows, &s3.rows, "filter s3");
    assert_rows_close(&server.rows, &indexed.rows, "filter indexed");
}

#[test]
fn join_agrees_across_fpr_extremes_and_fallback() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let q = join::JoinQuery {
        left: t.customer.clone(),
        right: t.orders.clone(),
        left_key: "c_custkey".into(),
        right_key: "o_custkey".into(),
        left_pred: Some(parse_expr("c_acctbal <= -500").unwrap()),
        right_pred: Some(parse_expr("o_orderdate < DATE '1996-01-01'").unwrap()),
        left_proj: vec!["c_custkey".into()],
        right_proj: vec!["o_totalprice".into()],
        sum_column: Some("o_totalprice".into()),
    };
    let reference = join::baseline(&ctx, &q).unwrap();
    for fpr in [0.0001, 0.01, 0.5] {
        let out = join::bloom(&ctx, &q, fpr).unwrap();
        assert_rows_close(&reference.rows, &out.rows, &format!("bloom fpr {fpr}"));
    }
    // Forced fallback (tiny SQL limit) must still agree.
    let mut tight = ctx.clone();
    tight.bloom.max_sql_bytes = 32;
    let (out, outcome) = join::bloom_with_outcome(&tight, &q, 0.01).unwrap();
    assert_eq!(outcome, join::BloomOutcome::FellBack);
    assert_rows_close(&reference.rows, &out.rows, "bloom fallback");
}

#[test]
fn groupby_agrees_with_tiny_sql_limit_chunking() {
    // A reduced SQL limit forces the CASE-WHEN phase to split into many
    // statements; results must be unchanged.
    let store = S3Store::new();
    let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Float)]);
    let rows: Vec<Row> = (0..3_000)
        .map(|i| {
            Row::new(vec![
                Value::Int((i % 50) as i64),
                Value::Float((i as f64 * 3.3) % 97.0),
            ])
        })
        .collect();
    let table = upload_csv_table(&store, "b", "t", &schema, &rows, 1_000).unwrap();
    let mut ctx = QueryContext::new(store);
    ctx.engine = pushdowndb::select::S3SelectEngine::with_limits(
        ctx.store.clone(),
        pushdowndb::select::SelectLimits {
            max_sql_bytes: 2_048,
        },
    );
    let q = groupby::GroupByQuery {
        table,
        group_cols: vec!["g".into()],
        aggs: vec![(AggFunc::Sum, "v".into()), (AggFunc::Avg, "v".into())],
        predicate: None,
    };
    let server = groupby::server_side(&ctx, &q).unwrap();
    let s3 = groupby::s3_side(&ctx, &q).unwrap();
    let hybrid = groupby::hybrid(&ctx, &q, groupby::HybridOptions::default()).unwrap();
    assert_eq!(server.rows.len(), 50);
    assert_rows_close(&server.rows, &s3.rows, "s3-side chunked");
    assert_rows_close(&server.rows, &hybrid.rows, "hybrid chunked");
}

#[test]
fn topk_agrees_on_tpch_lineitem() {
    let (ctx, t) = tpch_context(0.002, 2_000).unwrap();
    for (k, asc) in [(1, true), (17, true), (100, false)] {
        let q = topk::TopKQuery {
            table: t.lineitem.clone(),
            order_col: "l_extendedprice".into(),
            k,
            asc,
        };
        let server = topk::server_side(&ctx, &q).unwrap();
        let sampled = topk::sampling(&ctx, &q, None).unwrap();
        assert_eq!(server.rows.len(), sampled.rows.len());
        for (a, b) in server.rows.iter().zip(&sampled.rows) {
            assert_eq!(a[5], b[5], "k={k} asc={asc}: order keys");
        }
    }
}

#[test]
fn ledger_matches_metrics_for_select_queries() {
    // The metrics attached to an output must agree with the store's own
    // AWS-style ledger for the billable Select quantities.
    let (ctx, t) = tpch_context(0.002, 2_000).unwrap();
    let q = filter::FilterQuery {
        table: t.orders.clone(),
        predicate: parse_expr("o_totalprice < 1000").unwrap(),
        projection: Some(vec!["o_orderkey".into()]),
    };
    let out = filter::s3_side(&ctx, &q).unwrap();
    // `billed` is the query's scoped child ledger — exact per-query usage.
    let usage = out.billed;
    let metered = out.metrics.usage();
    assert_eq!(usage.select_scanned_bytes, metered.select_scanned_bytes);
    assert_eq!(usage.select_returned_bytes, metered.select_returned_bytes);
    assert_eq!(usage.requests, metered.requests);
}

/// Batched streaming must survive transient faults injected mid-scan:
/// with more faults than partitions, retries are exercised *during* the
/// streamed scan (not just on the first request), for both storage
/// formats and for plain and pushdown paths.
#[test]
fn streamed_scans_survive_faults_mid_scan_for_both_formats() {
    let store = S3Store::new();
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
    let rows: Vec<Row> = (0..3_000)
        .map(|i| Row::new(vec![Value::Int(i), Value::Float((i as f64 * 2.3) % 59.0)]))
        .collect();
    let csv = upload_csv_table(&store, "b", "csvt", &schema, &rows, 250).unwrap();
    let clt = pushdowndb::core::upload_columnar_table(
        &store,
        "b",
        "cltt",
        &schema,
        &rows,
        250,
        pushdowndb::format::WriterOptions::default(),
    )
    .unwrap();
    let mut ctx = QueryContext::new(store);
    ctx.batch_rows = 64; // many batches per partition
    ctx.scan_threads = 4;
    // The seeded plan faults ~30% of attempts; a generous retry budget
    // keeps the success cases deterministic under any scheduling.
    ctx.retry = RetryPolicy::with_attempts(16);

    for table in [&csv, &clt] {
        let q = filter::FilterQuery {
            table: table.clone(),
            predicate: parse_expr("k % 7 = 0").unwrap(),
            projection: None,
        };
        // Clean reference first.
        let want = filter::server_side(&ctx, &q).unwrap();
        assert_eq!(want.rows.len(), 3_000 / 7 + 1);

        // Seeded faults across a 12-partition scan: several workers hit a
        // fault partway through and must retry transparently — on the
        // plain path and the pushdown path alike.
        ctx.store.set_fault_plan(Some(FaultPlan::new(99, 0.3)));
        let got = filter::server_side(&ctx, &q).unwrap();
        assert_rows_close(&want.rows, &got.rows, "plain streamed under faults");
        let s3 = filter::s3_side(&ctx, &q).unwrap();
        assert_rows_close(&want.rows, &s3.rows, "select streamed under faults");
        ctx.store.set_fault_plan(None);
    }

    // Exhausting retries surfaces the fault instead of corrupting rows.
    ctx.store.set_fault_plan(Some(FaultPlan::new(99, 1.0)));
    let q = filter::FilterQuery {
        table: csv.clone(),
        predicate: parse_expr("k >= 0").unwrap(),
        projection: None,
    };
    assert!(filter::server_side(&ctx, &q).is_err());
    ctx.store.set_fault_plan(None);
}

/// Mid-scan faults during streamed group-by and top-K pipelines: the
/// operator state machines never see a partial partition.
#[test]
fn streamed_operators_survive_faults_mid_scan() {
    let store = S3Store::new();
    let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]);
    let rows: Vec<Row> = (0..2_400)
        .map(|i| Row::new(vec![Value::Int(i % 11), Value::Int((i * 37) % 1000)]))
        .collect();
    let table = upload_csv_table(&store, "b", "t", &schema, &rows, 200).unwrap();
    let mut ctx = QueryContext::new(store);
    ctx.batch_rows = 50;
    ctx.retry = RetryPolicy::with_attempts(16);

    let gq = groupby::GroupByQuery {
        table: table.clone(),
        group_cols: vec!["g".into()],
        aggs: vec![(AggFunc::Sum, "v".into()), (AggFunc::Count, "v".into())],
        predicate: None,
    };
    let want_groups = groupby::server_side(&ctx, &gq).unwrap();
    ctx.store.set_fault_plan(Some(FaultPlan::new(4, 0.35)));
    let got_groups = groupby::server_side(&ctx, &gq).unwrap();
    assert_rows_close(&want_groups.rows, &got_groups.rows, "group-by under faults");

    let tq = topk::TopKQuery {
        table,
        order_col: "v".into(),
        k: 13,
        asc: true,
    };
    ctx.store.set_fault_plan(None);
    let want_topk = topk::server_side(&ctx, &tq).unwrap();
    ctx.store.set_fault_plan(Some(FaultPlan::new(6, 0.35)));
    let got_topk = topk::server_side(&ctx, &tq).unwrap();
    assert_rows_close(&want_topk.rows, &got_topk.rows, "top-k under faults");
}

#[test]
fn csv_and_columnar_tables_give_identical_query_answers() {
    let store = S3Store::new();
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("s", DataType::Str),
    ]);
    let rows: Vec<Row> = (0..2_500)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Float((i as f64 * 1.7) % 31.0),
                Value::Str(format!("tag-{}", i % 7)),
            ])
        })
        .collect();
    let csv = upload_csv_table(&store, "b", "csvt", &schema, &rows, 600).unwrap();
    let clt = pushdowndb::core::upload_columnar_table(
        &store,
        "b",
        "cltt",
        &schema,
        &rows,
        600,
        pushdowndb::format::WriterOptions::default(),
    )
    .unwrap();
    let ctx = QueryContext::new(store);
    for pred in ["k < 100", "v > 15.0 AND s = 'tag-3'", "k >= 2499"] {
        let make = |t: &pushdowndb::core::Table| filter::FilterQuery {
            table: t.clone(),
            predicate: parse_expr(pred).unwrap(),
            projection: None,
        };
        let a = filter::s3_side(&ctx, &make(&csv)).unwrap();
        let b = filter::s3_side(&ctx, &make(&clt)).unwrap();
        assert_rows_close(&a.rows, &b.rows, pred);
        // Columnar scans fewer bytes for any non-trivial width.
        assert!(
            b.metrics.usage().select_scanned_bytes <= a.metrics.usage().select_scanned_bytes,
            "{pred}"
        );
    }
}
