//! Whole-stack property tests: on *arbitrary* generated tables, each
//! pushdown decomposition must equal its straightforward baseline.

use proptest::prelude::*;
use pushdowndb::common::{DataType, Row, Schema, Value};
use pushdowndb::core::algos::{groupby, join, topk};
use pushdowndb::core::{upload_csv_table, QueryContext};
use pushdowndb::s3::S3Store;
use pushdowndb::sql::agg::AggFunc;

fn ctx_with(
    name: &str,
    schema: &Schema,
    rows: &[Row],
    per_part: usize,
) -> (QueryContext, pushdowndb::core::Table) {
    let store = S3Store::new();
    let t = upload_csv_table(&store, "prop", name, schema, rows, per_part).unwrap();
    (QueryContext::new(store), t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sampling top-K equals the server-side heap for any data, K, order
    /// direction, and sample size.
    #[test]
    fn sampling_topk_is_exact(
        vals in proptest::collection::vec((-1000i64..1000, any::<bool>()), 1..300),
        k in 1usize..40,
        asc in any::<bool>(),
        sample in 1usize..500,
    ) {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]);
        let rows: Vec<Row> = vals
            .iter()
            .enumerate()
            .map(|(i, (v, _))| Row::new(vec![Value::Int(i as i64), Value::Int(*v)]))
            .collect();
        let (ctx, t) = ctx_with("t", &schema, &rows, 64);
        let q = topk::TopKQuery { table: t, order_col: "v".into(), k, asc };
        let server = topk::server_side(&ctx, &q).unwrap();
        let sampled = topk::sampling(&ctx, &q, Some(sample)).unwrap();
        prop_assert_eq!(server.rows.len(), sampled.rows.len());
        for (a, b) in server.rows.iter().zip(&sampled.rows) {
            prop_assert_eq!(&a[1], &b[1]);
        }
    }

    /// The S3-side CASE-WHEN group-by and the hybrid split both equal the
    /// local hash aggregation, for any distribution of groups.
    #[test]
    fn groupby_decompositions_are_exact(
        vals in proptest::collection::vec((0i64..12, -50i64..50), 1..300),
    ) {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]);
        let rows: Vec<Row> = vals
            .iter()
            .map(|(g, v)| Row::new(vec![Value::Int(*g), Value::Int(*v)]))
            .collect();
        let (ctx, t) = ctx_with("t", &schema, &rows, 50);
        let q = groupby::GroupByQuery {
            table: t,
            group_cols: vec!["g".into()],
            aggs: vec![
                (AggFunc::Sum, "v".into()),
                (AggFunc::Count, "v".into()),
                (AggFunc::Min, "v".into()),
                (AggFunc::Max, "v".into()),
            ],
            predicate: None,
        };
        let server = groupby::server_side(&ctx, &q).unwrap();
        let s3 = groupby::s3_side(&ctx, &q).unwrap();
        let hybrid = groupby::hybrid(&ctx, &q, groupby::HybridOptions::default()).unwrap();
        prop_assert_eq!(&server.rows, &s3.rows);
        prop_assert_eq!(&server.rows, &hybrid.rows);
    }

    /// Bloom join (at any FPR) equals the baseline hash join: false
    /// positives are filtered by the local probe, and no true match is
    /// ever lost (no false negatives).
    #[test]
    fn bloom_join_is_exact(
        left_keys in proptest::collection::vec(0i64..100, 1..80),
        right_keys in proptest::collection::vec(0i64..150, 1..200),
        fpr in prop_oneof![Just(0.001), Just(0.01), Just(0.3)],
    ) {
        let ls = Schema::from_pairs(&[("lk", DataType::Int), ("lv", DataType::Int)]);
        let rs = Schema::from_pairs(&[("rk", DataType::Int), ("rv", DataType::Int)]);
        let lrows: Vec<Row> = left_keys
            .iter()
            .enumerate()
            .map(|(i, k)| Row::new(vec![Value::Int(*k), Value::Int(i as i64)]))
            .collect();
        let rrows: Vec<Row> = right_keys
            .iter()
            .enumerate()
            .map(|(i, k)| Row::new(vec![Value::Int(*k), Value::Int(1000 + i as i64)]))
            .collect();
        let store = S3Store::new();
        let lt = upload_csv_table(&store, "prop", "l", &ls, &lrows, 30).unwrap();
        let rt = upload_csv_table(&store, "prop", "r", &rs, &rrows, 60).unwrap();
        let ctx = QueryContext::new(store);
        let q = join::JoinQuery {
            left: lt,
            right: rt,
            left_key: "lk".into(),
            right_key: "rk".into(),
            left_pred: None,
            right_pred: None,
            left_proj: vec!["lk".into(), "lv".into()],
            right_proj: vec!["rv".into()],
            sum_column: None,
        };
        let sort = |mut rows: Vec<Row>| {
            rows.sort_by(|a, b| {
                a[0].total_cmp(&b[0])
                    .then(a[1].total_cmp(&b[1]))
                    .then(a[2].total_cmp(&b[2]))
            });
            rows
        };
        let base = sort(join::baseline(&ctx, &q).unwrap().rows);
        let bloomed = sort(join::bloom(&ctx, &q, fpr).unwrap().rows);
        prop_assert_eq!(base, bloomed);
    }
}
