//! Persistent disk-tier suite (ISSUE 10).
//!
//! * **Restart economics** — a query suite warmed into a persistent
//!   disk tier survives a cache drop: a fresh context recovering from
//!   the same directory serves the repeat run with **zero** remote
//!   requests and bytes, and `occupancy` reports the recovered chunks
//!   disk-resident with their layouts intact.
//! * **Ghost rebuild** (pinned regression) — `recover` reseeds the
//!   reuse-distance ghost table for every recovered-resident segment,
//!   so a warm disk tier is not churned by read-around declines after
//!   restart; a brand-new first-touch key still goes read-around.
//! * **Crash recovery** (proptest) — a random workload prefix with a
//!   seeded kill at the Nth fsync, then recovery with the store-content
//!   catalog probe: no stale-epoch chunk is ever served (differential
//!   vs the tracked ground truth), `served-locally + billed == bytes
//!   scanned` stays exact before and after the crash, and the same seed
//!   reproduces the same surviving residency byte-for-byte.
//! * **Hygiene** — every test routes its files through a self-cleaning
//!   [`TempDir`] and asserts nothing is left behind on drop.

use bytes::Bytes;
use proptest::prelude::*;
use pushdowndb::cache::{CacheAdmission, KillPlan, SegmentCache, SegmentKey};
use pushdowndb::common::pricing::Pricing;
use pushdowndb::common::{DataType, RetryPolicy, Row, Schema, TempDir, Value};
use pushdowndb::core::{execute_sql, upload_csv_table, QueryContext, Strategy};
use pushdowndb::s3::S3Store;

fn rows(n: usize) -> Vec<Row> {
    (0..n as i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int((i * 7) % 100)]))
        .collect()
}

fn schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
}

/// Restart economics end to end: warm a disk-only persistent cache
/// through the forced cached-local path, drop the cache handle (a
/// clean shutdown), recover a fresh context from the same directory on
/// the same store, and the repeat run bills zero remote requests and
/// bytes — the segments, their epochs *and* their chunk layouts all
/// came back from the manifest. Occupancy confirms the recovered
/// residency is disk-tier.
#[test]
fn recovered_disk_tier_serves_without_rebilling() {
    let tmp = TempDir::new("persist-restart");
    let store = S3Store::new();
    let table = upload_csv_table(&store, "b", "t", &schema(), &rows(400), 100).unwrap();
    let sql = "SELECT k, v FROM t WHERE v < 50";

    let ctx = QueryContext::new(store.clone())
        .with_cache_tiers(0, 1 << 30)
        .with_cache_chunk_bytes(256)
        .with_cache_dir(tmp.path())
        .unwrap()
        .with_cache_reads(true);
    let cold = execute_sql(&ctx, &table, sql, Strategy::Baseline).unwrap();
    let warm = execute_sql(&ctx, &table, sql, Strategy::Baseline).unwrap();
    assert_eq!(cold.rows, warm.rows);
    assert_eq!(
        warm.billed.requests + warm.billed.plain_bytes,
        0,
        "pre-restart warm pass must serve fully from the disk tier"
    );
    let persisted = ctx.cache().unwrap().stats();
    assert!(persisted.fsyncs > 0, "persistence must have synced");
    assert!(persisted.persisted_bytes > 0);

    // Clean shutdown: drop every handle to the cache.
    store.set_cache(None);
    drop(ctx);

    // Restart: a fresh context recovers the tier from the directory.
    let ctx = QueryContext::new(store.clone())
        .with_cache_tiers(0, 1 << 30)
        .with_cache_chunk_bytes(256)
        .with_cache_dir(tmp.path())
        .unwrap()
        .with_cache_reads(true);
    let cache = ctx.cache().unwrap();
    let stats = cache.stats();
    assert!(
        stats.recovered_segments > 0,
        "restart must recover segments"
    );
    assert_eq!(
        stats.disk_used_bytes, stats.recovered_bytes,
        "everything resident after restart came from the manifest"
    );
    assert_eq!(stats.used_bytes, 0, "mem tier starts cold");

    // Occupancy: every partition is fully disk-resident, layout known.
    for part in table.partitions(&store) {
        let len = store.object_size("b", &part).unwrap();
        let occ = cache.occupancy("b", &part, len);
        assert!(occ.layout_known, "{part}: recovered layout");
        assert_eq!(occ.disk_bytes, len, "{part}: fully disk-resident");
        assert_eq!(occ.gap_bytes, 0, "{part}: no remote gap after recovery");
    }

    let restart = execute_sql(&ctx, &table, sql, Strategy::Baseline).unwrap();
    assert_eq!(
        restart.rows, cold.rows,
        "recovered bytes are the same bytes"
    );
    assert_eq!(
        restart.billed.requests + restart.billed.plain_bytes,
        0,
        "the recovered warm run must bill zero remote requests and bytes"
    );

    let path = tmp.path().to_path_buf();
    store.set_cache(None);
    drop(ctx);
    drop(cache);
    drop(tmp);
    assert!(
        !path.exists(),
        "temp dir left stray files at {}",
        path.display()
    );
}

/// Pinned regression: the reuse-distance ghost table used to be lost on
/// restart, so the first refill of a just-invalidated object — warm a
/// moment ago — was declined as a one-off read-around while a genuinely
/// new key was treated identically. `recover` now reseeds a ghost tick
/// for every recovered-resident segment: the refill (which forces an
/// eviction) is admitted, the first-touch stranger still goes around.
#[test]
fn recovery_rebuilds_reuse_distance_ghosts() {
    let tmp = TempDir::new("persist-ghosts");
    let admission = CacheAdmission::ReuseDistance { window: 1024 };
    let fill = |cache: &SegmentCache, name: &str, len: usize, byte: u8| -> bool {
        let skey = SegmentKey::whole("b", name);
        let epoch = cache.begin_fill(&skey);
        cache.insert(skey, Bytes::from(vec![byte; len]), epoch)
    };
    {
        let cache = SegmentCache::recover_with(
            tmp.path(),
            0,
            4096,
            Pricing::default(),
            admission,
            None,
            None,
        )
        .unwrap();
        for (i, name) in ["a", "bb", "c", "d"].iter().enumerate() {
            assert!(fill(&cache, name, 1024, i as u8), "{name}: fits the budget");
        }
        assert_eq!(
            cache.stats().disk_used_bytes,
            4096,
            "tier filled to capacity"
        );
    }

    let cache = SegmentCache::recover_with(
        tmp.path(),
        0,
        4096,
        Pricing::default(),
        admission,
        None,
        None,
    )
    .unwrap();
    assert_eq!(cache.stats().recovered_segments, 4);

    // Contrast first: a brand-new key whose fill would force an
    // eviction has no ghost and is declined (read-around) — recovery
    // must not admit strangers.
    assert!(
        !fill(&cache, "stranger", 2048, 9),
        "first-touch fill that would evict is still read-around after restart"
    );
    assert_eq!(cache.stats().read_arounds, 1);

    // The regression: invalidate a recovered object and refill it
    // larger, forcing an eviction. The rebuilt ghost proves recent
    // reuse, so the refill is admitted instead of going read-around.
    cache.invalidate("b", "a");
    assert!(
        fill(&cache, "a", 2048, 7),
        "refill of a recovered-resident object must be admitted: ghosts are rebuilt"
    );
    assert_eq!(
        cache.stats().read_arounds,
        1,
        "the refill consumed no read-around"
    );

    let path = tmp.path().to_path_buf();
    drop(cache);
    drop(tmp);
    assert!(
        !path.exists(),
        "temp dir left stray files at {}",
        path.display()
    );
}

/// One deterministic crash scenario: seed objects, run a workload of
/// chunked cached reads and rewrites through a persistent cache armed
/// with a seeded kill point, then "restart" by recovering from the
/// directory with the store-content catalog probe. Returns the
/// recovered cache's residency digest.
///
/// Checks along the way: every read (before the crash, after the crash
/// while durability is frozen, and after recovery) returns exactly the
/// tracked ground-truth bytes; `mem + disk + gap == len` per read; the
/// ledger bills exactly the gap bytes.
fn crash_scenario(
    dir: &std::path::Path,
    n_objects: usize,
    obj_len: usize,
    kill_seed: u64,
    steps: &[u8],
) -> Result<u64, TestCaseError> {
    const CHUNK: usize = 256;
    let content = |oi: usize, version: u64| -> Vec<u8> {
        (0..obj_len)
            .map(|i| {
                (i as u64)
                    .wrapping_mul(31)
                    .wrapping_add(oi as u64 ^ (version * 97)) as u8
            })
            .collect()
    };
    let key = |oi: usize| format!("o{oi}");
    let layout_of = |data: &Bytes| -> Vec<(u64, u64)> {
        (0..data.len())
            .step_by(CHUNK)
            .map(|lo| (lo as u64, data.len().min(lo + CHUNK) as u64))
            .collect()
    };
    let policy = RetryPolicy::with_attempts(1);

    let store = S3Store::new();
    let mut mirror: Vec<Vec<u8>> = Vec::new();
    for oi in 0..n_objects {
        let c = content(oi, 0);
        store.put_object("b", &key(oi), c.clone());
        mirror.push(c);
    }
    let cache = SegmentCache::recover_with(
        dir,
        obj_len as u64 / 2,
        64 << 20,
        Pricing::default(),
        CacheAdmission::AdmitAll,
        Some(KillPlan::seeded(kill_seed, 24)),
        None,
    )
    .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
    store.set_cache(Some(cache));

    let check_read = |oi: usize, mirror: &[Vec<u8>]| -> Result<(), TestCaseError> {
        let before = store.global_ledger().snapshot();
        let out = store
            .get_object_chunked_cached_with("b", &key(oi), &policy, layout_of)
            .map_err(|e| TestCaseError::fail(format!("read o{oi}: {e}")))?;
        let after = store.global_ledger().snapshot();
        prop_assert_eq!(
            &out.data[..],
            &mirror[oi][..],
            "object {} must never serve stale bytes",
            oi
        );
        let len = mirror[oi].len() as u64;
        prop_assert_eq!(
            out.mem_bytes + out.disk_bytes + out.gap_bytes,
            len,
            "conservation: served-locally + billed == bytes scanned"
        );
        prop_assert_eq!(
            after.plain_bytes - before.plain_bytes,
            out.gap_bytes,
            "the ledger bills exactly the gap bytes"
        );
        Ok(())
    };

    let mut version = vec![0u64; n_objects];
    for &s in steps {
        let oi = (s as usize) % n_objects;
        if s >= 6 {
            version[oi] += 1;
            let c = content(oi, version[oi]);
            store.put_object("b", &key(oi), c.clone());
            mirror[oi] = c;
        } else {
            check_read(oi, &mirror)?;
        }
    }

    // Restart: recover against the live store content. Rewrites that
    // raced the crash (or happened while the cache was down) are vetted
    // by the catalog probe's checksum, not trusted from the manifest.
    store.set_cache(None);
    let probe = {
        let store = store.clone();
        move |b: &str, k: &str, r: (u64, u64)| store.object_range_digest(b, k, r)
    };
    let recovered = SegmentCache::recover_with(
        dir,
        obj_len as u64 / 2,
        64 << 20,
        Pricing::default(),
        CacheAdmission::AdmitAll,
        None,
        Some(&probe),
    )
    .map_err(|e| TestCaseError::fail(format!("recover: {e}")))?;
    let digest = recovered.residency_digest();
    store.set_cache(Some(recovered));
    for oi in 0..n_objects {
        check_read(oi, &mirror)?;
    }
    Ok(digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash-recovery proptest: random workload prefix, seeded kill at
    /// a random fsync, recover, and (a) no stale-epoch chunk is served,
    /// (b) conservation and billing stay exact, (c) the same seed
    /// leaves the same surviving residency byte-for-byte.
    #[test]
    fn seeded_crashes_recover_soundly_and_deterministically(
        n_objects in 2usize..5,
        obj_len in 600usize..2000,
        kill_seed in 0u64..1000,
        steps in proptest::collection::vec(0u8..9, 4..14),
    ) {
        let a = TempDir::new("persist-crash-a");
        let b = TempDir::new("persist-crash-b");
        let da = crash_scenario(a.path(), n_objects, obj_len, kill_seed, &steps)?;
        let db = crash_scenario(b.path(), n_objects, obj_len, kill_seed, &steps)?;
        prop_assert_eq!(da, db, "same seed must leave the same surviving residency");
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        drop(a);
        drop(b);
        prop_assert!(!pa.exists(), "temp dir left stray files at {}", pa.display());
        prop_assert!(!pb.exists());
    }
}
