//! Scatter-gather cluster suite (ISSUE 7): the N-node engine is the
//! single-node engine, decomposed.
//!
//! * **Differential**: every joined planner-suite query returns rows
//!   bit-identical to the serial run at 1, 2, 4 and 8 nodes, under both
//!   fixed strategies, and bills exactly the serial ledger — scattering
//!   moves work between nodes, it never creates or destroys billable
//!   bytes (exchange volume is interconnect, not S3).
//! * **Conservation**: over a mixed batch the store-global ledger delta
//!   equals Σ per-query bills equals Σ per-node ledger deltas — three
//!   decompositions of one total.
//! * **Calibration**: the scattered plan's predicted `Usage` lands
//!   within 15% of the measured ledger (same bound as the single-node
//!   estimator), and Adaptive prices a "scattered" candidate on
//!   reserved-cluster dollars.
//! * **Chaos**: under seeded node-failure fault plans, successes are
//!   row-identical with every byte billed exactly once (retries are
//!   extra requests only), with pinned always-retrying seeds.

use pushdowndb::common::pricing::Usage;
use pushdowndb::common::RetryPolicy;
use pushdowndb::core::planner::execute_sql_verbose;
use pushdowndb::core::{execute_sql, QueryContext, Strategy};
use pushdowndb::s3::FaultPlan;
use pushdowndb::tpch::{planner_suite, tpch_context, PlannerQuery, TpchTables};

fn join_suite() -> Vec<PlannerQuery> {
    planner_suite()
        .iter()
        .filter(|q| q.name.starts_with("join-"))
        .copied()
        .collect()
}

/// Serial and scattered execution agree bit-for-bit on rows *and* on the
/// bill, at every node count, under both fixed strategies. n = 1 pins
/// that a single-node cluster is the plain engine routed through node 0.
#[test]
fn scattered_rows_and_bills_match_serial_at_every_node_count() {
    let (ctx, t) = tpch_context(0.003, 1_200).unwrap();
    for strategy in [Strategy::Pushdown, Strategy::Baseline] {
        for q in join_suite() {
            let table = (q.table)(&t);
            let serial = execute_sql(&ctx, table, q.sql, strategy).unwrap();
            for n in [1usize, 2, 4, 8] {
                let cctx = ctx.clone().with_nodes(n);
                let out = execute_sql(&cctx, table, q.sql, strategy).unwrap();
                assert_eq!(
                    out.rows, serial.rows,
                    "{} @ {n} nodes ({strategy:?}): rows must be bit-identical",
                    q.name
                );
                assert_eq!(
                    out.billed, serial.billed,
                    "{} @ {n} nodes ({strategy:?}): scattering must not change the bill",
                    q.name
                );
                assert_eq!(
                    out.metrics.usage(),
                    out.billed,
                    "{} @ {n} nodes ({strategy:?}): metrics == ledger",
                    q.name
                );
            }
        }
    }
}

/// Adaptive with a cluster still matches the serial adaptive rows (it
/// may pick a different-but-equivalent plan, scattered or not).
#[test]
fn adaptive_rows_match_serial_under_a_cluster() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    for q in planner_suite() {
        let table = (q.table)(&t);
        let serial = execute_sql(&ctx, table, q.sql, Strategy::Adaptive).unwrap();
        for n in [2usize, 4] {
            let cctx = ctx.clone().with_nodes(n);
            let out = execute_sql(&cctx, table, q.sql, Strategy::Adaptive).unwrap();
            assert_eq!(out.rows, serial.rows, "{} @ {n} nodes", q.name);
            assert_eq!(out.metrics.usage(), out.billed, "{} @ {n} nodes", q.name);
        }
    }
}

/// Cluster-wide conservation: after a mixed batch (joined queries
/// scattered across nodes, single-table queries on the coordinator),
/// the store-global ledger delta, the sum of per-query bills, and the
/// sum of per-node ledger deltas are the same `Usage`, exactly.
#[test]
fn global_ledger_equals_sum_of_node_ledgers_equals_sum_of_query_ledgers() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let cctx = ctx.clone().with_nodes(4);
    let cluster = cctx.cluster.clone().unwrap();

    let global_before = ctx.store.global_ledger().snapshot();
    let nodes_before = cluster.total_usage();
    let mut sum = Usage::default();
    for rep in 0..2u64 {
        for (qi, q) in planner_suite().iter().enumerate() {
            let qctx = cctx.scoped_with_salt(rep * 100 + qi as u64);
            let out = execute_sql(&qctx, (q.table)(&t), q.sql, Strategy::Pushdown).unwrap();
            assert_eq!(
                out.billed,
                qctx.billed(),
                "{}: query bill is the base-scope ledger",
                q.name
            );
            sum += out.billed;
        }
    }
    let global_after = ctx.store.global_ledger().snapshot();
    assert_eq!(
        global_after,
        global_before + sum,
        "store-global delta == Σ per-query bills"
    );
    assert_eq!(
        cluster.total_usage(),
        nodes_before + sum,
        "Σ node-ledger deltas == Σ per-query bills"
    );
    // The scattered joined queries actually moved bytes: at least two
    // nodes billed something, and the interconnect carried rows.
    let busy = cluster
        .snapshots()
        .iter()
        .filter(|ns| ns.usage.requests > 0)
        .count();
    assert!(busy >= 2, "expected >= 2 busy nodes, got {busy}");
    assert!(cluster.total_exchange_bytes() > 0, "no exchange traffic");
}

/// EXPLAIN renders the scattered plan: Gather over per-node Exchange
/// children annotated with scanned/exchanged bytes, plus one ledger
/// line per node.
#[test]
fn explain_renders_exchange_operators_and_per_node_ledgers() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let cctx = ctx.with_nodes(4);
    let q = join_suite()[0];
    let (out, explain) =
        execute_sql_verbose(&cctx, (q.table)(&t), q.sql, Strategy::Pushdown).unwrap();
    let report = explain.report(&out, &cctx);
    for needle in [
        "Gather[",
        "Exchange[node",
        "B exchanged",
        "node 0: billed",
        "node 3: billed",
    ] {
        assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
    }
}

/// The scattered prediction is calibrated like the single-node one:
/// predicted `Usage` of the executed scattered plan within 15% of the
/// measured ledger, field by field (512-byte absolute floor for
/// near-zero aggregate payloads).
#[test]
fn scattered_predictions_are_calibrated_against_the_ledger() {
    let (ctx, t) = tpch_context(0.005, 1_500).unwrap();
    let cctx = ctx.with_nodes(4);
    for q in join_suite() {
        let (out, explain) =
            execute_sql_verbose(&cctx, (q.table)(&t), q.sql, Strategy::Pushdown).unwrap();
        let measured = out.billed;
        let predicted = explain
            .predicted
            .as_ref()
            .expect("scattered plans carry a prediction")
            .usage();
        let check = |pred: u64, meas: u64, what: &str| {
            let slack = (0.15 * meas as f64).max(512.0);
            assert!(
                (pred as f64 - meas as f64).abs() <= slack,
                "{} [{}]: predicted {pred} vs measured {meas} (slack {slack:.0})",
                q.name,
                what
            );
        };
        check(predicted.requests, measured.requests, "requests");
        check(
            predicted.select_scanned_bytes,
            measured.select_scanned_bytes,
            "scanned",
        );
        check(
            predicted.select_returned_bytes,
            measured.select_returned_bytes,
            "returned",
        );
        check(predicted.plain_bytes, measured.plain_bytes, "plain");
    }
}

/// Adaptive prices a "scattered" candidate next to the serial families,
/// on reserved-cluster dollars (compute on every node for the query's
/// wall time) — visible in the candidate table whether or not it wins.
#[test]
fn adaptive_lists_a_scattered_candidate_priced_on_cluster_dollars() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let cctx = ctx.with_nodes(4);
    let q = join_suite()[0];
    let (out, explain) =
        execute_sql_verbose(&cctx, (q.table)(&t), q.sql, Strategy::Adaptive).unwrap();
    let scattered = explain
        .candidates
        .iter()
        .find(|c| c.algorithm == "scattered")
        .expect("cluster adaptive runs list the scattered candidate");
    assert!(scattered.dollars > 0.0);
    assert_eq!(
        explain.candidates.iter().filter(|c| c.chosen).count(),
        1,
        "exactly one candidate is chosen"
    );
    assert_eq!(out.metrics.usage(), out.billed);
}

/// Per-node cache slices: a cache installed *before* `with_nodes` is
/// split across the nodes; a warm scattered re-run serves every
/// partition from its owning node's slice and bills zero plain bytes,
/// with rows still bit-identical.
#[test]
fn per_node_cache_slices_serve_warm_scattered_runs_for_free() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let serial = execute_sql(&ctx, &t.customer, join_suite()[0].sql, Strategy::Baseline).unwrap();
    let cctx = ctx
        .with_cache(64 << 20)
        .with_cache_reads(true)
        .with_nodes(4);
    let cluster = cctx.cluster.clone().unwrap();
    let q = join_suite()[0];
    let cold = execute_sql(&cctx, (q.table)(&t), q.sql, Strategy::Baseline).unwrap();
    assert_eq!(cold.rows, serial.rows, "cold scattered run");
    assert!(cold.billed.plain_bytes > 0, "cold run fills remotely");
    let warm = execute_sql(&cctx, (q.table)(&t), q.sql, Strategy::Baseline).unwrap();
    assert_eq!(warm.rows, serial.rows, "warm scattered run");
    assert_eq!(
        warm.billed.plain_bytes, 0,
        "warm run serves every partition from node slices"
    );
    // The fills landed on more than one node's slice.
    let warmed = cluster
        .snapshots()
        .iter()
        .filter(|ns| ns.cache_used_bytes.unwrap_or(0) > 0)
        .count();
    assert!(warmed >= 2, "expected >= 2 warmed slices, got {warmed}");
}

/// Chaos outcome of one scattered run against its fault-free reference.
fn chaos_run(
    cctx: &QueryContext,
    t: &TpchTables,
    q: &PlannerQuery,
    salt: u64,
) -> Result<pushdowndb::core::QueryOutput, pushdowndb::common::Error> {
    execute_sql(
        &cctx.scoped_with_salt(salt),
        (q.table)(t),
        q.sql,
        Strategy::Pushdown,
    )
}

/// Node-failure chaos on scattered plans: under a seeded fault plan each
/// node draws its own fault stream (`Cluster::node_salt`), and a
/// successful query is row-identical to the fault-free scattered run
/// with every byte billed exactly once — retries only ever add
/// requests. Failures surface as retryable faults carrying their seed.
/// The pinned seeds are regression anchors that demonstrably retry.
#[test]
fn node_failure_chaos_never_double_bills_scattered_queries() {
    let (ctx, t) = tpch_context(0.002, 1_000).unwrap();
    let cctx = ctx
        .clone()
        .with_nodes(4)
        .with_retry(RetryPolicy::with_attempts(8));
    let q = join_suite()[0];
    ctx.store.set_fault_plan(None);
    let clean = chaos_run(&cctx, &t, &q, 7).unwrap();

    let mut retried = 0u32;
    for seed in 0..6u64 {
        ctx.store.set_fault_plan(Some(FaultPlan::new(seed, 0.3)));
        match chaos_run(&cctx, &t, &q, 7) {
            Ok(out) => {
                assert_eq!(out.rows, clean.rows, "seed {seed}: rows");
                assert_eq!(
                    out.metrics.usage(),
                    out.billed,
                    "seed {seed}: metrics == ledger across retries"
                );
                assert_eq!(
                    out.billed.select_scanned_bytes, clean.billed.select_scanned_bytes,
                    "seed {seed}: scans bill once"
                );
                assert_eq!(
                    out.billed.select_returned_bytes, clean.billed.select_returned_bytes,
                    "seed {seed}: returns bill once"
                );
                assert_eq!(
                    out.billed.plain_bytes, clean.billed.plain_bytes,
                    "seed {seed}: plain bytes bill once"
                );
                assert!(
                    out.billed.requests >= clean.billed.requests,
                    "seed {seed}: retries are extra requests"
                );
                if out.billed.requests > clean.billed.requests {
                    retried += 1;
                }
            }
            Err(e) => {
                assert!(e.is_retryable(), "seed {seed}: {e}");
                assert!(e.to_string().contains("seed="), "seed {seed}: {e}");
            }
        }
    }
    assert!(
        retried > 0,
        "no seed in 0..6 caused a retried scattered run"
    );

    // Pinned regression seeds: each retries at least once and still
    // returns the exact fault-free rows. Replay: FaultPlan::new(seed,
    // 0.45), salt 7, 4 nodes, Pushdown.
    for seed in [1u64, 3] {
        ctx.store.set_fault_plan(Some(FaultPlan::new(seed, 0.45)));
        let out = chaos_run(&cctx, &t, &q, 7).unwrap_or_else(|e| panic!("pinned seed {seed}: {e}"));
        assert_eq!(out.rows, clean.rows, "pinned seed {seed}");
        assert!(
            out.billed.requests > clean.billed.requests,
            "pinned seed {seed}: expected a retried attempt ({} vs {})",
            out.billed.requests,
            clean.billed.requests
        );
        assert_eq!(
            out.billed.select_scanned_bytes, clean.billed.select_scanned_bytes,
            "pinned seed {seed}: no scan double-billing"
        );
    }
    ctx.store.set_fault_plan(None);

    // Determinism: same (seed, salt) ⇒ same outcome on a rerun.
    ctx.store.set_fault_plan(Some(FaultPlan::new(2, 0.3)));
    let a = chaos_run(&cctx, &t, &q, 9).map(|o| (o.rows, o.billed));
    let b = chaos_run(&cctx, &t, &q, 9).map(|o| (o.rows, o.billed));
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x, y, "seed 2 salt 9 reruns diverged"),
        (Err(x), Err(y)) => assert_eq!(x.code(), y.code()),
        (x, y) => panic!("seed 2 salt 9: outcome flipped: {x:?} vs {y:?}"),
    }
    ctx.store.set_fault_plan(None);
}
