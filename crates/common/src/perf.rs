//! The deterministic analytical performance model.
//!
//! The paper measures wall-clock time on an r4.8xlarge EC2 instance reading
//! a 10 GB TPC-H dataset from S3 over a 10 GigE link. Neither that machine
//! nor S3 is available here, so PushdownDB-rs executes queries *for real*
//! over the simulated store but computes elapsed time *analytically* from
//! the measured resource footprint. This keeps every figure deterministic
//! and hardware-independent while preserving the bottleneck structure that
//! shapes the paper's results:
//!
//! 1. **the wire** — S3→EC2 network bandwidth (10 GigE);
//! 2. **storage-side scanning** — S3 Select scans at a high aggregate rate
//!    that *degrades with expression complexity* (long CASE-WHEN chains,
//!    many Bloom SUBSTRING conjuncts — paper §V-B3, §VI-C);
//! 3. **server-side ingest** — the compute node deserializes rows much
//!    more slowly than the wire delivers them, and S3 Select *responses*
//!    parse more slowly than bulk plain-GET reads (the event-stream
//!    framing the paper's testbed suffered from);
//! 4. **per-request overheads** — every HTTP round trip pays latency, and
//!    only a bounded number are in flight (paper §IV-B: the indexing
//!    strategy collapses under "excessive" per-row GETs).
//!
//! Within a *phase* the three byte streams are pipelined, so phase time is
//! the **max** of the three, plus request latency. Phases compose serially
//! (e.g. the Bloom join's build and probe, paper §V-A2) or in parallel
//! (e.g. a filtered join loading both tables at once).
//!
//! Every parameter is documented on [`PerfParams`]; `DESIGN.md` §5 derives
//! the calibration from the paper's figures, and the tests at the bottom of
//! this file pin the calibration targets.

/// Model parameters. Defaults are calibrated against the paper (see below
/// and `DESIGN.md` §5); experiments can perturb them for ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfParams {
    /// S3 → compute-node network bandwidth, bytes/s. The paper's testbed
    /// has a 10 GigE NIC: 1.25 GB/s.
    pub net_bw: f64,
    /// Server-side ingest rate for *plain GET* data (bulk CSV
    /// deserialization on the compute node), bytes/s.
    pub parse_plain_bw: f64,
    /// Server-side ingest rate for *S3 Select response* data, bytes/s.
    /// Select responses arrive as a framed event stream and parse
    /// substantially more slowly than bulk reads — this asymmetry is what
    /// makes "filtered" variants no faster than baselines when they return
    /// most of the table (paper Fig 2) yet much faster when selective.
    pub parse_select_bw: f64,
    /// Server-side ingest rate for *ColumnarLite* partition bytes, bytes/s.
    /// Typed column chunks decode straight into column vectors — no field
    /// splitting, no text-to-value conversion — so they ingest far faster
    /// than CSV. Calibrated from the `kernels` criterion bench
    /// (`cargo bench --bench kernels`, decode group): straight-to-batch
    /// decode measured 217–242 MiB/s vs 59–65 MiB/s for CSV row parsing,
    /// a 3.7× ratio. The absolute rates are dev-container numbers, so the
    /// model keeps [`PerfParams::parse_plain_bw`] anchored to the paper
    /// testbed and scales by the measured ratio: 3.7 × 160e6 ≈ 590e6.
    /// See README "Performance model calibration" for how to re-derive.
    pub parse_cl_bw: f64,
    /// Aggregate storage-side scan rate of S3 Select across all partitions
    /// of a table, bytes/s, for a trivial expression.
    pub s3_scan_bw: f64,
    /// Fractional slowdown of the storage-side scan per expression *term*
    /// (a CASE-WHEN arm, a Bloom-hash SUBSTRING conjunct, a predicate
    /// comparison). Scan rate becomes `s3_scan_bw / (1 + coeff * terms)`.
    pub expr_term_coeff: f64,
    /// Read bandwidth of the **mem tier** of the local segment cache,
    /// bytes/s. Cache hits move no bytes over the wire and issue no
    /// requests; they pay this local scan rate instead (and the usual
    /// parse cost — the bytes still deserialize on the compute node).
    pub cache_read_bw: f64,
    /// Read bandwidth of the **disk tier** of the local segment cache
    /// (the paper's r4.8xlarge instance storage), bytes/s. Like mem-tier
    /// hits, disk hits bill nothing — they cost only this slower local
    /// read plus parse. Calibrated against the `cache_path` criterion
    /// bench (`cargo bench --bench cache_path -p pushdown-bench`,
    /// `tier_serve` group): in the harness both tiers reassemble a
    /// fully-resident partition at the same ~1.1 GiB/s (the disk tier is
    /// a simulated byte store in RAM), confirming tier choice adds **no
    /// hidden harness cost** — the modeled bandwidth gap is exactly this
    /// knob. The rate itself therefore comes from the modeled hardware:
    /// SATA-SSD/EBS-class instance storage streams at ~0.25× of the
    /// memory-scan anchor [`PerfParams::cache_read_bw`], so
    /// 0.25 × 2.0e9 = 500e6 — squarely between the mem tier and the
    /// 10 GigE wire. See README "Performance model calibration" for how
    /// to re-derive.
    pub disk_read_bw: f64,
    /// Sequential **write** bandwidth of the persistent disk tier's
    /// segment files, bytes/s. Persisting a segment (straight-to-disk
    /// fill or mem→disk demotion) streams its bytes through this rate on
    /// the scope's virtual clock. SSD-class media writes slower than it
    /// reads under fsync pressure, so the default sits at 0.8× of
    /// [`PerfParams::disk_read_bw`]: 0.8 × 500e6 = 400e6.
    pub disk_write_bw: f64,
    /// Seconds one fsync barrier costs. The durability protocol issues
    /// two per persisted segment (segment bytes, then the manifest record
    /// that references them) and one per manifest-only record (eviction,
    /// epoch bump, layout). 500 µs is a mid-range SSD flush; NVMe with a
    /// capacitor-backed cache would be ~10×, disks ~20× the other way.
    pub fsync_latency: f64,
    /// Node-to-node bandwidth inside the scatter-gather cluster, bytes/s
    /// (each node's share of the exchange fabric). Exchanged bytes never
    /// touch S3 — they are not billable [`crate::pricing::Usage`] — but
    /// they take wall-clock time, which the compute price turns into
    /// dollars; that is how the optimizer weighs scatter against
    /// single-node plans.
    pub exchange_bw: f64,
    /// Round-trip latency of one HTTP request, seconds.
    pub request_latency: f64,
    /// Maximum concurrently in-flight requests the compute node sustains.
    pub max_inflight: usize,
    /// Seconds of server CPU per operator "work unit" (roughly: one row
    /// visited by one non-trivial operator — hash probe, heap push, ...).
    pub cpu_per_unit: f64,
    /// Fixed per-phase overhead (process/queue spin-up), seconds.
    pub phase_startup: f64,
    /// Fixed per-query overhead (planning, connection setup), seconds.
    pub query_startup: f64,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            net_bw: 1.25e9,
            parse_plain_bw: 160e6,
            parse_select_bw: 80e6,
            parse_cl_bw: 590e6,
            s3_scan_bw: 2.4e9,
            cache_read_bw: 2.0e9,
            disk_read_bw: 500e6,
            disk_write_bw: 400e6,
            fsync_latency: 0.5e-3,
            exchange_bw: 1.25e9,
            expr_term_coeff: 0.05,
            request_latency: 0.010,
            max_inflight: 32,
            cpu_per_unit: 100e-9,
            phase_startup: 0.1,
            query_startup: 0.4,
        }
    }
}

/// Resource footprint of one execution phase, filled in by the executor.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// **Bulk** HTTP requests: one per table partition (scan fan-out).
    /// Partition count is a *layout* constant — scaling a measurement to a
    /// larger scale factor grows the objects, not their number — so these
    /// do not scale (see [`PhaseStats::scaled`]).
    pub requests: u64,
    /// **Point** HTTP requests: one per row (the §IV-A index fetches).
    /// These are proportional to data size and scale linearly.
    pub point_requests: u64,
    /// Bytes scanned storage-side by S3 Select.
    pub s3_scanned_bytes: u64,
    /// Bytes returned by S3 Select responses.
    pub select_returned_bytes: u64,
    /// Bytes returned by plain GETs.
    pub plain_bytes: u64,
    /// Bytes served from the **local segment cache** (no request, no
    /// wire, no storage-side scan — and nothing billable: these never
    /// reach [`crate::pricing::Usage`]). They still parse on the compute
    /// node and read at [`PerfParams::cache_read_bw`].
    pub cache_bytes: u64,
    /// Bytes served from the segment cache's **disk tier** (partial-hit
    /// scans read them at [`PerfParams::disk_read_bw`]). Like
    /// `cache_bytes`: no request, no wire, no storage-side scan, nothing
    /// billable — but slower than a mem-tier hit, which is exactly the
    /// gradient the cost estimator weighs mem-hit vs disk-hit vs
    /// gap-fetch on.
    pub disk_bytes: u64,
    /// Bytes this phase ships between cluster nodes (scatter results
    /// travelling to the gathering coordinator, repartitioned rows
    /// crossing the exchange fabric). Intra-cluster traffic: zero
    /// requests, zero S3 bytes, nothing billable — it costs time at
    /// [`PerfParams::exchange_bw`], and time costs compute dollars.
    pub exchange_bytes: u64,
    /// Server-side operator work units (see [`PerfParams::cpu_per_unit`]).
    pub server_cpu_units: u64,
    /// Number of terms in the pushed-down expression (0 if no pushdown).
    pub expr_terms: u32,
    /// The subset of `plain_bytes + cache_bytes` that is ColumnarLite-
    /// encoded and therefore ingests at [`PerfParams::parse_cl_bw`]
    /// instead of [`PerfParams::parse_plain_bw`]. Keyed on the *table
    /// format*, never on which execution path ran, so row and columnar
    /// execution of the same scan report identical stats. Not billable:
    /// this never reaches [`crate::pricing::Usage`].
    pub cl_parse_bytes: u64,
}

impl PhaseStats {
    /// Merge another phase's footprint into this one (for phases whose
    /// sub-streams are fully pipelined together).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.requests += other.requests;
        self.point_requests += other.point_requests;
        self.s3_scanned_bytes += other.s3_scanned_bytes;
        self.select_returned_bytes += other.select_returned_bytes;
        self.plain_bytes += other.plain_bytes;
        self.cache_bytes += other.cache_bytes;
        self.disk_bytes += other.disk_bytes;
        self.exchange_bytes += other.exchange_bytes;
        self.server_cpu_units += other.server_cpu_units;
        self.expr_terms = self.expr_terms.max(other.expr_terms);
        self.cl_parse_bytes += other.cl_parse_bytes;
    }

    /// Scale extensive quantities by `factor` — projects a measurement
    /// taken at a small scale factor to the paper's SF 10. Bytes, CPU
    /// units and point requests are linear in table size; bulk (per-
    /// partition) requests and expression terms are layout/plan constants
    /// and stay fixed.
    pub fn scaled(&self, factor: f64) -> PhaseStats {
        let s = |v: u64| ((v as f64) * factor).round() as u64;
        PhaseStats {
            requests: self.requests,
            point_requests: s(self.point_requests),
            s3_scanned_bytes: s(self.s3_scanned_bytes),
            select_returned_bytes: s(self.select_returned_bytes),
            plain_bytes: s(self.plain_bytes),
            cache_bytes: s(self.cache_bytes),
            disk_bytes: s(self.disk_bytes),
            exchange_bytes: s(self.exchange_bytes),
            server_cpu_units: s(self.server_cpu_units),
            expr_terms: self.expr_terms,
            cl_parse_bytes: s(self.cl_parse_bytes),
        }
    }
}

/// The analytical clock: maps phase footprints to simulated seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfModel {
    pub params: PerfParams,
}

impl PerfModel {
    pub fn new(params: PerfParams) -> Self {
        PerfModel { params }
    }

    /// Effective storage-side scan bandwidth for an expression with the
    /// given number of terms.
    pub fn effective_scan_bw(&self, expr_terms: u32) -> f64 {
        self.params.s3_scan_bw / (1.0 + self.params.expr_term_coeff * expr_terms as f64)
    }

    /// Simulated duration of one phase.
    ///
    /// The three byte flows (storage scan, wire, server ingest) are
    /// pipelined, so the phase runs at the pace of the slowest; request
    /// latency is paid up front, amortized over the in-flight window.
    pub fn phase_seconds(&self, s: &PhaseStats) -> f64 {
        let p = &self.params;
        let total_requests = s.requests + s.point_requests;
        let inflight = p.max_inflight.min(total_requests.max(1) as usize).max(1) as f64;
        let latency = total_requests as f64 * p.request_latency / inflight;
        let scan = s.s3_scanned_bytes as f64 / self.effective_scan_bw(s.expr_terms);
        let wire = (s.select_returned_bytes + s.plain_bytes) as f64 / p.net_bw;
        // Both cache tiers share the local IO path: mem bytes stream at
        // the fast rate, disk-tier bytes at the instance-storage rate.
        let local = s.cache_bytes as f64 / p.cache_read_bw + s.disk_bytes as f64 / p.disk_read_bw;
        let xchg = s.exchange_bytes as f64 / p.exchange_bw;
        // ColumnarLite bytes (a subset of plain + cache + disk bytes)
        // ingest at their own, faster rate; everything else parses as
        // CSV text.
        let moved = s.plain_bytes + s.cache_bytes + s.disk_bytes;
        let cl = s.cl_parse_bytes.min(moved);
        let server = (moved - cl) as f64 / p.parse_plain_bw
            + cl as f64 / p.parse_cl_bw
            + s.select_returned_bytes as f64 / p.parse_select_bw
            + s.server_cpu_units as f64 * p.cpu_per_unit;
        p.phase_startup + latency + scan.max(wire).max(server).max(local).max(xchg)
    }

    /// Compose phases that run one after another.
    pub fn serial(&self, phases: &[PhaseStats]) -> f64 {
        phases.iter().map(|s| self.phase_seconds(s)).sum()
    }

    /// Compose independent sub-plans that run concurrently: the slower one
    /// determines elapsed time.
    pub fn parallel(durations: &[f64]) -> f64 {
        durations.iter().copied().fold(0.0, f64::max)
    }

    /// Total query time: startup plus the given already-composed body.
    pub fn query_seconds(&self, body_seconds: f64) -> f64 {
        self.params.query_startup + body_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn model() -> PerfModel {
        PerfModel::default()
    }

    /// Paper Fig 1a: server-side filter of the SF-10 lineitem table
    /// (7.25 GB) should land near 30 s and the S3-side filter near a tenth
    /// of that ("a dramatic 10x").
    #[test]
    fn calibration_filter_gap() {
        let m = model();
        let server = m.phase_seconds(&PhaseStats {
            requests: 800,
            plain_bytes: 7_250_000_000,
            server_cpu_units: 60_000_000,
            ..Default::default()
        });
        let s3 = m.phase_seconds(&PhaseStats {
            requests: 800,
            s3_scanned_bytes: 7_250_000_000,
            select_returned_bytes: 7_250_000, // selectivity 1e-3
            expr_terms: 1,
            ..Default::default()
        });
        let speedup = server / s3;
        assert!(
            (7.0..22.0).contains(&speedup),
            "server {server:.1}s / s3 {s3:.1}s = {speedup:.1}x, want ~10x"
        );
    }

    /// Paper Fig 1b: the S3-side filter's cost is scan-dominated and in the
    /// same ballpark as the compute-dominated server-side filter (the paper
    /// reports +24%; we accept parity within a factor ~1.5 either way).
    #[test]
    fn calibration_filter_cost_parity() {
        use crate::pricing::{Pricing, Usage};
        let m = model();
        let pr = Pricing::us_east();

        let server_t = m.phase_seconds(&PhaseStats {
            requests: 800,
            plain_bytes: 7_250_000_000,
            server_cpu_units: 60_000_000,
            ..Default::default()
        });
        let server_cost = pr
            .cost(
                &Usage {
                    requests: 800,
                    plain_bytes: 7_250_000_000,
                    ..Default::default()
                },
                server_t,
            )
            .total();

        let s3_t = m.phase_seconds(&PhaseStats {
            requests: 800,
            s3_scanned_bytes: 7_250_000_000,
            select_returned_bytes: 7_250_000,
            expr_terms: 1,
            ..Default::default()
        });
        let s3_cost = pr
            .cost(
                &Usage {
                    requests: 800,
                    select_scanned_bytes: 7_250_000_000,
                    select_returned_bytes: 7_250_000,
                    ..Default::default()
                },
                s3_t,
            )
            .total();

        let ratio = s3_cost / server_cost;
        assert!(
            (0.35..1.6).contains(&ratio),
            "s3 ${s3_cost:.4} / server ${server_cost:.4} = {ratio:.2}"
        );
    }

    /// Paper Fig 1: the indexing strategy collapses once per-row GETs
    /// dominate — at selectivity 1e-2 on 60 M rows, request latency alone
    /// should push runtime far past the S3-side filter.
    #[test]
    fn calibration_indexing_collapse() {
        let m = model();
        let idx_high_sel = m.phase_seconds(&PhaseStats {
            point_requests: 600_000, // 1e-2 of 60M rows
            plain_bytes: 72_500_000,
            ..Default::default()
        });
        let s3_filter = 3.5;
        assert!(
            idx_high_sel > 20.0 * s3_filter,
            "indexing at 1e-2 = {idx_high_sel:.0}s should dwarf the S3 filter"
        );
        // ...but stay cheap when selective.
        let idx_low_sel = m.phase_seconds(&PhaseStats {
            point_requests: 60, // 1e-6
            plain_bytes: 7_250,
            ..Default::default()
        });
        assert!(idx_low_sel < 1.0);
    }

    /// Paper Fig 5a: filtered group-by (returning 25% of a 10 GB table via
    /// Select) beats the server-side full load by roughly the paper's 64%,
    /// and the effect does not depend on the group count.
    #[test]
    fn calibration_groupby_filtered_vs_server() {
        let m = model();
        let server = m.phase_seconds(&PhaseStats {
            requests: 1000,
            plain_bytes: 10 * GB,
            server_cpu_units: 55_000_000,
            ..Default::default()
        });
        let filtered = m.phase_seconds(&PhaseStats {
            requests: 1000,
            s3_scanned_bytes: 10 * GB,
            select_returned_bytes: 2_500_000_000,
            server_cpu_units: 55_000_000,
            expr_terms: 5,
            ..Default::default()
        });
        let gain = server / filtered;
        assert!(
            (1.2..2.2).contains(&gain),
            "server {server:.1}s / filtered {filtered:.1}s = {gain:.2} (paper: 1.64)"
        );
    }

    /// Paper Fig 4: Bloom-join scan rate degrades with the hash-function
    /// count; a 14-conjunct filter (FPR 1e-4) scans measurably slower than
    /// a 7-conjunct one (FPR 0.01).
    #[test]
    fn expression_complexity_slows_scans() {
        let m = model();
        let fast = m.effective_scan_bw(7);
        let slow = m.effective_scan_bw(14);
        assert!(slow < fast);
        assert!(m.effective_scan_bw(0) == m.params.s3_scan_bw);
        let ratio = fast / slow;
        assert!((1.2..2.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn phases_compose() {
        let m = model();
        let a = PhaseStats {
            plain_bytes: GB,
            ..Default::default()
        };
        let b = PhaseStats {
            s3_scanned_bytes: GB,
            ..Default::default()
        };
        let serial = m.serial(&[a, b]);
        assert!((serial - (m.phase_seconds(&a) + m.phase_seconds(&b))).abs() < 1e-12);
        let par = PerfModel::parallel(&[1.0, 3.0, 2.0]);
        assert_eq!(par, 3.0);
        assert!(m.query_seconds(5.0) > 5.0);
    }

    #[test]
    fn scaling_is_linear_in_extensive_quantities() {
        let s = PhaseStats {
            requests: 10,
            point_requests: 4,
            s3_scanned_bytes: 100,
            select_returned_bytes: 50,
            plain_bytes: 20,
            cache_bytes: 30,
            disk_bytes: 25,
            exchange_bytes: 40,
            server_cpu_units: 5,
            expr_terms: 7,
            cl_parse_bytes: 12,
        };
        let t = s.scaled(100.0);
        assert_eq!(t.requests, 10, "bulk requests are a layout constant");
        assert_eq!(t.point_requests, 400, "point requests are per-row");
        assert_eq!(t.s3_scanned_bytes, 10_000);
        assert_eq!(t.cache_bytes, 3_000, "cache bytes scale with data");
        assert_eq!(t.disk_bytes, 2_500, "disk-tier bytes scale with data");
        assert_eq!(t.exchange_bytes, 4_000, "exchange bytes scale with data");
        assert_eq!(t.expr_terms, 7, "expr terms are intensive");
        assert_eq!(t.cl_parse_bytes, 1_200, "columnar bytes scale with data");
    }

    /// ColumnarLite partitions ingest at their own (faster) parse rate;
    /// the same bytes as CSV are parse-bound at `parse_plain_bw`.
    #[test]
    fn columnar_bytes_parse_faster_than_csv_bytes() {
        let m = model();
        let csv = PhaseStats {
            plain_bytes: GB,
            ..Default::default()
        };
        let clt = PhaseStats {
            plain_bytes: GB,
            cl_parse_bytes: GB,
            ..Default::default()
        };
        let t_csv = m.phase_seconds(&csv);
        let t_clt = m.phase_seconds(&clt);
        assert!(t_clt < t_csv, "{t_clt} vs {t_csv}");
        // cl_parse_bytes can never exceed the bytes actually moved.
        let clamped = PhaseStats {
            plain_bytes: GB,
            cl_parse_bytes: 5 * GB,
            ..Default::default()
        };
        assert!((m.phase_seconds(&clamped) - t_clt).abs() < 1e-12);
    }

    /// Cache hits pay local scan + parse, never wire, scan or latency:
    /// a cached phase is no slower than the same bytes as plain GETs and
    /// strictly faster once request latency is in play.
    #[test]
    fn cached_phases_cost_local_scan_and_parse_only() {
        let m = model();
        let cached = PhaseStats {
            cache_bytes: GB,
            ..Default::default()
        };
        let remote = PhaseStats {
            requests: 100,
            plain_bytes: GB,
            ..Default::default()
        };
        let t_cached = m.phase_seconds(&cached);
        let t_remote = m.phase_seconds(&remote);
        assert!(t_cached < t_remote, "{t_cached} vs {t_remote}");
        // Parse-bound: the dominant term is bytes / parse_plain_bw.
        let parse = GB as f64 / m.params.parse_plain_bw;
        assert!((t_cached - (m.params.phase_startup + parse)).abs() < 1e-9);
    }

    /// Disk-tier hits pay the slower instance-storage read plus parse:
    /// dearer than a mem hit, still cheaper than refetching over the
    /// wire with request latency — the three-way gradient Adaptive
    /// weighs. Exact: `local = cache/cache_bw + disk/disk_bw`.
    #[test]
    fn disk_tier_hits_sit_between_mem_hits_and_remote_fetches() {
        let m = model();
        // ColumnarLite bytes, so parse does not mask the local read rate.
        let mem_hit = m.phase_seconds(&PhaseStats {
            cache_bytes: GB,
            cl_parse_bytes: GB,
            ..Default::default()
        });
        let disk_hit = m.phase_seconds(&PhaseStats {
            disk_bytes: GB,
            cl_parse_bytes: GB,
            ..Default::default()
        });
        let remote = m.phase_seconds(&PhaseStats {
            requests: 2000,
            plain_bytes: GB,
            cl_parse_bytes: GB,
            ..Default::default()
        });
        assert!(mem_hit < disk_hit, "{mem_hit} vs {disk_hit}");
        assert!(disk_hit < remote, "{disk_hit} vs {remote}");
        // A half-and-half partial hit reads each tier at its own rate.
        let split = m.phase_seconds(&PhaseStats {
            cache_bytes: GB / 2,
            disk_bytes: GB / 2,
            ..Default::default()
        });
        let local =
            (GB / 2) as f64 / m.params.cache_read_bw + (GB / 2) as f64 / m.params.disk_read_bw;
        let parse = GB as f64 / m.params.parse_plain_bw;
        assert!((split - (m.params.phase_startup + local.max(parse))).abs() < 1e-9);
        // Disk bytes count toward the ColumnarLite parse clamp too.
        let cl = m.phase_seconds(&PhaseStats {
            disk_bytes: GB,
            cl_parse_bytes: 2 * GB,
            ..Default::default()
        });
        let cl_exact = m.phase_seconds(&PhaseStats {
            disk_bytes: GB,
            cl_parse_bytes: GB,
            ..Default::default()
        });
        assert!((cl - cl_exact).abs() < 1e-12);
    }

    /// Exchange traffic is pipelined with the other byte streams and
    /// paced by its own (inter-node) bandwidth; it never bills usage.
    #[test]
    fn exchange_bytes_cost_time_not_dollars_of_bytes() {
        let m = model();
        let quiet = m.phase_seconds(&PhaseStats::default());
        let shipped = m.phase_seconds(&PhaseStats {
            exchange_bytes: 10 * GB,
            ..Default::default()
        });
        let expected = 10.0 * GB as f64 / m.params.exchange_bw;
        assert!((shipped - quiet - expected).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseStats {
            requests: 1,
            plain_bytes: 10,
            expr_terms: 3,
            ..Default::default()
        };
        a.merge(&PhaseStats {
            requests: 2,
            s3_scanned_bytes: 5,
            expr_terms: 7,
            ..Default::default()
        });
        assert_eq!(a.requests, 3);
        assert_eq!(a.plain_bytes, 10);
        assert_eq!(a.s3_scanned_bytes, 5);
        assert_eq!(a.expr_terms, 7);
    }

    #[test]
    fn zero_phase_costs_only_startup() {
        let m = model();
        let t = m.phase_seconds(&PhaseStats::default());
        assert!((t - m.params.phase_startup).abs() < 1e-12);
    }
}
