//! AWS price constants and dollar-cost computation.
//!
//! These are the exact US-East (N. Virginia) prices the paper lists in
//! §II-B and uses for every cost figure:
//!
//! * S3 Select **data scanned**: $0.002 per GB
//! * S3 Select **data returned**: $0.0007 per GB
//! * HTTP GET requests: $0.0004 per 1,000 requests
//! * Compute: $2.128 per hour (r4.8xlarge, the paper's server)
//! * In-region data transfer for plain GETs: free
//! * Storage: excluded (paper §II-B excludes it: independent of queries)

use std::ops::{Add, AddAssign};

const GB: f64 = 1_000_000_000.0;

/// Price book. Defaults to the paper's US-East prices; tests and ablations
/// can construct alternatives (e.g. the "computation-aware pricing" thought
/// experiment from paper §X, Suggestion 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// $/GB scanned by S3 Select.
    pub scan_per_gb: f64,
    /// $/GB returned by S3 Select.
    pub select_return_per_gb: f64,
    /// $/GB transferred by plain GETs (0 within a region, the paper's setup).
    pub plain_transfer_per_gb: f64,
    /// $ per 1,000 HTTP GET requests (plain and Select alike).
    pub per_1k_requests: f64,
    /// $/hour for the compute instance.
    pub compute_per_hour: f64,
}

impl Default for Pricing {
    fn default() -> Self {
        Pricing {
            scan_per_gb: 0.002,
            select_return_per_gb: 0.0007,
            plain_transfer_per_gb: 0.0,
            per_1k_requests: 0.0004,
            compute_per_hour: 2.128,
        }
    }
}

impl Pricing {
    /// The paper's price book (same as `Default`).
    pub fn us_east() -> Self {
        Self::default()
    }

    /// Dollar cost of one query given its resource footprint and modeled
    /// runtime, split into the paper's four components.
    pub fn cost(&self, usage: &Usage, runtime_secs: f64) -> CostBreakdown {
        CostBreakdown {
            compute: runtime_secs / 3600.0 * self.compute_per_hour,
            request: usage.requests as f64 / 1000.0 * self.per_1k_requests,
            scan: usage.select_scanned_bytes as f64 / GB * self.scan_per_gb,
            transfer: usage.select_returned_bytes as f64 / GB * self.select_return_per_gb
                + usage.plain_bytes as f64 / GB * self.plain_transfer_per_gb,
        }
    }
}

/// Raw billable resource consumption of a query (what the ledger collects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// HTTP GET requests issued (plain + S3 Select).
    pub requests: u64,
    /// Bytes scanned by S3 Select while processing queries.
    pub select_scanned_bytes: u64,
    /// Bytes returned by S3 Select responses.
    pub select_returned_bytes: u64,
    /// Bytes returned by plain (non-Select) GETs.
    pub plain_bytes: u64,
}

impl Usage {
    /// Scale all byte/request quantities by a factor — used to project
    /// results measured at a small TPC-H scale factor to the paper's SF 10
    /// (every quantity is linear in table size; see DESIGN.md §2).
    ///
    /// Each field is rounded to integer units exactly **once**, so scaling
    /// is *not* distributive over addition: `scaled(a) + scaled(b)` may
    /// differ from `scaled(a + b)` by up to one unit per operand. When
    /// projecting a multi-phase plan, **sum first, then scale once** —
    /// that is what `QueryMetrics::scaled_usage` does — rather than
    /// scaling each phase and summing, which drifts by up to half a unit
    /// per phase. The test below pins this invariant.
    pub fn scaled(&self, factor: f64) -> Usage {
        let s = |v: u64| ((v as f64) * factor).round() as u64;
        Usage {
            requests: s(self.requests),
            select_scanned_bytes: s(self.select_scanned_bytes),
            select_returned_bytes: s(self.select_returned_bytes),
            plain_bytes: s(self.plain_bytes),
        }
    }

    /// All bytes that crossed the wire to the compute node.
    pub fn total_transferred(&self) -> u64 {
        self.select_returned_bytes + self.plain_bytes
    }
}

impl Add for Usage {
    type Output = Usage;
    fn add(self, rhs: Usage) -> Usage {
        Usage {
            requests: self.requests + rhs.requests,
            select_scanned_bytes: self.select_scanned_bytes + rhs.select_scanned_bytes,
            select_returned_bytes: self.select_returned_bytes + rhs.select_returned_bytes,
            plain_bytes: self.plain_bytes + rhs.plain_bytes,
        }
    }
}

impl AddAssign for Usage {
    fn add_assign(&mut self, rhs: Usage) {
        *self = *self + rhs;
    }
}

/// A query's dollar cost, split exactly as the paper's stacked cost bars:
/// compute / request / scan / transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    pub compute: f64,
    pub request: f64,
    pub scan: f64,
    pub transfer: f64,
}

impl CostBreakdown {
    pub fn total(&self) -> f64 {
        self.compute + self.request + self.scan + self.transfer
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            compute: self.compute + rhs.compute,
            request: self.request + rhs.request,
            scan: self.scan + rhs.scan,
            transfer: self.transfer + rhs.transfer,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: CostBreakdown) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = Pricing::us_east();
        assert_eq!(p.scan_per_gb, 0.002);
        assert_eq!(p.select_return_per_gb, 0.0007);
        assert_eq!(p.per_1k_requests, 0.0004);
        assert_eq!(p.compute_per_hour, 2.128);
        assert_eq!(p.plain_transfer_per_gb, 0.0);
    }

    #[test]
    fn cost_arithmetic_matches_paper_formulae() {
        let p = Pricing::us_east();
        let usage = Usage {
            requests: 10_000,
            select_scanned_bytes: 10 * 1_000_000_000, // 10 GB scanned
            select_returned_bytes: 1_000_000_000,     // 1 GB returned
            plain_bytes: 5 * 1_000_000_000,           // free in-region
        };
        let c = p.cost(&usage, 3600.0); // one hour of compute
        assert!((c.compute - 2.128).abs() < 1e-12);
        assert!((c.request - 0.004).abs() < 1e-12);
        assert!((c.scan - 0.02).abs() < 1e-12);
        assert!((c.transfer - 0.0007).abs() < 1e-12);
        assert!((c.total() - (2.128 + 0.004 + 0.02 + 0.0007)).abs() < 1e-12);
    }

    #[test]
    fn plain_gets_are_free_in_region() {
        let p = Pricing::us_east();
        let usage = Usage {
            requests: 0,
            select_scanned_bytes: 0,
            select_returned_bytes: 0,
            plain_bytes: 100 * 1_000_000_000,
        };
        assert_eq!(p.cost(&usage, 0.0).total(), 0.0);
    }

    #[test]
    fn usage_scaling_is_linear() {
        let u = Usage {
            requests: 100,
            select_scanned_bytes: 1000,
            select_returned_bytes: 500,
            plain_bytes: 300,
        };
        let s = u.scaled(10.0);
        assert_eq!(s.requests, 1000);
        assert_eq!(s.select_scanned_bytes, 10_000);
        assert_eq!(s.total_transferred(), 8000);
    }

    #[test]
    fn scaling_is_rounded_once_at_the_aggregate_level() {
        // Per-part rounding drifts: each of 10 parts of 3 bytes scaled by
        // 1.25 rounds 3.75 → 4 (total 40), while the summed 30 bytes scale
        // to exactly 37.5 → 38. Projections must therefore scale the *sum*.
        let part = Usage {
            select_scanned_bytes: 3,
            ..Default::default()
        };
        let factor = 1.25;
        let mut summed = Usage::default();
        let mut per_part = Usage::default();
        for _ in 0..10 {
            summed += part;
            per_part += part.scaled(factor);
        }
        let once = summed.scaled(factor);
        assert_eq!(once.select_scanned_bytes, 38);
        assert_eq!(per_part.select_scanned_bytes, 40);
        // The aggregate-level rounding is within half a unit of exact.
        let exact = 30.0 * factor;
        assert!((once.select_scanned_bytes as f64 - exact).abs() <= 0.5);
    }

    #[test]
    fn usage_addition() {
        let a = Usage {
            requests: 1,
            select_scanned_bytes: 2,
            select_returned_bytes: 3,
            plain_bytes: 4,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.requests, 2);
        assert_eq!(b.plain_bytes, 8);
    }
}
