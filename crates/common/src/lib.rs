//! # pushdown-common
//!
//! Shared foundation for the PushdownDB reproduction of
//! *"PushdownDB: Accelerating a DBMS using S3 Computation"* (ICDE 2020).
//!
//! This crate contains everything the other crates agree on:
//!
//! * [`value`] — the dynamic [`value::Value`] type and
//!   [`value::DataType`] enum used for rows flowing through the
//!   engine and through the simulated S3 Select service.
//! * [`date`] — proleptic-Gregorian date arithmetic (days since the Unix
//!   epoch), used by the TPC-H date columns.
//! * [`schema`] — named, typed record schemas.
//! * [`row`] — row and row-batch containers.
//! * [`columnar`] — typed column batches ([`columnar::ColumnarBatch`])
//!   for vectorized execution with late materialization.
//! * [`pricing`] — the AWS US-East price constants the paper computes its
//!   dollar costs with, and [`pricing::CostBreakdown`].
//! * [`ledger`] — thread-safe, scoped accounting of bytes scanned /
//!   returned / transferred and HTTP requests issued, mirroring what an
//!   AWS bill would be computed from; per-query child ledgers roll up
//!   atomically into the store-global one.
//! * [`retry`] — the uniform bounded-backoff retry policy shared by every
//!   request path (whole-object, range, multi-range and Select requests).
//! * [`perf`] — the deterministic analytical performance model that maps
//!   ledger quantities to simulated elapsed seconds (the paper's testbed —
//!   an r4.8xlarge behind a 10 GigE link — is not available, so elapsed
//!   time is modeled rather than measured; see `DESIGN.md` §5).
//! * [`error`] — the shared error type.
//! * [`tmp`] — self-cleaning temp directories for the persistent-cache
//!   test and bench suites (no `tempfile` crate offline).

pub mod columnar;
pub mod date;
pub mod error;
pub mod fmtutil;
pub mod ledger;
pub mod mix;
pub mod perf;
pub mod pricing;
#[cfg(test)]
mod proptests;
pub mod retry;
pub mod row;
pub mod schema;
pub mod tmp;
pub mod value;

pub use columnar::{Column, ColumnData, ColumnarBatch, SelVec};
pub use error::{Error, Result};
pub use ledger::{BudgetedLedger, CostLedger};
pub use perf::{PerfModel, PhaseStats};
pub use pricing::{CostBreakdown, Pricing};
pub use retry::RetryPolicy;
pub use row::Row;
pub use schema::{Field, Schema};
pub use tmp::TempDir;
pub use value::{DataType, Value};
