//! Typed column batches for vectorized execution.
//!
//! A [`ColumnarBatch`] carries one typed vector per schema column plus a
//! validity bitmap, mirroring the on-disk ColumnarLite chunk layout so the
//! format layer can decode straight into it without materializing rows.
//! Dictionary-encoded string chunks stay dictionary-coded in memory
//! ([`ColumnData::DictStr`]): filters compare against the dictionary once
//! per batch instead of once per row, and rows are only materialized at
//! operator boundaries that still need them (joins, SQL expression
//! evaluation, output) — classic late materialization.
//!
//! The validity bitmap uses the same convention as the file format: bit
//! `i % 8` of byte `i / 8` is **set when the value is valid** (non-NULL).

use crate::row::{Row, RowBatch};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::sync::Arc;

/// A selection vector: indices of surviving rows, ascending.
pub type SelVec = Vec<u32>;

/// The typed values of one column. NULL slots hold the type's default
/// (0 / 0.0 / false / ""); the validity bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
    Str(Vec<String>),
    /// Dictionary-coded strings: `codes[i]` indexes into the shared
    /// `dict`. Codes exist for NULL rows too (they index arbitrary
    /// entries and must be ignored via the validity bitmap).
    DictStr {
        codes: Vec<u32>,
        dict: Arc<Vec<String>>,
    },
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::DictStr { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One column: typed data plus validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub data: ColumnData,
    /// Bit set ⇒ valid (non-NULL). `len().div_ceil(8)` bytes.
    pub validity: Vec<u8>,
}

impl Column {
    pub fn new(data: ColumnData, validity: Vec<u8>) -> Self {
        debug_assert_eq!(validity.len(), data.len().div_ceil(8));
        Column { data, validity }
    }

    /// A column where every slot is valid.
    pub fn all_valid(data: ColumnData) -> Self {
        let n = data.len();
        let mut validity = vec![0xffu8; n.div_ceil(8)];
        if !n.is_multiple_of(8) {
            if let Some(last) = validity.last_mut() {
                *last = (1u8 << (n % 8)) - 1;
            }
        }
        Column { data, validity }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity[i / 8] & (1 << (i % 8)) != 0
    }

    /// Count of valid (non-NULL) slots.
    pub fn valid_count(&self) -> usize {
        let n = self.len();
        (0..n).filter(|&i| self.is_valid(i)).count()
    }

    /// Materialize slot `i` as a [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::DictStr { codes, dict } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Sub-column `[start, start+len)`, rebuilding the validity bitmap.
    /// Dictionary columns share the dictionary `Arc`.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(v[start..start + len].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..start + len].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..start + len].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..start + len].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..start + len].to_vec()),
            ColumnData::DictStr { codes, dict } => ColumnData::DictStr {
                codes: codes[start..start + len].to_vec(),
                dict: Arc::clone(dict),
            },
        };
        let mut validity = vec![0u8; len.div_ceil(8)];
        for i in 0..len {
            if self.is_valid(start + i) {
                validity[i / 8] |= 1 << (i % 8);
            }
        }
        Column { data, validity }
    }
}

/// Builds one typed column from a stream of [`Value`]s, coercing
/// wrong-typed values exactly like the ColumnarLite writer does
/// (Int→0, Float→0.0, Date→0, Bool→false, Str→"").
struct ColumnBuilder {
    dtype: DataType,
    data: ColumnData,
    validity: Vec<u8>,
    n: usize,
}

impl ColumnBuilder {
    fn new(dtype: DataType, capacity: usize) -> Self {
        let data = match dtype {
            DataType::Int => ColumnData::Int(Vec::with_capacity(capacity)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(capacity)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(capacity)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(capacity)),
        };
        ColumnBuilder {
            dtype,
            data,
            validity: Vec::with_capacity(capacity.div_ceil(8)),
            n: 0,
        }
    }

    fn push(&mut self, v: &Value) {
        let valid = !v.is_null();
        if self.n.is_multiple_of(8) {
            self.validity.push(0);
        }
        if valid {
            let byte = self.n / 8;
            self.validity[byte] |= 1 << (self.n % 8);
        }
        self.n += 1;
        match (&mut self.data, self.dtype) {
            (ColumnData::Int(out), _) => out.push(match v {
                Value::Int(i) => *i,
                _ => 0,
            }),
            (ColumnData::Float(out), _) => out.push(match v {
                Value::Float(f) => *f,
                _ => 0.0,
            }),
            (ColumnData::Bool(out), _) => out.push(match v {
                Value::Bool(b) => *b,
                _ => false,
            }),
            (ColumnData::Date(out), _) => out.push(match v {
                Value::Date(d) => *d,
                _ => 0,
            }),
            (ColumnData::Str(out), _) => out.push(match v {
                Value::Str(s) => s.clone(),
                _ => String::new(),
            }),
            (ColumnData::DictStr { .. }, _) => unreachable!("builder never produces dict"),
        }
    }

    fn finish(self) -> Column {
        Column {
            data: self.data,
            validity: self.validity,
        }
    }
}

/// A batch of rows stored column-wise: the unit of vectorized execution.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    pub schema: Schema,
    pub columns: Vec<Column>,
    pub len: usize,
}

impl ColumnarBatch {
    pub fn new(schema: Schema, columns: Vec<Column>, len: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        debug_assert_eq!(columns.len(), schema.len());
        ColumnarBatch {
            schema,
            columns,
            len,
        }
    }

    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, 0).finish())
            .collect();
        ColumnarBatch {
            schema,
            columns,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Pivot a row batch into columns, coercing wrong-typed values like
    /// the ColumnarLite writer (the CSV fallback path of columnar scans).
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> ColumnarBatch {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, rows.len()))
            .collect();
        for row in rows {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push(row.get(c));
            }
        }
        ColumnarBatch {
            schema: schema.clone(),
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
            len: rows.len(),
        }
    }

    pub fn from_row_batch(batch: &RowBatch) -> ColumnarBatch {
        ColumnarBatch::from_rows(&batch.schema, &batch.rows)
    }

    /// Materialize row `i`.
    pub fn row_at(&self, i: usize) -> Row {
        Row(self.columns.iter().map(|c| c.value_at(i)).collect())
    }

    /// Materialize every row (output boundary).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row_at(i)).collect()
    }

    pub fn to_row_batch(&self) -> RowBatch {
        RowBatch::new(self.schema.clone(), self.to_rows())
    }

    /// Late materialization: gather only the selected rows.
    pub fn gather(&self, sel: &[u32]) -> Vec<Row> {
        sel.iter().map(|&i| self.row_at(i as usize)).collect()
    }

    /// Sub-batch of rows `[start, start+len)`.
    pub fn slice(&self, start: usize, len: usize) -> ColumnarBatch {
        ColumnarBatch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, len)).collect(),
            len,
        }
    }

    /// Split into sub-batches of at most `capacity` rows.
    pub fn chunks(self, capacity: usize) -> Vec<ColumnarBatch> {
        let capacity = capacity.max(1);
        if self.len <= capacity {
            if self.len == 0 {
                return Vec::new();
            }
            return vec![self];
        }
        let mut out = Vec::with_capacity(self.len.div_ceil(capacity));
        let mut start = 0;
        while start < self.len {
            let n = capacity.min(self.len - start);
            out.push(self.slice(start, n));
            start += n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn sample_schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
            ("flag", DataType::Bool),
            ("day", DataType::Date),
        ])
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row(vec![
                    Value::Int(i as i64),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("name-{}", i % 5))
                    },
                    Value::Float(i as f64 * 0.5),
                    Value::Bool(i % 2 == 0),
                    Value::Date(i as i32),
                ])
            })
            .collect()
    }

    #[test]
    fn from_rows_round_trips() {
        let schema = sample_schema();
        let rows = sample_rows(23);
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        assert_eq!(batch.len(), 23);
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn gather_selects_rows() {
        let schema = sample_schema();
        let rows = sample_rows(10);
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let sel: SelVec = vec![1, 4, 9];
        let got = batch.gather(&sel);
        assert_eq!(got, vec![rows[1].clone(), rows[4].clone(), rows[9].clone()]);
    }

    #[test]
    fn slice_and_chunks_preserve_rows() {
        let schema = sample_schema();
        let rows = sample_rows(23);
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let s = batch.slice(5, 9);
        assert_eq!(s.to_rows(), rows[5..14].to_vec());
        let rejoined: Vec<Row> = batch
            .chunks(7)
            .into_iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert_eq!(rejoined, rows);
    }

    #[test]
    fn dict_column_materializes_strings() {
        let schema = Schema::from_pairs(&[("s", DataType::Str)]);
        let dict = Arc::new(vec!["a".to_string(), "b".to_string()]);
        let col = Column::new(
            ColumnData::DictStr {
                codes: vec![1, 0, 0, 1],
                dict,
            },
            vec![0b1011],
        );
        let batch = ColumnarBatch::new(schema, vec![col], 4);
        assert_eq!(
            batch.to_rows(),
            vec![
                Row(vec![Value::Str("b".into())]),
                Row(vec![Value::Str("a".into())]),
                Row(vec![Value::Null]),
                Row(vec![Value::Str("b".into())]),
            ]
        );
        let sliced = batch.slice(1, 3);
        assert_eq!(sliced.to_rows(), batch.to_rows()[1..4].to_vec());
    }

    #[test]
    fn wrong_typed_values_coerce_like_writer() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![Row(vec![Value::Str("x".into()), Value::Int(7)])];
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        assert_eq!(
            batch.to_rows(),
            vec![Row(vec![Value::Int(0), Value::Str(String::new())])]
        );
    }

    #[test]
    fn all_valid_masks_tail_bits() {
        let data = ColumnData::Int((0..11).collect());
        let col = Column::all_valid(data);
        assert_eq!(col.valid_count(), 11);
        assert_eq!(col.validity, vec![0xff, 0b0000_0111]);
    }
}
