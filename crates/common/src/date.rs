//! Calendar date arithmetic.
//!
//! TPC-H date columns (`o_orderdate`, `l_shipdate`, ...) are stored as the
//! number of days since the Unix epoch (1970-01-01) in a plain `i32`. This
//! module converts between that representation and `YYYY-MM-DD` text using
//! the proleptic Gregorian calendar. The algorithms are the well-known
//! branch-light civil-date conversions (Howard Hinnant's `days_from_civil`
//! and `civil_from_days`), valid far beyond the TPC-H range of 1992–1998.

/// A civil (year, month, day) triple. Months and days are 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Civil {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

/// Days since 1970-01-01 for the given civil date.
///
/// ```
/// use pushdown_common::date::{days_from_civil, Civil};
/// assert_eq!(days_from_civil(Civil { year: 1970, month: 1, day: 1 }), 0);
/// assert_eq!(days_from_civil(Civil { year: 1992, month: 3, day: 1 }), 8095);
/// ```
pub fn days_from_civil(c: Civil) -> i32 {
    let y = if c.month <= 2 { c.year - 1 } else { c.year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = c.month as i64;
    let d = c.day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Civil date for the given number of days since 1970-01-01.
pub fn civil_from_days(days: i32) -> Civil {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    Civil {
        year: (if m <= 2 { y + 1 } else { y }) as i32,
        month: m,
        day: d,
    }
}

/// Whether `year` is a leap year in the Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Parse a `YYYY-MM-DD` string into days since the epoch.
///
/// Returns `None` for anything that is not a syntactically and calendrically
/// valid date (e.g. `1993-02-30`).
pub fn parse_date(s: &str) -> Option<i32> {
    let b = s.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return None;
    }
    let num = |r: std::ops::Range<usize>| -> Option<u32> {
        let mut v: u32 = 0;
        for &c in &b[r] {
            if !c.is_ascii_digit() {
                return None;
            }
            v = v * 10 + (c - b'0') as u32;
        }
        Some(v)
    };
    let year = num(0..4)? as i32;
    let month = num(5..7)?;
    let day = num(8..10)?;
    if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
        return None;
    }
    Some(days_from_civil(Civil { year, month, day }))
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let c = civil_from_days(days);
    format!("{:04}-{:02}-{:02}", c.year, c.month, c.day)
}

/// Convenience: days since epoch for a (year, month, day) literal.
pub fn ymd(year: i32, month: u32, day: u32) -> i32 {
    days_from_civil(Civil { year, month, day })
}

/// Add a number of whole months to a date, clamping the day to the end of
/// the target month (SQL `date + interval 'n' month` semantics, which TPC-H
/// query predicates such as Q14's `+ interval '1' month` rely on).
pub fn add_months(days: i32, months: i32) -> i32 {
    let c = civil_from_days(days);
    let total = c.year * 12 + (c.month as i32 - 1) + months;
    let year = total.div_euclid(12);
    let month = (total.rem_euclid(12) + 1) as u32;
    let day = c.day.min(days_in_month(year, month));
    days_from_civil(Civil { year, month, day })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(ymd(1970, 1, 1), 0);
        assert_eq!(
            civil_from_days(0),
            Civil {
                year: 1970,
                month: 1,
                day: 1
            }
        );
    }

    #[test]
    fn round_trips_across_tpch_range() {
        // Every day from 1992-01-01 through 1998-12-31 (the TPC-H range).
        let start = ymd(1992, 1, 1);
        let end = ymd(1998, 12, 31);
        for d in start..=end {
            let c = civil_from_days(d);
            assert_eq!(days_from_civil(c), d);
        }
    }

    #[test]
    fn round_trips_text() {
        for s in [
            "1992-03-01",
            "1995-12-31",
            "1996-02-29",
            "2000-02-29",
            "1970-01-01",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s);
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        for s in [
            "1993-02-29", // not a leap year
            "1900-02-29", // century rule
            "1992-13-01",
            "1992-00-10",
            "1992-01-32",
            "1992-1-01",
            "hello-wor",
            "19920301",
            "1992-03-01x",
            "",
        ] {
            assert_eq!(parse_date(s), None, "should reject {s:?}");
        }
    }

    #[test]
    fn accepts_gregorian_leap_rules() {
        assert!(is_leap_year(1992));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(1993));
    }

    #[test]
    fn known_anchors() {
        // Cross-checked against an external calendar.
        assert_eq!(ymd(1992, 3, 1), 8095);
        assert_eq!(ymd(1995, 1, 1), 9131);
        assert_eq!(ymd(1998, 12, 1), 10561);
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(ymd(1992, 3, 1) < ymd(1992, 6, 1));
        assert!(ymd(1992, 6, 1) < ymd(1993, 1, 1));
        assert!(ymd(1994, 12, 31) < ymd(1995, 1, 1));
    }

    #[test]
    fn add_months_clamps_day() {
        assert_eq!(format_date(add_months(ymd(1995, 1, 31), 1)), "1995-02-28");
        assert_eq!(format_date(add_months(ymd(1996, 1, 31), 1)), "1996-02-29");
        assert_eq!(format_date(add_months(ymd(1995, 9, 1), 1)), "1995-10-01");
        assert_eq!(format_date(add_months(ymd(1995, 12, 1), 1)), "1996-01-01");
        assert_eq!(format_date(add_months(ymd(1995, 3, 15), -1)), "1995-02-15");
        assert_eq!(format_date(add_months(ymd(1995, 1, 15), -1)), "1994-12-15");
    }

    #[test]
    fn negative_days_before_epoch() {
        assert_eq!(format_date(-1), "1969-12-31");
        assert_eq!(parse_date("1969-12-31"), Some(-1));
    }
}
