//! The one retry policy every request path shares.
//!
//! Transient service faults ([`crate::Error::ServiceFault`]) are the only
//! retryable failure. Whole-object GETs, byte-range GETs, multi-range GETs
//! and S3 Select requests all retry under the *same* bounded-backoff
//! policy, so fault-tolerance behaviour cannot diverge per path. Backoff
//! is deterministic (no jitter) and is charged to the store's **virtual
//! clock**, not the wall clock — chaos runs stay fast and reproducible.
//!
//! Every attempt (including failed ones) bills one request on the ledger,
//! exactly as AWS would: a retried query costs more requests than a clean
//! one, and the accounting shows it.

/// Bounded exponential backoff retry for transient faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). Clamped to ≥ 1 at use sites.
    pub max_attempts: u32,
    /// Virtual seconds slept before the first retry.
    pub base_backoff_s: f64,
    /// Cap on any single backoff, virtual seconds.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 0.05,
            max_backoff_s: 1.0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` and the default backoff shape.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..Default::default()
        }
    }

    /// Virtual seconds to back off before attempt number `attempt`
    /// (1-based; attempt 0 is the initial try and never waits):
    /// `min(base · 2^(attempt-1), max)`.
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let exp = (attempt - 1).min(60);
        (self.base_backoff_s * (1u64 << exp) as f64).min(self.max_backoff_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before(0), 0.0);
        assert!((p.backoff_before(1) - 0.05).abs() < 1e-12);
        assert!((p.backoff_before(2) - 0.10).abs() < 1e-12);
        assert!((p.backoff_before(3) - 0.20).abs() < 1e-12);
        // Caps at max_backoff_s.
        assert_eq!(p.backoff_before(30), p.max_backoff_s);
        assert_eq!(p.backoff_before(300), p.max_backoff_s);
    }

    #[test]
    fn with_attempts_keeps_backoff_shape() {
        let p = RetryPolicy::with_attempts(7);
        assert_eq!(p.max_attempts, 7);
        assert_eq!(p.base_backoff_s, RetryPolicy::default().base_backoff_s);
    }
}
