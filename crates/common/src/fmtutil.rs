//! Human-readable formatting helpers for the experiment harnesses.

/// Format a byte count with a binary-free, paper-style unit (KB/MB/GB with
/// decimal 1000 steps, as AWS bills).
pub fn bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = n as f64;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1000.0;
        u += 1;
    }
    if u == 0 {
        format!("{n} B")
    } else {
        format!("{:.2} {}", v, UNITS[u])
    }
}

/// Format seconds with adaptive precision.
pub fn secs(t: f64) -> String {
    if t < 0.01 {
        format!("{:.1} ms", t * 1000.0)
    } else if t < 10.0 {
        format!("{t:.2} s")
    } else {
        format!("{t:.1} s")
    }
}

/// Format a dollar amount the way the paper's cost axes do.
pub fn dollars(d: f64) -> String {
    if d < 0.01 {
        format!("${d:.5}")
    } else {
        format!("${d:.4}")
    }
}

/// Geometric mean of a slice (the paper's Fig 10 summary statistic).
/// Returns 0.0 for an empty slice; ignores non-positive entries the same
/// way the paper's geo-mean over strictly positive runtimes would.
pub fn geo_mean(xs: &[f64]) -> f64 {
    let positive: Vec<f64> = xs.iter().copied().filter(|x| *x > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|x| x.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_units() {
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(1500), "1.50 KB");
        assert_eq!(bytes(7_250_000_000), "7.25 GB");
    }

    #[test]
    fn secs_precision() {
        assert_eq!(secs(0.002), "2.0 ms");
        assert_eq!(secs(1.234), "1.23 s");
        assert_eq!(secs(123.456), "123.5 s");
    }

    #[test]
    fn dollars_precision() {
        assert_eq!(dollars(0.0005), "$0.00050");
        assert_eq!(dollars(0.25), "$0.2500");
    }

    #[test]
    fn geo_mean_matches_hand_calc() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
        // Non-positive entries ignored.
        assert!((geo_mean(&[0.0, 4.0]) - 4.0).abs() < 1e-12);
    }
}
