//! The shared error type for every PushdownDB crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by any layer of the system.
///
/// A single error enum is deliberately shared across crates: the system is
/// small enough that per-crate error hierarchies would only add conversion
/// noise, and the S3 Select service needs to round-trip engine errors back
/// to the client anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A SQL string failed to lex or parse. Holds a human-readable message
    /// including the offending position.
    Parse(String),
    /// An expression or statement failed semantic analysis (unknown column,
    /// type mismatch, unsupported construct, ...).
    Bind(String),
    /// A runtime evaluation error (division by zero, bad cast, ...).
    Eval(String),
    /// The requested bucket or object does not exist.
    NoSuchKey(String),
    /// A byte range fell outside the object, or was malformed.
    InvalidRange(String),
    /// The S3 Select service rejected the request (e.g. SQL text over the
    /// 256 KB limit, unsupported feature for the storage format).
    SelectRejected(String),
    /// Malformed data encountered while decoding CSV or ColumnarLite bytes.
    Corrupt(String),
    /// An injected or simulated service fault (used by tests to exercise
    /// retry paths).
    ServiceFault(String),
    /// Anything else.
    Other(String),
}

impl Error {
    /// Short machine-readable code, in the spirit of S3 error codes.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Parse(_) => "ParseError",
            Error::Bind(_) => "BindError",
            Error::Eval(_) => "EvalError",
            Error::NoSuchKey(_) => "NoSuchKey",
            Error::InvalidRange(_) => "InvalidRange",
            Error::SelectRejected(_) => "SelectRejected",
            Error::Corrupt(_) => "Corrupt",
            Error::ServiceFault(_) => "ServiceFault",
            Error::Other(_) => "Other",
        }
    }

    /// Whether a client would be justified in retrying the request.
    ///
    /// Only transient service faults are retryable; everything else is a
    /// deterministic failure that would recur.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::ServiceFault(_))
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            Error::Parse(m)
            | Error::Bind(m)
            | Error::Eval(m)
            | Error::NoSuchKey(m)
            | Error::InvalidRange(m)
            | Error::SelectRejected(m)
            | Error::Corrupt(m)
            | Error::ServiceFault(m)
            | Error::Other(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Error::Parse("x".into()).code(), "ParseError");
        assert_eq!(Error::NoSuchKey("k".into()).code(), "NoSuchKey");
        assert_eq!(Error::SelectRejected("q".into()).code(), "SelectRejected");
    }

    #[test]
    fn only_service_faults_retry() {
        assert!(Error::ServiceFault("blip".into()).is_retryable());
        assert!(!Error::Parse("x".into()).is_retryable());
        assert!(!Error::Eval("x".into()).is_retryable());
        assert!(!Error::Corrupt("x".into()).is_retryable());
    }

    #[test]
    fn display_includes_code_and_message() {
        let e = Error::Bind("unknown column `foo`".into());
        assert_eq!(e.to_string(), "BindError: unknown column `foo`");
    }
}
