//! Deterministic, dependency-free hashing/mixing primitives shared by
//! the seeded subsystems.
//!
//! The store's fault plan, the workload generator's query mix and the
//! chaos salts all derive from **one** pair of functions, so seed-replay
//! documentation ("install the same plan, scope with the same salt")
//! stays true by construction — a change here changes every consumer in
//! lockstep rather than silently desynchronizing them.

/// SplitMix64 — the standard 64-bit finalizer. Bijective, so distinct
/// inputs keep distinct outputs.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte stream (64-bit).
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // A tiny avalanche check: flipping one input bit flips many
        // output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "avalanche too weak: {d} bits");
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // Known FNV-1a 64 test vector: "a" → 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
    }
}
