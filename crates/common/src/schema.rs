//! Record schemas: ordered, named, typed columns.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields. Cheap to clone (the field list is shared).
///
/// Column lookup is case-insensitive, matching SQL identifier resolution in
/// the S3 Select dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// Build from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Case-insensitive index lookup.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns a bind error naming the column.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            Error::Bind(format!(
                "unknown column `{name}` (have: {})",
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    pub fn dtype_of(&self, idx: usize) -> DataType {
        self.fields[idx].dtype
    }

    /// A new schema keeping only the given column indices, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Concatenate two schemas (used by joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields().to_vec();
        fields.extend(other.fields().iter().cloned());
        Schema::new(fields)
    }

    /// Names of all columns, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("c_custkey", DataType::Int),
            ("c_name", DataType::Str),
            ("c_acctbal", DataType::Float),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("C_CUSTKEY"), Some(0));
        assert_eq!(s.index_of("c_AcctBal"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn resolve_reports_candidates() {
        let err = sample().resolve("nope").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope"));
        assert!(msg.contains("c_custkey"));
    }

    #[test]
    fn project_preserves_order() {
        let p = sample().project(&[2, 0]);
        assert_eq!(p.names(), vec!["c_acctbal", "c_custkey"]);
        assert_eq!(p.dtype_of(0), DataType::Float);
    }

    #[test]
    fn join_concatenates() {
        let a = sample();
        let b = Schema::from_pairs(&[("o_orderkey", DataType::Int)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        assert_eq!(j.index_of("o_orderkey"), Some(3));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            sample().to_string(),
            "(c_custkey INT, c_name STRING, c_acctbal FLOAT)"
        );
    }
}
