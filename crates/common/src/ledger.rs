//! Thread-safe resource accounting.
//!
//! Every interaction with the simulated S3 service is metered here, exactly
//! as AWS would meter a bill: requests issued, bytes scanned by S3 Select,
//! bytes returned by S3 Select, and bytes moved by plain GETs. The executor
//! snapshots the ledger around phases to attribute consumption.

use crate::pricing::Usage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, lock-free accumulator of billable usage.
///
/// Cloning shares the underlying counters (`Arc` inside), so the store, the
/// select engine and the executor can all hold handles to one ledger.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    select_scanned: AtomicU64,
    select_returned: AtomicU64,
    plain_bytes: AtomicU64,
}

impl CostLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one HTTP request (plain GET or Select alike — AWS bills both).
    pub fn add_request(&self) {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_requests(&self, n: u64) {
        self.inner.requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Record bytes scanned inside S3 Select.
    pub fn add_select_scanned(&self, bytes: u64) {
        self.inner
            .select_scanned
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record bytes returned by an S3 Select response.
    pub fn add_select_returned(&self, bytes: u64) {
        self.inner
            .select_returned
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record bytes returned by a plain (non-Select) GET.
    pub fn add_plain_bytes(&self, bytes: u64) {
        self.inner.plain_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current cumulative usage.
    pub fn snapshot(&self) -> Usage {
        Usage {
            requests: self.inner.requests.load(Ordering::Relaxed),
            select_scanned_bytes: self.inner.select_scanned.load(Ordering::Relaxed),
            select_returned_bytes: self.inner.select_returned.load(Ordering::Relaxed),
            plain_bytes: self.inner.plain_bytes.load(Ordering::Relaxed),
        }
    }

    /// Usage accumulated since an earlier snapshot.
    pub fn delta_since(&self, earlier: &Usage) -> Usage {
        let now = self.snapshot();
        Usage {
            requests: now.requests - earlier.requests,
            select_scanned_bytes: now.select_scanned_bytes - earlier.select_scanned_bytes,
            select_returned_bytes: now.select_returned_bytes - earlier.select_returned_bytes,
            plain_bytes: now.plain_bytes - earlier.plain_bytes,
        }
    }

    /// Reset all counters to zero (between experiments).
    pub fn reset(&self) {
        self.inner.requests.store(0, Ordering::Relaxed);
        self.inner.select_scanned.store(0, Ordering::Relaxed);
        self.inner.select_returned.store(0, Ordering::Relaxed);
        self.inner.plain_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_snapshots() {
        let l = CostLedger::new();
        l.add_request();
        l.add_requests(9);
        l.add_select_scanned(100);
        l.add_select_returned(40);
        l.add_plain_bytes(7);
        let u = l.snapshot();
        assert_eq!(u.requests, 10);
        assert_eq!(u.select_scanned_bytes, 100);
        assert_eq!(u.select_returned_bytes, 40);
        assert_eq!(u.plain_bytes, 7);
    }

    #[test]
    fn clones_share_counters() {
        let l = CostLedger::new();
        let l2 = l.clone();
        l2.add_select_scanned(5);
        assert_eq!(l.snapshot().select_scanned_bytes, 5);
    }

    #[test]
    fn delta_since() {
        let l = CostLedger::new();
        l.add_requests(3);
        let snap = l.snapshot();
        l.add_requests(4);
        l.add_plain_bytes(11);
        let d = l.delta_since(&snap);
        assert_eq!(d.requests, 4);
        assert_eq!(d.plain_bytes, 11);
    }

    #[test]
    fn reset_zeroes() {
        let l = CostLedger::new();
        l.add_requests(3);
        l.reset();
        assert_eq!(l.snapshot(), Usage::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let l = CostLedger::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.add_request();
                        l.add_select_scanned(2);
                    }
                });
            }
        });
        let u = l.snapshot();
        assert_eq!(u.requests, 8000);
        assert_eq!(u.select_scanned_bytes, 16_000);
    }
}
