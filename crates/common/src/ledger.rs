//! Thread-safe, *scoped* resource accounting.
//!
//! Every interaction with the simulated S3 service is metered here, exactly
//! as AWS would meter a bill: requests issued, bytes scanned by S3 Select,
//! bytes returned by S3 Select, and bytes moved by plain GETs.
//!
//! # Scoping
//!
//! A ledger can spawn **child** ledgers ([`CostLedger::child`]). Every
//! addition to a child is applied atomically to the child *and* to every
//! ancestor, so a store-global ledger always equals the sum of its
//! per-query children plus whatever was billed directly against it. This
//! is what makes per-query accounting sound under concurrency: each query
//! reads its own child, and nobody needs the racy
//! snapshot-run-snapshot (`delta_since`) pattern that interleaved queries
//! corrupt.

use crate::pricing::{Pricing, Usage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, lock-free accumulator of billable usage.
///
/// Cloning shares the underlying counters (`Arc` inside), so the store, the
/// select engine and the executor can all hold handles to one ledger.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    inner: Arc<Counters>,
    /// Ancestor counters (nearest parent first). Every addition applied to
    /// `inner` is also applied to each of these, so parents see the sum of
    /// their children without any reconciliation step.
    uplinks: Vec<Arc<Counters>>,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    select_scanned: AtomicU64,
    select_returned: AtomicU64,
    plain_bytes: AtomicU64,
}

impl CostLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// A child ledger: starts at zero, and every addition rolls up
    /// atomically into this ledger (and its ancestors, if any). Children
    /// may be nested arbitrarily deep.
    pub fn child(&self) -> CostLedger {
        let mut uplinks = Vec::with_capacity(self.uplinks.len() + 1);
        uplinks.push(Arc::clone(&self.inner));
        uplinks.extend(self.uplinks.iter().cloned());
        CostLedger {
            inner: Arc::new(Counters::default()),
            uplinks,
        }
    }

    /// A child of **both** `self` and `peer`: every addition rolls up
    /// into each parent and each of their ancestors, with counters shared
    /// by the two chains (a common global root, say) counted exactly
    /// once. This is the cluster's dual-decomposition primitive: a
    /// per-(query, node) leaf scope bills the query ledger *and* the node
    /// ledger, so Σ query ledgers and Σ node ledgers both equal the
    /// global ledger without double counting.
    pub fn joint_child(&self, peer: &CostLedger) -> CostLedger {
        let mut uplinks: Vec<Arc<Counters>> = Vec::new();
        let mut push = |c: &Arc<Counters>| {
            if !uplinks.iter().any(|u| Arc::ptr_eq(u, c)) {
                uplinks.push(Arc::clone(c));
            }
        };
        push(&self.inner);
        self.uplinks.iter().for_each(&mut push);
        push(&peer.inner);
        peer.uplinks.iter().for_each(&mut push);
        CostLedger {
            inner: Arc::new(Counters::default()),
            uplinks,
        }
    }

    /// Whether this ledger rolls up into a parent (i.e. was created by
    /// [`CostLedger::child`]).
    pub fn is_scoped(&self) -> bool {
        !self.uplinks.is_empty()
    }

    fn add(&self, field: fn(&Counters) -> &AtomicU64, n: u64) {
        field(&self.inner).fetch_add(n, Ordering::Relaxed);
        for up in &self.uplinks {
            field(up).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one HTTP request (plain GET or Select alike — AWS bills both).
    pub fn add_request(&self) {
        self.add(|c| &c.requests, 1);
    }

    pub fn add_requests(&self, n: u64) {
        self.add(|c| &c.requests, n);
    }

    /// Record bytes scanned inside S3 Select.
    pub fn add_select_scanned(&self, bytes: u64) {
        self.add(|c| &c.select_scanned, bytes);
    }

    /// Record bytes returned by an S3 Select response.
    pub fn add_select_returned(&self, bytes: u64) {
        self.add(|c| &c.select_returned, bytes);
    }

    /// Record bytes returned by a plain (non-Select) GET.
    pub fn add_plain_bytes(&self, bytes: u64) {
        self.add(|c| &c.plain_bytes, bytes);
    }

    /// Current cumulative usage.
    pub fn snapshot(&self) -> Usage {
        Usage {
            requests: self.inner.requests.load(Ordering::Relaxed),
            select_scanned_bytes: self.inner.select_scanned.load(Ordering::Relaxed),
            select_returned_bytes: self.inner.select_returned.load(Ordering::Relaxed),
            plain_bytes: self.inner.plain_bytes.load(Ordering::Relaxed),
        }
    }

    /// Usage accumulated since an earlier snapshot.
    ///
    /// **Only sound when nothing else writes to this ledger in between.**
    /// Under concurrency, interleaved queries corrupt each other's deltas;
    /// use a [`CostLedger::child`] per query instead — its
    /// [`CostLedger::snapshot`] *is* the per-query usage.
    pub fn delta_since(&self, earlier: &Usage) -> Usage {
        let now = self.snapshot();
        Usage {
            requests: now.requests - earlier.requests,
            select_scanned_bytes: now.select_scanned_bytes - earlier.select_scanned_bytes,
            select_returned_bytes: now.select_returned_bytes - earlier.select_returned_bytes,
            plain_bytes: now.plain_bytes - earlier.plain_bytes,
        }
    }
}

/// A child [`CostLedger`] paired with a hard **dollar budget** — the
/// admission-control primitive behind per-tenant cost caps.
///
/// The ledger is an ordinary child of `parent` (so everything billed
/// against it rolls up the chain, and "tenant = Σ its queries" holds by
/// the same joint-billing machinery the cluster uses), plus two things a
/// bare ledger does not have:
///
/// * a **price book**: [`BudgetedLedger::spent_dollars`] prices the
///   ledger's usage under the attached [`Pricing`], including modeled
///   compute seconds recorded with [`BudgetedLedger::add_compute_seconds`]
///   — so the budget meters exactly what `billed_cost` would report;
/// * an **exhaustion check**: [`BudgetedLedger::exhausted`] is true once
///   spend reaches the budget. Admission layers shed *before* executing,
///   so a tenant can overshoot by at most the one query in flight when
///   the check last passed — the ledger itself never blocks additions
///   (billing is an accounting fact, not a permission).
///
/// Cloning shares the ledger and the compute accumulator, like every
/// other accounting handle in this workspace.
#[derive(Debug, Clone)]
pub struct BudgetedLedger {
    ledger: CostLedger,
    pricing: Pricing,
    budget_dollars: f64,
    /// Modeled compute nanoseconds charged by the harness (service time
    /// of completed queries); priced at `pricing.compute_per_hour`.
    compute_ns: Arc<AtomicU64>,
}

impl BudgetedLedger {
    /// A budgeted child of `parent`. `budget_dollars` may be
    /// `f64::INFINITY` for an unlimited tenant ([`BudgetedLedger::unlimited`]).
    pub fn new(parent: &CostLedger, pricing: Pricing, budget_dollars: f64) -> BudgetedLedger {
        BudgetedLedger {
            ledger: parent.child(),
            pricing,
            budget_dollars,
            compute_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A budgeted child that never exhausts.
    pub fn unlimited(parent: &CostLedger, pricing: Pricing) -> BudgetedLedger {
        Self::new(parent, pricing, f64::INFINITY)
    }

    /// The underlying child ledger (scope it, joint-bill it, snapshot it).
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    pub fn budget_dollars(&self) -> f64 {
        self.budget_dollars
    }

    /// Record modeled compute seconds consumed on this budget (e.g. a
    /// completed query's service time). Saturates at zero for negative
    /// inputs.
    pub fn add_compute_seconds(&self, seconds: f64) {
        if seconds > 0.0 {
            self.compute_ns
                .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        }
    }

    /// Compute seconds recorded so far.
    pub fn compute_seconds(&self) -> f64 {
        self.compute_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Dollars spent so far: the ledger's usage plus recorded compute
    /// time, priced under the attached price book.
    pub fn spent_dollars(&self) -> f64 {
        self.pricing
            .cost(&self.ledger.snapshot(), self.compute_seconds())
            .total()
    }

    /// Dollars left before exhaustion (never negative; infinite for
    /// unlimited budgets).
    pub fn remaining_dollars(&self) -> f64 {
        (self.budget_dollars - self.spent_dollars()).max(0.0)
    }

    /// Whether spend has reached the budget. Admission checks this
    /// *before* running a query, so a tenant with any budget left gets
    /// at least one more query through.
    pub fn exhausted(&self) -> bool {
        self.spent_dollars() >= self.budget_dollars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_snapshots() {
        let l = CostLedger::new();
        l.add_request();
        l.add_requests(9);
        l.add_select_scanned(100);
        l.add_select_returned(40);
        l.add_plain_bytes(7);
        let u = l.snapshot();
        assert_eq!(u.requests, 10);
        assert_eq!(u.select_scanned_bytes, 100);
        assert_eq!(u.select_returned_bytes, 40);
        assert_eq!(u.plain_bytes, 7);
    }

    #[test]
    fn clones_share_counters() {
        let l = CostLedger::new();
        let l2 = l.clone();
        l2.add_select_scanned(5);
        assert_eq!(l.snapshot().select_scanned_bytes, 5);
    }

    #[test]
    fn delta_since() {
        let l = CostLedger::new();
        l.add_requests(3);
        let snap = l.snapshot();
        l.add_requests(4);
        l.add_plain_bytes(11);
        let d = l.delta_since(&snap);
        assert_eq!(d.requests, 4);
        assert_eq!(d.plain_bytes, 11);
    }

    #[test]
    fn children_roll_up_into_parents() {
        let root = CostLedger::new();
        assert!(!root.is_scoped());
        let a = root.child();
        let b = root.child();
        let b_inner = b.child(); // nesting rolls up through the chain
        assert!(a.is_scoped());
        a.add_requests(2);
        a.add_select_scanned(10);
        b.add_plain_bytes(5);
        b_inner.add_select_returned(7);
        assert_eq!(a.snapshot().requests, 2);
        assert_eq!(b.snapshot().select_returned_bytes, 7);
        assert_eq!(b_inner.snapshot().select_returned_bytes, 7);
        // Parent = sum of all scopes; direct writes still land too.
        root.add_request();
        let u = root.snapshot();
        assert_eq!(u.requests, 3);
        assert_eq!(u.select_scanned_bytes, 10);
        assert_eq!(u.select_returned_bytes, 7);
        assert_eq!(u.plain_bytes, 5);
        // Children never see each other or the parent's direct writes.
        assert_eq!(a.snapshot().plain_bytes, 0);
        assert_eq!(b.snapshot().select_scanned_bytes, 0);
    }

    #[test]
    fn joint_children_bill_both_parents_once() {
        let global = CostLedger::new();
        let node = global.child();
        let query = global.child();
        let leaf = query.joint_child(&node);
        leaf.add_requests(3);
        leaf.add_plain_bytes(10);
        // Both parents see the traffic...
        assert_eq!(node.snapshot().requests, 3);
        assert_eq!(query.snapshot().requests, 3);
        // ...and their shared ancestor counts it exactly once.
        assert_eq!(global.snapshot().requests, 3);
        assert_eq!(global.snapshot().plain_bytes, 10);
        // Dual decomposition: with every leaf joint, Σ node = Σ query =
        // global.
        let node2 = global.child();
        let query2 = global.child();
        let leaf2 = query2.joint_child(&node2);
        leaf2.add_requests(5);
        let nodes = node.snapshot().requests + node2.snapshot().requests;
        let queries = query.snapshot().requests + query2.snapshot().requests;
        assert_eq!(nodes, 8);
        assert_eq!(queries, 8);
        assert_eq!(global.snapshot().requests, 8);
    }

    #[test]
    fn concurrent_children_conserve_the_global_total() {
        let root = CostLedger::new();
        let children: Vec<CostLedger> = (0..8).map(|_| root.child()).collect();
        std::thread::scope(|s| {
            for child in &children {
                s.spawn(move || {
                    for _ in 0..1000 {
                        child.add_request();
                        child.add_select_scanned(3);
                    }
                });
            }
        });
        let mut sum = Usage::default();
        for child in &children {
            sum += child.snapshot();
        }
        assert_eq!(root.snapshot(), sum);
        assert_eq!(sum.requests, 8000);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let l = CostLedger::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.add_request();
                        l.add_select_scanned(2);
                    }
                });
            }
        });
        let u = l.snapshot();
        assert_eq!(u.requests, 8000);
        assert_eq!(u.select_scanned_bytes, 16_000);
    }

    #[test]
    fn budgeted_ledger_prices_usage_and_compute() {
        let root = CostLedger::new();
        // Budget: exactly two 1 GB Select scans at $0.002/GB.
        let b = BudgetedLedger::new(&root, Pricing::us_east(), 0.004);
        assert!(!b.exhausted());
        assert_eq!(b.remaining_dollars(), 0.004);
        b.ledger().add_select_scanned(1_000_000_000);
        assert!(!b.exhausted(), "one scan: half the budget left");
        assert!((b.spent_dollars() - 0.002).abs() < 1e-12);
        b.ledger().add_select_scanned(1_000_000_000);
        assert!(b.exhausted(), "spend == budget exhausts");
        assert_eq!(b.remaining_dollars(), 0.0);
        // The child still rolls up into the parent.
        assert_eq!(root.snapshot().select_scanned_bytes, 2_000_000_000);
    }

    #[test]
    fn budgeted_ledger_meters_compute_seconds() {
        let root = CostLedger::new();
        let pricing = Pricing::us_east();
        // One compute-hour budget.
        let b = BudgetedLedger::new(&root, pricing, pricing.compute_per_hour);
        b.add_compute_seconds(1800.0);
        assert!(!b.exhausted());
        assert!((b.compute_seconds() - 1800.0).abs() < 1e-6);
        b.add_compute_seconds(1800.0);
        assert!(b.exhausted(), "3600 compute seconds spend the hour");
        b.add_compute_seconds(-5.0); // ignored, never un-spends
        assert!((b.compute_seconds() - 3600.0).abs() < 1e-6);
    }

    #[test]
    fn unlimited_budgets_never_exhaust_and_clones_share() {
        let root = CostLedger::new();
        let b = BudgetedLedger::unlimited(&root, Pricing::us_east());
        let b2 = b.clone();
        b.ledger().add_select_scanned(u64::MAX / 2);
        b2.add_compute_seconds(1e6);
        assert!(!b.exhausted());
        assert_eq!(b.remaining_dollars(), f64::INFINITY);
        assert!((b.compute_seconds() - 1e6).abs() < 1.0, "clones share");
    }
}
