//! Dynamic values and data types.
//!
//! PushdownDB is a row-based engine (as the paper's testbed was), so a
//! dynamically typed [`Value`] flows through operators. The type lattice is
//! the small one S3 Select's CSV dialect effectively supports: integers,
//! floats, strings, dates, booleans, and NULL.

use crate::date;
use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Logical column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// Days since 1970-01-01 (see [`crate::date`]).
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A dynamically typed value.
///
/// Comparison follows SQL-ish semantics via [`Value::sql_cmp`] (NULLs are
/// incomparable) but a total order is also available via [`Value::total_cmp`]
/// for sorting, where NULL sorts first and floats use IEEE total ordering.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// The data type of this value, if it is not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a boolean for predicate evaluation (three-valued logic:
    /// NULL maps to `None`).
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(Error::Eval(format!(
                "expected BOOL, found {}",
                other.type_name()
            ))),
        }
    }

    /// Numeric view as f64 (ints and dates widen; everything else errors).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Date(d) => Ok(*d as f64),
            other => Err(Error::Eval(format!(
                "expected numeric, found {}",
                other.type_name()
            ))),
        }
    }

    /// Integer view (floats must be integral).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Date(d) => Ok(*d as i64),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::Eval(format!(
                "expected integer, found {}",
                other.type_name()
            ))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::Eval(format!(
                "expected STRING, found {}",
                other.type_name()
            ))),
        }
    }

    /// A short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "STRING",
            Value::Date(_) => "DATE",
        }
    }

    /// SQL comparison: returns `None` if either side is NULL or the types
    /// are incomparable. Ints, floats and dates compare numerically;
    /// strings compare lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            // Date/string comparison follows S3 Select's CSV behaviour where
            // dates are ISO strings: compare textually via the ISO form,
            // which orders identically to the numeric form.
            (Date(a), Str(b)) => Some(date::format_date(*a).as_str().cmp(b.as_str())),
            (Str(a), Date(b)) => Some(a.as_str().cmp(date::format_date(*b).as_str())),
            (a, b) => {
                let (x, y) = (a.as_f64().ok()?, b.as_f64().ok()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order for sorting: NULL first, then bools, then all numerics
    /// (ints/floats/dates unified, floats by IEEE total order), then strings.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) | Date(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) if class(a) == 2 && class(b) == 2 => {
                let x = a.as_f64().unwrap_or(f64::NAN);
                let y = b.as_f64().unwrap_or(f64::NAN);
                x.total_cmp(&y)
            }
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// SQL equality (NULL never equals anything).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Render in the CSV dialect used across the system (and by the
    /// simulated S3 Select service, which always returns CSV).
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
            Value::Date(d) => date::format_date(*d),
        }
    }

    /// Parse a CSV field as the given type. Empty text is NULL.
    pub fn parse_typed(text: &str, dt: DataType) -> Result<Value> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        match dt {
            DataType::Bool => match text {
                "true" | "TRUE" | "True" => Ok(Value::Bool(true)),
                "false" | "FALSE" | "False" => Ok(Value::Bool(false)),
                _ => Err(Error::Corrupt(format!("bad bool literal {text:?}"))),
            },
            DataType::Int => text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::Corrupt(format!("bad int literal {text:?}"))),
            DataType::Float => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::Corrupt(format!("bad float literal {text:?}"))),
            DataType::Str => Ok(Value::Str(text.to_string())),
            DataType::Date => date::parse_date(text)
                .map(Value::Date)
                .ok_or_else(|| Error::Corrupt(format!("bad date literal {text:?}"))),
        }
    }

    /// Cast to the requested type, following the lenient rules S3 Select's
    /// `CAST` exposes over CSV data (strings parse, numerics convert).
    pub fn cast(&self, dt: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        if self.data_type() == Some(dt) {
            return Ok(self.clone());
        }
        match (self, dt) {
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Bool) => Ok(Value::Bool(*i != 0)),
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(*b as i64)),
            (Value::Date(d), DataType::Int) => Ok(Value::Int(*d as i64)),
            (Value::Int(i), DataType::Date) => Ok(Value::Date(*i as i32)),
            (Value::Str(s), _) => Value::parse_typed(s.trim(), dt)
                .map_err(|_| Error::Eval(format!("cannot CAST {s:?} to {dt}"))),
            (v, DataType::Str) => Ok(Value::Str(v.to_csv_field())),
            (v, _) => Err(Error::Eval(format!(
                "cannot CAST {} to {dt}",
                v.type_name()
            ))),
        }
    }

    /// Rough in-memory footprint in bytes, used by the performance model to
    /// account for hash-table sizes.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Date(_) => 4,
            Value::Str(s) => s.len(),
        }
    }
}

/// Equality for use in hash tables (join keys, group keys): delegates to the
/// total order so `NaN == NaN` and `Int(1) == Float(1.0)` group together.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int/Float/Date hash through their f64 image so that values the
            // total order considers equal hash identically.
            Value::Int(_) | Value::Float(_) | Value::Date(_) => {
                2u8.hash(state);
                let f = self.as_f64().unwrap_or(f64::NAN);
                // Normalize -0.0 to 0.0 so they land in the same bucket as
                // their total_cmp class... total_cmp distinguishes them, but
                // equal ints always hash consistently which is what we need.
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Str(s) => write!(f, "{s}"),
            other => f.write_str(&other.to_csv_field()),
        }
    }
}

/// Format a float the way the engine's CSV dialect expects: shortest
/// representation that round-trips, with a trailing `.0` for integral values
/// so the type remains recognizable.
pub fn format_float(f: f64) -> String {
    if f.is_nan() {
        return "NaN".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        let s = format!("{f}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_each_type() {
        let cases = [
            (Value::Int(42), DataType::Int),
            (Value::Int(-7), DataType::Int),
            (Value::Float(3.25), DataType::Float),
            (Value::Float(-0.0001), DataType::Float),
            (Value::Str("hello world".into()), DataType::Str),
            (Value::Bool(true), DataType::Bool),
            (Value::Date(8095), DataType::Date),
            (Value::Null, DataType::Int),
        ];
        for (v, dt) in cases {
            let text = v.to_csv_field();
            let back = Value::parse_typed(&text, dt).unwrap();
            assert_eq!(v, back, "round-trip {v:?} via {text:?}");
        }
    }

    #[test]
    fn sql_cmp_nulls_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numerics() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Float(2.0).sql_eq(&Value::Int(2)), Some(true));
    }

    #[test]
    fn date_vs_string_comparison() {
        let d = Value::Date(date::parse_date("1994-01-01").unwrap());
        assert_eq!(
            d.sql_cmp(&Value::Str("1995-01-01".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("1994-01-01".into()).sql_eq(&d), Some(true));
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(-1.5),
        ];
        vals.sort_by(Value::total_cmp);
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(-1.5));
        assert_eq!(vals[2], Value::Int(5));
        assert_eq!(vals[3], Value::Str("a".into()));
    }

    #[test]
    fn hash_consistent_with_eq_for_numerics() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Str("12".into()).cast(DataType::Int).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            Value::Int(3).cast(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.9).cast(DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::Str("1994-01-01".into())
                .cast(DataType::Date)
                .unwrap(),
            Value::Date(date::ymd(1994, 1, 1))
        );
        assert!(Value::Str("xyz".into()).cast(DataType::Int).is_err());
        assert_eq!(Value::Null.cast(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(-2.0), "-2.0");
        assert_eq!(format_float(0.25), "0.25");
        assert_eq!(format_float(1234.5678), "1234.5678");
        // Round-trips.
        for f in [0.1, -1e-9, 123456.789, 2.0_f64.powi(53)] {
            let s = format_float(f);
            assert_eq!(s.parse::<f64>().unwrap(), f);
        }
    }

    #[test]
    fn as_bool_rejects_non_bools() {
        assert!(Value::Int(1).as_bool().is_err());
        assert_eq!(Value::Null.as_bool().unwrap(), None);
        assert_eq!(Value::Bool(true).as_bool().unwrap(), Some(true));
    }
}
