//! Row containers.

use crate::schema::Schema;
use crate::value::Value;

/// A single tuple: one [`Value`] per schema column.
///
/// Rows are plain vectors; PushdownDB (like the paper's Python testbed) is a
/// row-oriented engine and passes batches of rows between operators.
#[derive(Debug, Clone, PartialEq)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Keep only the given column indices, in order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two rows (hash-join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Approximate in-memory footprint, for the performance model.
    pub fn approx_size(&self) -> usize {
        self.0.iter().map(Value::approx_size).sum::<usize>() + 8
    }

    /// Render the row as one CSV line (no trailing newline). Fields that
    /// contain separators or quotes are quoted.
    pub fn to_csv_line(&self) -> String {
        let mut out = String::new();
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let field = v.to_csv_field();
            if field.contains(',')
                || field.contains('"')
                || field.contains('\n')
                || field.contains('\r')
            {
                out.push('"');
                out.push_str(&field.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(&field);
            }
        }
        out
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// A batch of rows sharing a schema. Operators exchange these to amortize
/// per-row overheads (paper §III: "passes batches of tuples from producer
/// to consumer").
///
/// Batches are the unit of the streaming execution path: scans decode
/// partitions into fixed-capacity batches and push them through the
/// operators, so peak resident rows stay `O(workers × batch)` instead of
/// `O(table)`. A batch never splits a row — each [`Row`] lives in exactly
/// one batch.
#[derive(Debug, Clone)]
pub struct RowBatch {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl RowBatch {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        RowBatch { schema, rows }
    }

    pub fn empty(schema: Schema) -> Self {
        RowBatch {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn approx_size(&self) -> usize {
        self.rows.iter().map(Row::approx_size).sum()
    }

    /// Split `rows` into batches of at most `capacity` rows (the last
    /// batch holds the remainder). Inverse of [`RowBatch::concat`].
    pub fn chunks(schema: &Schema, rows: Vec<Row>, capacity: usize) -> Vec<RowBatch> {
        let capacity = capacity.max(1);
        if rows.len() <= capacity {
            if rows.is_empty() {
                return Vec::new();
            }
            return vec![RowBatch::new(schema.clone(), rows)];
        }
        let mut out = Vec::with_capacity(rows.len().div_ceil(capacity));
        let mut rows = rows.into_iter();
        loop {
            let chunk: Vec<Row> = rows.by_ref().take(capacity).collect();
            if chunk.is_empty() {
                break;
            }
            out.push(RowBatch::new(schema.clone(), chunk));
        }
        out
    }

    /// Concatenate batches back into one row vector, in order.
    pub fn concat(batches: impl IntoIterator<Item = RowBatch>) -> Vec<Row> {
        let mut rows = Vec::new();
        for b in batches {
            rows.extend(b.rows);
        }
        rows
    }
}

/// Accumulates rows and hands out full, fixed-capacity [`RowBatch`]es.
///
/// Producers `push` rows one at a time; every `capacity`-th push returns
/// a full batch to forward downstream, and [`BatchBuilder::finish`]
/// flushes the partial tail (if any).
#[derive(Debug)]
pub struct BatchBuilder {
    schema: Schema,
    capacity: usize,
    rows: Vec<Row>,
}

impl BatchBuilder {
    pub fn new(schema: Schema, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BatchBuilder {
            schema,
            capacity,
            rows: Vec::with_capacity(capacity),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add a row; returns a full batch once `capacity` rows accumulate.
    pub fn push(&mut self, row: Row) -> Option<RowBatch> {
        self.rows.push(row);
        if self.rows.len() >= self.capacity {
            let full = std::mem::replace(&mut self.rows, Vec::with_capacity(self.capacity));
            Some(RowBatch::new(self.schema.clone(), full))
        } else {
            None
        }
    }

    /// Flush the remaining partial batch, if any rows are buffered.
    pub fn finish(self) -> Option<RowBatch> {
        if self.rows.is_empty() {
            None
        } else {
            Some(RowBatch::new(self.schema, self.rows))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn project_and_concat() {
        let r = Row::new(vec![
            Value::Int(1),
            Value::Str("x".into()),
            Value::Float(2.5),
        ]);
        assert_eq!(
            r.project(&[2, 0]).values(),
            &[Value::Float(2.5), Value::Int(1)]
        );
        let s = Row::new(vec![Value::Bool(true)]);
        assert_eq!(r.concat(&s).len(), 4);
    }

    #[test]
    fn csv_line_quotes_when_needed() {
        let r = Row::new(vec![
            Value::Str("a,b".into()),
            Value::Str("say \"hi\"".into()),
            Value::Int(7),
        ]);
        assert_eq!(r.to_csv_line(), "\"a,b\",\"say \"\"hi\"\"\",7");
    }

    #[test]
    fn csv_line_plain() {
        let r = Row::new(vec![Value::Int(1), Value::Null, Value::Float(0.5)]);
        assert_eq!(r.to_csv_line(), "1,,0.5");
    }

    #[test]
    fn batch_sizes() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let b = RowBatch::new(
            schema.clone(),
            vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])],
        );
        assert_eq!(b.len(), 2);
        assert!(b.approx_size() > 0);
        assert!(RowBatch::empty(schema).is_empty());
    }
}
