//! Self-cleaning temporary directories for tests and benches.
//!
//! The build environment has no crates.io access, so there is no
//! `tempfile` crate; this is the minimal subset the persistent-cache
//! suites need. A [`TempDir`] creates a uniquely named directory under
//! the system temp root and removes it — recursively — on drop, so a
//! test that panics mid-way still leaves nothing behind. Uniqueness
//! comes from the process id plus a process-wide counter, which also
//! keeps concurrently running tests in one binary from colliding.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_TMP: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under [`std::env::temp_dir`] that is
/// removed recursively when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `…/pushdowndb-<tag>-<pid>-<n>`. Panics if the directory
    /// cannot be created — tests have no useful way to continue without
    /// scratch space.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT_TMP.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pushdowndb-{tag}-{pid}-{n}",
            pid = std::process::id()
        ));
        // A stale directory with the same name can only be left by a
        // previous run of the same pid+counter (e.g. a kill -9); clear it
        // so the caller always starts empty.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("create temp dir {}: {e}", path.display()));
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dirs_are_unique_and_removed_on_drop() {
        let a = TempDir::new("unit");
        let b = TempDir::new("unit");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.path().join("x"), b"hello").unwrap();
        std::fs::create_dir(a.path().join("sub")).unwrap();
        std::fs::write(a.path().join("sub/y"), b"world").unwrap();
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        drop(a);
        drop(b);
        assert!(
            !pa.exists(),
            "temp dir left stray files at {}",
            pa.display()
        );
        assert!(!pb.exists());
    }
}
