//! Crate-level property tests for the foundation types and the
//! performance model.

#![cfg(test)]

use crate::date;
use crate::perf::{PerfModel, PhaseStats};
use crate::pricing::{Pricing, Usage};
use crate::row::{BatchBuilder, Row, RowBatch};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use proptest::prelude::*;

proptest! {
    /// Civil↔days conversions are mutually inverse over ±8000 years.
    #[test]
    fn date_round_trips(days in -3_000_000i32..3_000_000) {
        let c = date::civil_from_days(days);
        prop_assert_eq!(date::days_from_civil(c), days);
        prop_assert!((1..=12).contains(&c.month));
        prop_assert!(c.day >= 1 && c.day <= date::days_in_month(c.year, c.month));
    }

    /// Text formatting round-trips for non-negative years.
    #[test]
    fn date_text_round_trips(days in 0i32..2_000_000) {
        let text = date::format_date(days);
        prop_assert_eq!(date::parse_date(&text), Some(days));
    }

    /// `add_months` keeps the day clamped and is monotone in months.
    #[test]
    fn add_months_is_monotone(days in 0i32..60_000, m1 in -48i32..48, m2 in -48i32..48) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(date::add_months(days, lo) <= date::add_months(days, hi));
    }

    /// Phase time is monotone in every extensive input: more bytes, more
    /// requests, more CPU, or a heavier expression can never make a phase
    /// faster.
    #[test]
    fn phase_time_is_monotone(
        base_bytes in 0u64..10_000_000_000,
        extra in 0u64..10_000_000_000,
        requests in 0u64..100_000,
        terms in 0u32..500,
    ) {
        let m = PerfModel::default();
        let mk = |scanned, req, t| PhaseStats {
            requests: req,
            s3_scanned_bytes: scanned,
            select_returned_bytes: base_bytes / 10,
            plain_bytes: 0,
            server_cpu_units: 1000,
            expr_terms: t,
            ..Default::default()
        };
        let t0 = m.phase_seconds(&mk(base_bytes, requests, terms));
        prop_assert!(m.phase_seconds(&mk(base_bytes + extra, requests, terms)) >= t0);
        prop_assert!(m.phase_seconds(&mk(base_bytes, requests + 1, terms)) >= t0);
        prop_assert!(m.phase_seconds(&mk(base_bytes, requests, terms + 1)) >= t0);
    }

    /// Scaling by `f` then measuring equals at least `f/2` × the original
    /// byte-bound time for byte-dominated phases (linearity sanity; exact
    /// equality is broken only by the constant startup/latency terms).
    #[test]
    fn scaling_grows_time(bytes in 1_000_000u64..1_000_000_000, f in 2u32..100) {
        let m = PerfModel::default();
        let s = PhaseStats { plain_bytes: bytes, ..Default::default() };
        let t1 = m.phase_seconds(&s) - m.params.phase_startup;
        let t2 = m.phase_seconds(&s.scaled(f as f64)) - m.params.phase_startup;
        prop_assert!((t2 / t1 - f as f64).abs() < 1e-6);
    }

    /// Costs are non-negative, additive, and linear in usage.
    #[test]
    fn cost_is_linear(
        requests in 0u64..1_000_000,
        scanned in 0u64..100_000_000_000,
        returned in 0u64..10_000_000_000,
        runtime in 0f64..10_000.0,
    ) {
        let p = Pricing::us_east();
        let u = Usage {
            requests,
            select_scanned_bytes: scanned,
            select_returned_bytes: returned,
            plain_bytes: 0,
        };
        let c1 = p.cost(&u, runtime);
        prop_assert!(c1.total() >= 0.0);
        let c2 = p.cost(&(u + u), runtime * 2.0);
        prop_assert!((c2.total() - 2.0 * c1.total()).abs() < 1e-9 * (1.0 + c1.total()));
    }

    /// The SQL total order is antisymmetric and total over mixed values.
    #[test]
    fn total_cmp_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            // Hash consistency for equal values.
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// total_cmp is transitive (spot-checked on triples).
    #[test]
    fn total_cmp_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert!(v[0].total_cmp(&v[1]) != Greater);
        prop_assert!(v[1].total_cmp(&v[2]) != Greater);
        prop_assert!(v[0].total_cmp(&v[2]) != Greater);
    }
}

fn batch_schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)])
}

fn arb_batch_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (any::<i64>(), "[a-z]{0,5}")
            .prop_map(|(k, s)| Row::new(vec![Value::Int(k), Value::Str(s)])),
        0..400,
    )
}

proptest! {
    /// Chunking never splits a row, never exceeds the capacity, fills
    /// every batch except possibly the last, and concatenating the
    /// batches reproduces the unbatched input exactly.
    #[test]
    fn row_batch_chunks_round_trip(rows in arb_batch_rows(), cap in 1usize..64) {
        let schema = batch_schema();
        let batches = RowBatch::chunks(&schema, rows.clone(), cap);
        for (i, b) in batches.iter().enumerate() {
            prop_assert!(!b.is_empty(), "batch {i} empty");
            prop_assert!(b.len() <= cap, "batch {i} overflows capacity");
            if i + 1 < batches.len() {
                prop_assert_eq!(b.len(), cap, "only the last batch may be partial");
            }
            prop_assert!(b.rows.iter().all(|r| r.len() == schema.len()));
        }
        prop_assert_eq!(RowBatch::concat(batches), rows);
    }

    /// The incremental builder and one-shot chunking agree batch-for-
    /// batch: pushing row-by-row is just a streamed `chunks`.
    #[test]
    fn batch_builder_equals_chunks(rows in arb_batch_rows(), cap in 1usize..64) {
        let schema = batch_schema();
        let mut built = Vec::new();
        let mut builder = BatchBuilder::new(schema.clone(), cap);
        prop_assert_eq!(builder.capacity(), cap);
        for r in rows.clone() {
            if let Some(full) = builder.push(r) {
                prop_assert_eq!(full.len(), cap, "emitted batches are exactly full");
                built.push(full);
            }
        }
        if let Some(tail) = builder.finish() {
            prop_assert!(!tail.is_empty() && tail.len() <= cap);
            built.push(tail);
        }
        let direct = RowBatch::chunks(&schema, rows, cap);
        prop_assert_eq!(built.len(), direct.len());
        for (a, b) in built.iter().zip(&direct) {
            prop_assert_eq!(&a.rows, &b.rows);
        }
    }

    /// A degenerate capacity of 1 yields one batch per row, in order.
    #[test]
    fn capacity_one_is_row_per_batch(rows in arb_batch_rows()) {
        let schema = batch_schema();
        let batches = RowBatch::chunks(&schema, rows.clone(), 1);
        prop_assert_eq!(batches.len(), rows.len());
        for (b, r) in batches.iter().zip(&rows) {
            prop_assert_eq!(b.rows.as_slice(), std::slice::from_ref(r));
        }
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::Str),
        any::<i32>().prop_map(Value::Date),
    ]
}
