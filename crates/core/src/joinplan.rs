//! Lowering multi-table [`QuerySpec`]s into physical-plan candidates.
//!
//! A joined query (`FROM a JOIN b ON ... [JOIN c ON ...]`) lowers to a
//! left-deep tree of hash joins over per-table scan leaves, topped by
//! the residual filter, projection/aggregation, sort and limit
//! operators. The planner weighs the **join strategy and each scan's
//! pushdown strategy jointly**: every candidate fixes one scan-mode
//! combination (plain GET vs S3 Select per table) and whether the probe
//! scans carry a Bloom runtime filter (§V-A2), and
//! [`crate::cost::predict_plan`] prices the whole tree.
//!
//! Column references are resolved *across* the joined schemas: a name
//! must belong to exactly one table (ambiguity is a bind error), which
//! is why the parser can drop `alias.` qualifiers.

use crate::catalog::Table;
use crate::context::QueryContext;
use crate::plan::{PlanNode, PlanOp};
use pushdown_common::{DataType, Error, Field, Result, Schema};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::QuerySpec;
use pushdown_sql::bind::Binder;
use pushdown_sql::{Expr, SelectItem};
use std::collections::BTreeSet;

/// False-positive rate the Bloom-join candidates request (the paper's
/// default operating point; Fig 4 sweeps it).
const BLOOM_FPR: f64 = 0.01;

/// One join edge with its keys resolved: `build_key` lives in the
/// accumulated left side, `probe_key` in the newly joined table.
struct JoinEdge {
    build_key: String,
    probe_key: String,
    /// Both keys are integers — the Bloom filter's §V-A2 requirement.
    int_keys: bool,
}

/// How one scan leaf of a join candidate fetches its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanMode {
    /// Plain remote GETs, filtered locally (remote-full).
    Local,
    /// Predicate + projection pushed into S3 Select.
    Pushed,
    /// Read through the local segment cache (hybrid tier).
    Cached,
}

/// Lower a joined query to its candidate plans, named by strategy:
/// `"baseline"` (all plain loads), `"filtered"` (all scans pushed),
/// `"bloom"` (pushed + Bloom probe filters, when keys are integers),
/// and — for two-table joins — the mixed `"build-push"`/`"probe-push"`
/// combinations. When the store carries a segment cache, the lineup
/// grows `"cached"` (every scan through the cache) and — for two-table
/// joins — `"cached-build"` (build side cached, probe side pushed down,
/// with a Bloom runtime filter when the keys are integers), so the
/// planner weighs cached-local vs pushdown vs remote **per scan**,
/// jointly with the join strategy. The `baseline` and `filtered`
/// candidates always exist.
pub(crate) fn lower_join_candidates(
    ctx: &QueryContext,
    primary: &Table,
    spec: &QuerySpec,
) -> Result<Vec<(&'static str, PlanNode)>> {
    let tables = resolve_tables(ctx, primary, spec)?;
    let edges = resolve_join_edges(&tables, spec)?;
    let (per_table, residual) = split_predicates(&tables, spec)?;
    let needed = needed_columns(&tables, spec, &edges, &residual)?;

    let n = tables.len();
    let int_keys = edges.iter().any(|e| e.int_keys);
    let mut combos: Vec<(&'static str, Vec<ScanMode>, bool)> = Vec::new();
    // Cached combos lead the lineup: a cold fill prices exactly like the
    // remote load it replaces, and the argmin keeps the earliest
    // minimum, so ties break toward warming the cache.
    if ctx.store.cache().is_some() {
        combos.push(("cached", vec![ScanMode::Cached; n], false));
        if n == 2 {
            // The hybrid mixed plan: hot build side from the cache, cold
            // probe side pushed down (with the Bloom runtime filter when
            // the join keys admit one).
            combos.push((
                "cached-build",
                vec![ScanMode::Cached, ScanMode::Pushed],
                int_keys,
            ));
        }
    }
    combos.push(("baseline", vec![ScanMode::Local; n], false));
    combos.push(("filtered", vec![ScanMode::Pushed; n], false));
    if n == 2 {
        combos.push(("build-push", vec![ScanMode::Pushed, ScanMode::Local], false));
        combos.push(("probe-push", vec![ScanMode::Local, ScanMode::Pushed], false));
    }
    if int_keys {
        combos.push(("bloom", vec![ScanMode::Pushed; n], true));
    }

    let mut out = Vec::new();
    for (name, modes, bloom) in combos {
        let plan = build_plan(
            &tables, &edges, &per_table, &residual, &needed, &modes, bloom, spec,
        )?;
        out.push((name, plan));
    }
    Ok(out)
}

fn resolve_tables(ctx: &QueryContext, primary: &Table, spec: &QuerySpec) -> Result<Vec<Table>> {
    let mut tables = vec![primary.clone()];
    for j in &spec.joins {
        // The primary FROM name is satisfied by the passed table (the
        // planner's signature convention); join tables may also name it.
        if j.table.eq_ignore_ascii_case(&primary.name) {
            return Err(Error::Bind(format!(
                "self-joins are not supported (table `{}` appears twice)",
                j.table
            )));
        }
        let t = ctx.catalog.resolve(&j.table).ok_or_else(|| {
            Error::Bind(format!(
                "unknown table `{}` in JOIN (catalog has: {})",
                j.table,
                ctx.catalog.names().join(", ")
            ))
        })?;
        tables.push(t);
    }
    Ok(tables)
}

/// Index of the unique table whose schema holds `name`.
fn table_of_column(tables: &[Table], name: &str) -> Result<usize> {
    let hits: Vec<usize> = tables
        .iter()
        .enumerate()
        .filter(|(_, t)| t.schema.index_of(name).is_some())
        .map(|(i, _)| i)
        .collect();
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => Err(Error::Bind(format!(
            "unknown column `{name}` (tables: {})",
            tables
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))),
        many => Err(Error::Bind(format!(
            "ambiguous column `{name}` (appears in {})",
            many.iter()
                .map(|&i| tables[i].name.as_str())
                .collect::<Vec<_>>()
                .join(" and ")
        ))),
    }
}

fn resolve_join_edges(tables: &[Table], spec: &QuerySpec) -> Result<Vec<JoinEdge>> {
    let mut edges = Vec::new();
    for (i, j) in spec.joins.iter().enumerate() {
        let probe_idx = i + 1;
        let lt = table_of_column(tables, &j.left_col)?;
        let rt = table_of_column(tables, &j.right_col)?;
        let (build_col, build_t, probe_col) = if rt == probe_idx && lt < probe_idx {
            (&j.left_col, lt, &j.right_col)
        } else if lt == probe_idx && rt < probe_idx {
            (&j.right_col, rt, &j.left_col)
        } else {
            return Err(Error::Bind(format!(
                "JOIN `{}` ON {} = {} must compare a column of `{}` with a column \
                 of the tables joined before it",
                j.table, j.left_col, j.right_col, j.table
            )));
        };
        let dtype = |t: &Table, c: &str| t.schema.index_of(c).map(|i| t.schema.dtype_of(i));
        let int_keys = dtype(&tables[build_t], build_col) == Some(DataType::Int)
            && dtype(&tables[probe_idx], probe_col) == Some(DataType::Int);
        edges.push(JoinEdge {
            build_key: build_col.clone(),
            probe_key: probe_col.clone(),
            int_keys,
        });
    }
    Ok(edges)
}

fn flatten_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            left,
            op: pushdown_sql::ast::BinOp::And,
            right,
        } => {
            flatten_conjuncts(left, out);
            flatten_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Split the WHERE clause into per-table pushable predicates and the
/// residual (conjuncts spanning tables, applied locally after the
/// joins).
#[allow(clippy::type_complexity)]
fn split_predicates(
    tables: &[Table],
    spec: &QuerySpec,
) -> Result<(Vec<Option<Expr>>, Option<Expr>)> {
    let mut per_table: Vec<Vec<Expr>> = vec![Vec::new(); tables.len()];
    let mut residual: Vec<Expr> = Vec::new();
    if let Some(w) = &spec.select.where_clause {
        let mut conjuncts = Vec::new();
        flatten_conjuncts(w, &mut conjuncts);
        for c in conjuncts {
            let mut cols = Vec::new();
            c.referenced_columns(&mut cols);
            if cols.is_empty() {
                residual.push(c);
                continue;
            }
            let owners: Vec<usize> = cols
                .iter()
                .map(|n| table_of_column(tables, n))
                .collect::<Result<_>>()?;
            if owners.iter().all(|&t| t == owners[0]) {
                per_table[owners[0]].push(c);
            } else {
                residual.push(c);
            }
        }
    }
    Ok((
        per_table.into_iter().map(Expr::conjunction).collect(),
        Expr::conjunction(residual),
    ))
}

fn add_column(tables: &[Table], needed: &mut [BTreeSet<usize>], name: &str) -> Result<()> {
    let t = table_of_column(tables, name)?;
    let idx = tables[t].schema.index_of(name).expect("resolved above");
    needed[t].insert(idx);
    Ok(())
}

/// Columns each table must deliver downstream (select items, group keys,
/// aggregate inputs, the residual predicate, join keys). Pushed-down
/// per-table predicates evaluate storage-side and need no projection.
fn needed_columns(
    tables: &[Table],
    spec: &QuerySpec,
    edges: &[JoinEdge],
    residual: &Option<Expr>,
) -> Result<Vec<Vec<String>>> {
    let mut needed: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); tables.len()];
    let wildcard = spec
        .select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Wildcard));
    if wildcard {
        for (t, table) in tables.iter().enumerate() {
            needed[t].extend(0..table.schema.len());
        }
    }
    let mut refs: Vec<String> = Vec::new();
    for item in &spec.select.items {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::Expr { expr, .. } => expr.referenced_columns(&mut refs),
            SelectItem::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(&mut refs);
                }
            }
        }
    }
    refs.extend(spec.group_by.iter().cloned());
    if let Some(r) = residual {
        r.referenced_columns(&mut refs);
    }
    for e in edges {
        refs.push(e.build_key.clone());
        refs.push(e.probe_key.clone());
    }
    for name in &refs {
        add_column(tables, &mut needed, name)?;
    }
    Ok(needed
        .into_iter()
        .enumerate()
        .map(|(t, idx)| {
            idx.into_iter()
                .map(|i| tables[t].schema.field(i).name.clone())
                .collect()
        })
        .collect())
}

fn scan_node(
    table: &Table,
    predicate: Option<Expr>,
    needed: &[String],
    mode: ScanMode,
) -> PlanNode {
    match mode {
        ScanMode::Pushed => {
            let indices: Vec<usize> = needed
                .iter()
                .map(|c| table.schema.index_of(c).expect("needed column resolved"))
                .collect();
            PlanNode::new(
                PlanOp::PushdownScan {
                    table: table.clone(),
                    predicate,
                    projection: Some(needed.to_vec()),
                },
                Vec::new(),
                table.schema.project(&indices),
            )
        }
        ScanMode::Local => PlanNode::new(
            PlanOp::LocalScan {
                table: table.clone(),
                predicate,
            },
            Vec::new(),
            table.schema.clone(),
        ),
        ScanMode::Cached => PlanNode::new(
            PlanOp::CachedScan {
                table: table.clone(),
                predicate,
            },
            Vec::new(),
            table.schema.clone(),
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_plan(
    tables: &[Table],
    edges: &[JoinEdge],
    per_table: &[Option<Expr>],
    residual: &Option<Expr>,
    needed: &[Vec<String>],
    modes: &[ScanMode],
    bloom: bool,
    spec: &QuerySpec,
) -> Result<PlanNode> {
    let mut node = scan_node(&tables[0], per_table[0].clone(), &needed[0], modes[0]);
    for (i, edge) in edges.iter().enumerate() {
        let t = i + 1;
        let probe = scan_node(&tables[t], per_table[t].clone(), &needed[t], modes[t]);
        let schema = node.schema.join(&probe.schema);
        let op = if bloom && edge.int_keys && modes[t] == ScanMode::Pushed {
            PlanOp::BloomJoin {
                build_key: edge.build_key.clone(),
                probe_key: edge.probe_key.clone(),
                fpr: BLOOM_FPR,
            }
        } else {
            PlanOp::HashJoin {
                build_key: edge.build_key.clone(),
                probe_key: edge.probe_key.clone(),
            }
        };
        node = PlanNode::new(op, vec![node, probe], schema);
    }
    if let Some(r) = residual {
        let schema = node.schema.clone();
        node = PlanNode::new(
            PlanOp::LocalFilter {
                predicate: r.clone(),
            },
            vec![node],
            schema,
        );
    }
    select_stack(node, spec)
}

/// Default output name for aggregate `k`: `sum_o_totalprice` style for
/// plain-column arguments (matching the single-table group-by naming),
/// positional otherwise.
fn agg_name(func: &AggFunc, arg: &Option<Expr>, k: usize) -> String {
    match arg {
        Some(Expr::Column(c)) => format!("{}_{}", func.name().to_lowercase(), c.to_lowercase()),
        _ => format!("_agg{}", k + 1),
    }
}

fn agg_dtype(func: &AggFunc, arg_dtype: Option<DataType>) -> DataType {
    match func {
        AggFunc::Count => DataType::Int,
        AggFunc::Avg => DataType::Float,
        _ => arg_dtype.unwrap_or(DataType::Float),
    }
}

/// Stack projection / aggregation / sort / limit over the joined (and
/// residual-filtered) input.
fn select_stack(mut node: PlanNode, spec: &QuerySpec) -> Result<PlanNode> {
    let wildcard = spec
        .select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Wildcard));
    if !spec.group_by.is_empty() {
        node = group_by_stack(node, spec)?;
    } else if spec.select.is_aggregate() {
        node = aggregate_stack(node, spec)?;
    } else if !wildcard {
        // Plain column projection, names from aliases.
        let binder = Binder::new(&node.schema);
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &spec.select.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(Error::Bind(format!(
                    "select items over a join must be plain columns or aggregates, \
                     found `{item}`"
                )));
            };
            let Expr::Column(name) = expr else {
                return Err(Error::Bind(format!(
                    "this planner projects plain columns only, found `{expr}`"
                )));
            };
            let bound = binder.bind_expr(expr)?;
            let out_name = alias.clone().unwrap_or_else(|| name.clone());
            fields.push(Field::new(out_name, bound.infer_type()));
            exprs.push(expr.clone());
        }
        let schema = Schema::new(fields);
        node = PlanNode::new(PlanOp::Project { exprs }, vec![node], schema);
    }
    // ORDER BY resolves against the stacked output schema — aggregate
    // aliases included, unknown keys are bind errors.
    if !spec.order_by.is_empty() {
        let mut keys = Vec::new();
        for o in &spec.order_by {
            let idx = node.schema.index_of(&o.column).ok_or_else(|| {
                Error::Bind(format!(
                    "unknown ORDER BY key `{}` (output columns: {})",
                    o.column,
                    node.schema.names().join(", ")
                ))
            })?;
            keys.push((idx, o.asc));
        }
        let schema = node.schema.clone();
        node = PlanNode::new(
            PlanOp::Sort {
                keys,
                limit: spec.select.limit.map(|l| l as usize),
            },
            vec![node],
            schema,
        );
    } else if let Some(l) = spec.select.limit {
        let schema = node.schema.clone();
        node = PlanNode::new(PlanOp::Limit { n: l as usize }, vec![node], schema);
    }
    Ok(node)
}

fn group_by_stack(node: PlanNode, spec: &QuerySpec) -> Result<PlanNode> {
    let binder = Binder::new(&node.schema);
    // Validate scalar items and collect aggregates in select order.
    let mut aggs_src: Vec<(AggFunc, Option<Expr>, Option<String>)> = Vec::new();
    for item in &spec.select.items {
        match item {
            SelectItem::Expr {
                expr: Expr::Column(name),
                ..
            } => {
                if !spec.group_by.iter().any(|g| g.eq_ignore_ascii_case(name)) {
                    return Err(Error::Bind(format!(
                        "column `{name}` must appear in GROUP BY"
                    )));
                }
            }
            SelectItem::Agg { func, arg, alias } => match arg {
                Some(e) => aggs_src.push((*func, Some(e.clone()), alias.clone())),
                None => aggs_src.push((AggFunc::Count, None, alias.clone())),
            },
            other => {
                return Err(Error::Bind(format!(
                    "GROUP BY select items must be grouping columns or aggregates, \
                     found `{other}`"
                )))
            }
        }
    }
    // Project: group keys first, then each aggregate's input expression
    // (arbitrary expressions over the joined schema, e.g. the Q3 revenue
    // term `l_extendedprice * (1 - l_discount)`).
    let group_width = spec.group_by.len();
    let mut exprs: Vec<Expr> = Vec::new();
    let mut fields: Vec<Field> = Vec::new();
    for g in &spec.group_by {
        let bound = binder.bind_expr(&Expr::col(g.clone()))?;
        fields.push(Field::new(g.clone(), bound.infer_type()));
        exprs.push(Expr::col(g.clone()));
    }
    let mut aggs: Vec<(AggFunc, Option<usize>)> = Vec::new();
    let mut out_fields: Vec<Field> = fields.clone();
    for (k, (func, arg, alias)) in aggs_src.iter().enumerate() {
        let arg_dtype = match arg {
            Some(e) => {
                let bound = binder.bind_expr(e)?;
                aggs.push((*func, Some(exprs.len())));
                fields.push(Field::new(format!("_a{k}"), bound.infer_type()));
                exprs.push(e.clone());
                Some(bound.infer_type())
            }
            None => {
                aggs.push((*func, None));
                None
            }
        };
        out_fields.push(Field::new(
            alias.clone().unwrap_or_else(|| agg_name(func, arg, k)),
            agg_dtype(func, arg_dtype),
        ));
    }
    let project = PlanNode::new(PlanOp::Project { exprs }, vec![node], Schema::new(fields));
    Ok(PlanNode::new(
        PlanOp::GroupBy { group_width, aggs },
        vec![project],
        Schema::new(out_fields),
    ))
}

fn aggregate_stack(node: PlanNode, spec: &QuerySpec) -> Result<PlanNode> {
    let binder = Binder::new(&node.schema);
    let mut exprs: Vec<Expr> = Vec::new();
    let mut fields: Vec<Field> = Vec::new();
    let mut aggs: Vec<(AggFunc, Option<usize>)> = Vec::new();
    let mut out_fields: Vec<Field> = Vec::new();
    for (k, item) in spec.select.items.iter().enumerate() {
        let SelectItem::Agg { func, arg, alias } = item else {
            return Err(Error::Bind(format!(
                "cannot mix scalar item `{item}` with aggregates over a join"
            )));
        };
        let arg_dtype = match arg {
            Some(e) => {
                let bound = binder.bind_expr(e)?;
                aggs.push((*func, Some(exprs.len())));
                fields.push(Field::new(format!("_a{k}"), bound.infer_type()));
                exprs.push(e.clone());
                Some(bound.infer_type())
            }
            None => {
                aggs.push((*func, None));
                None
            }
        };
        out_fields.push(Field::new(
            alias.clone().unwrap_or_else(|| format!("_{}", k + 1)),
            agg_dtype(func, arg_dtype),
        ));
    }
    let project = PlanNode::new(PlanOp::Project { exprs }, vec![node], Schema::new(fields));
    Ok(PlanNode::new(
        PlanOp::Aggregate { aggs },
        vec![project],
        Schema::new(out_fields),
    ))
}
