//! # pushdown-core
//!
//! The PushdownDB engine (paper §III): a bare-bones, row-oriented
//! analytics engine whose one design question is *what to push into the
//! storage service*. It executes real queries against the simulated S3 +
//! S3 Select substrate and accounts every byte, request and operator so
//! the paper's runtime/cost figures can be regenerated deterministically.
//!
//! Layers, bottom-up:
//!
//! * [`catalog`] — partitioned tables in the object store and loaders;
//! * [`scan`] — the data paths: plain GET scans, S3 Select scans (with
//!   partition-parallelism, aggregate merging, early-stop LIMIT), and
//!   cache-aware scans reading through the store's segment cache;
//! * [`ops`] — compute-node operators (filter/project/hash join/hash
//!   aggregation/heap top-K) with CPU metering;
//! * [`index`] — the §IV-A byte-range index tables;
//! * [`algos`] — the paper's algorithms (filter/join/group-by/top-K in
//!   all their variants);
//! * [`plan`] — the physical-plan IR: scan leaves (pushdown, local, and
//!   `CachedScan` through the hybrid caching tier), joins, group-by,
//!   sort/top-K, project/limit as one operator DAG, driven by a single
//!   executor, with the [`algos`] families participating as leaf
//!   operators;
//! * [`cost`] — the analytical cost estimator behind
//!   [`planner::Strategy::Adaptive`]: predicts every candidate
//!   algorithm's footprint from catalog statistics — and prices whole
//!   plan DAGs operator-by-operator — using the same models that score
//!   measurements;
//! * [`metrics`] / [`output`] — phase-structured accounting that the
//!   analytical performance model turns into seconds and dollars;
//! * [`context`] — wiring (store, Select engine, models, the
//!   [`catalog::Catalog`] that resolves join tables by name).

pub mod algos;
pub mod catalog;
pub mod cluster;
pub mod context;
pub mod cost;
pub mod index;
mod joinplan;
pub mod metrics;
pub mod ops;
pub mod output;
pub mod plan;
pub mod planner;
pub mod scan;

pub use catalog::{
    probe_stats, upload_columnar_table, upload_csv_table, Catalog, ColumnStats, Table, TableStats,
};
pub use cluster::{Cluster, NodeSnapshot};
pub use context::QueryContext;
pub use cost::{Estimator, PlanEstimate, PlanPrediction};
pub use index::{build_index, IndexTable};
pub use metrics::QueryMetrics;
pub use output::QueryOutput;
pub use plan::{AlgoOp, OpReport, PlanNode, PlanOp};
pub use planner::{execute_sql, execute_sql_verbose, Explain, Strategy};
