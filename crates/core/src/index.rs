//! Index tables (paper §IV-A).
//!
//! Classic hash/B-tree indexes need multiple dependent round trips per
//! lookup — poison in a high-latency object store. The paper's design is
//! an **index table**: a CSV object per data partition with schema
//!
//! ```text
//! |value|first_byte_offset|last_byte_offset|
//! ```
//!
//! Lookups run in two phases:
//! 1. push the predicate on `value` into S3 Select against the index
//!    table(s), retrieving qualifying byte ranges;
//! 2. issue one ranged GET **per selected row** against the data
//!    partition (S3 allows only a single range per request — paper §X
//!    Suggestion 1), then decode each returned record.

use crate::catalog::Table;
use crate::context::QueryContext;
use pushdown_common::{DataType, Error, Result, Row, Schema};
use pushdown_format::csv::{CsvReader, CsvWriter};
use pushdown_select::InputFormat;

/// An index over one column of a CSV table: one index object per data
/// partition, aligned by position.
#[derive(Debug, Clone)]
pub struct IndexTable {
    /// The indexed data table.
    pub data: Table,
    /// The indexed column name.
    pub column: String,
    /// Catalog entry for the index objects themselves.
    pub index: Table,
}

/// Schema of every index object.
pub fn index_schema(value_type: DataType) -> Schema {
    Schema::from_pairs(&[
        ("value", value_type),
        ("first_byte_offset", DataType::Int),
        ("last_byte_offset", DataType::Int),
    ])
}

/// Build an index table for `column` of a CSV table. Index construction is
/// an offline, unmetered operation (like data loading).
pub fn build_index(ctx: &QueryContext, table: &Table, column: &str) -> Result<IndexTable> {
    if table.format != InputFormat::Csv {
        return Err(Error::Other(
            "index tables are defined over CSV data tables".into(),
        ));
    }
    let col = table.schema.resolve(column)?;
    let value_type = table.schema.dtype_of(col);
    let ischema = index_schema(value_type);
    let index_prefix = format!("{}__index__{}", table.name, column.to_lowercase());

    for (p, key) in table.partitions(&ctx.store).iter().enumerate() {
        let data = ctx.store.raw_object(&table.bucket, key)?;
        let mut w = CsvWriter::with_header(&ischema);
        for rec in CsvReader::with_header(&data, table.schema.clone()) {
            let rec = rec?;
            w.write_row(&Row::new(vec![
                rec.row[col].clone(),
                pushdown_common::Value::Int(rec.first_byte as i64),
                pushdown_common::Value::Int(rec.last_byte as i64),
            ]));
        }
        ctx.store.put_object(
            &table.bucket,
            &format!("{index_prefix}/part-{p:05}.csv"),
            w.finish(),
        );
    }

    Ok(IndexTable {
        data: table.clone(),
        column: column.to_string(),
        index: Table {
            name: index_prefix.clone(),
            bucket: table.bucket.clone(),
            prefix: index_prefix,
            schema: ischema,
            format: InputFormat::Csv,
            row_count: table.row_count,
            stats: None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::Value;
    use pushdown_s3::S3Store;

    fn setup() -> (QueryContext, Table) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
        let rows: Vec<Row> = (0..200)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("payload-{i}"))]))
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 60).unwrap();
        (QueryContext::new(store), t)
    }

    #[test]
    fn index_objects_align_with_partitions() {
        let (ctx, t) = setup();
        let idx = build_index(&ctx, &t, "k").unwrap();
        assert_eq!(
            idx.index.partitions(&ctx.store).len(),
            t.partitions(&ctx.store).len()
        );
        assert_eq!(
            idx.index.schema.names(),
            vec!["value", "first_byte_offset", "last_byte_offset"]
        );
    }

    #[test]
    fn offsets_point_at_the_right_records() {
        let (ctx, t) = setup();
        let idx = build_index(&ctx, &t, "k").unwrap();
        let data_parts = t.partitions(&ctx.store);
        let index_parts = idx.index.partitions(&ctx.store);
        for (dkey, ikey) in data_parts.iter().zip(&index_parts) {
            let ibytes = ctx.store.raw_object("b", ikey).unwrap();
            let entries: Vec<Row> = CsvReader::with_header(&ibytes, idx.index.schema.clone())
                .map(|r| r.map(|rec| rec.row))
                .collect::<Result<_>>()
                .unwrap();
            // Spot-check every 17th entry via a ranged GET.
            for e in entries.iter().step_by(17) {
                let first = e[1].as_i64().unwrap() as u64;
                let last = e[2].as_i64().unwrap() as u64;
                let slice = ctx.store.get_object_range("b", dkey, first, last).unwrap();
                let line = std::str::from_utf8(&slice).unwrap();
                let fields = pushdown_format::csv::split_line(line).unwrap();
                assert_eq!(fields[0], e[0].to_csv_field());
            }
        }
    }

    #[test]
    fn index_build_is_unmetered() {
        let (ctx, t) = setup();
        let scope = ctx.scoped();
        build_index(&scope, &t, "k").unwrap();
        assert_eq!(scope.billed().requests, 0);
    }

    #[test]
    fn unknown_column_errors() {
        let (ctx, t) = setup();
        assert!(build_index(&ctx, &t, "nope").is_err());
    }
}
