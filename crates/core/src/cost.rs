//! Analytical cost estimation for cost-based strategy selection.
//!
//! The paper takes the algorithm choice as an input — "dynamically
//! determining which optimization to use is orthogonal to and beyond the
//! scope of this paper" (§VIII) — yet every figure shows the winner
//! flipping with selectivity, group count and K. This module closes that
//! loop: [`Estimator`] predicts, for every algorithm family applicable
//! to a query, the [`PhaseStats`] footprint each phase would charge,
//! straight from catalog statistics ([`crate::catalog::TableStats`]).
//!
//! Predictions are expressed as a [`QueryMetrics`] — the *same* structure
//! measurements use — so predicted runtime and dollars come from the
//! *same* [`PerfModel`](pushdown_common::perf::PerfModel) and
//! [`Pricing`](pushdown_common::pricing::Pricing) that score real
//! executions. A prediction and a measurement can disagree only because
//! the *footprint* was estimated imperfectly, never because they were
//! priced by different models. The planner's `Strategy::Adaptive`
//! executes the argmin-dollar candidate and reports predicted-vs-actual
//! per phase through its EXPLAIN surface.

use crate::algos::filter::FilterQuery;
use crate::algos::groupby::{GroupByQuery, HybridOptions};
use crate::algos::join::JoinQuery;
use crate::algos::topk::{optimal_sample_size, TopKQuery};
use crate::catalog::{ColumnStats, Table, TableStats};
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use pushdown_common::perf::PhaseStats;
use pushdown_common::pricing::Usage;
use pushdown_common::{Result, Schema, Value};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::BinOp;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// Selectivity assumed for predicate shapes the estimator cannot reason
/// about (arbitrary expressions, LIKE over unknown data, ...).
const DEFAULT_SELECTIVITY: f64 = 0.33;

/// Mean CSV width assumed for one aggregate output value (`SUM(...)`
/// renders as a float of roughly this many characters plus separator).
const AGG_VALUE_WIDTH: f64 = 11.0;

/// One candidate plan with its predicted phase-structured footprint.
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// Algorithm name, matching the planner's `PlanKind` vocabulary
    /// (`"server-side"`, `"s3-side"`, `"filtered"`, `"hybrid"`,
    /// `"sampling"`, ...).
    pub algorithm: &'static str,
    /// Predicted footprint, phase for phase, of the plan.
    pub predicted: QueryMetrics,
}

impl PlanEstimate {
    /// Predicted billable usage (single aggregation over phases).
    pub fn usage(&self) -> Usage {
        self.predicted.usage()
    }

    /// Predicted runtime under the context's performance model.
    pub fn runtime(&self, ctx: &QueryContext) -> f64 {
        self.predicted.runtime(&ctx.model)
    }

    /// Predicted total dollar cost (compute + request + scan + transfer)
    /// — the objective `Strategy::Adaptive` minimizes. The compute
    /// component is the modeled runtime, so minimizing dollars balances
    /// time against billed bytes exactly as the paper's cost bars do.
    pub fn dollars(&self, ctx: &QueryContext) -> f64 {
        self.predicted.cost(&ctx.model, &ctx.pricing).total()
    }
}

/// Index of the cheapest candidate by predicted dollars (ties broken by
/// predicted runtime). Panics on an empty slice.
pub fn cheapest(candidates: &[PlanEstimate], ctx: &QueryContext) -> usize {
    assert!(!candidates.is_empty(), "no candidate plans");
    let mut best = 0;
    for i in 1..candidates.len() {
        let (d, r) = (candidates[i].dollars(ctx), candidates[i].runtime(ctx));
        let (bd, br) = (candidates[best].dollars(ctx), candidates[best].runtime(ctx));
        if d < bd || (d == bd && r < br) {
            best = i;
        }
    }
    best
}

/// Cost estimator over one table (joins build one per side).
pub struct Estimator<'a> {
    ctx: &'a QueryContext,
    table: &'a Table,
    /// Partition keys, listed once at construction — the estimator's
    /// catalog snapshot. Per-segment pricing iterates this snapshot, so
    /// a partition deleted underneath a live estimator surfaces as an
    /// explicit error instead of a silently mispriced plan.
    partition_keys: Vec<String>,
    /// Partition count (a layout constant; per-partition fan-out).
    parts: u64,
    /// Total stored bytes of the table.
    bytes: f64,
    /// Row count (≥ 1 internally to keep ratios finite).
    rows: f64,
    /// Mean stored CSV row width.
    row_bytes: f64,
}

impl<'a> Estimator<'a> {
    pub fn new(ctx: &'a QueryContext, table: &'a Table) -> Self {
        let partition_keys = table.partitions(&ctx.store);
        let parts = partition_keys.len().max(1) as u64;
        let bytes = table.total_bytes(&ctx.store) as f64;
        let rows = (table.row_count.max(1)) as f64;
        let row_bytes = table
            .stats
            .as_ref()
            .map(|s| s.avg_row_bytes())
            .unwrap_or(bytes / rows)
            .max(2.0);
        Estimator {
            ctx,
            table,
            partition_keys,
            parts,
            bytes,
            rows,
            row_bytes,
        }
    }

    fn stats(&self) -> Option<&TableStats> {
        self.table.stats.as_deref()
    }

    /// Mean CSV width of one column (falls back to an even split of the
    /// row width when no statistics are attached).
    fn col_width(&self, name: &str) -> f64 {
        let fallback = self.row_bytes / self.table.schema.len().max(1) as f64;
        let Ok(idx) = self.table.schema.resolve(name) else {
            return fallback;
        };
        self.stats()
            .and_then(|s| s.column(idx))
            .map(|c| c.avg_width)
            .unwrap_or(fallback)
    }

    /// Mean CSV width of an output row over the given columns (fields +
    /// separators + newline) — what one returned record bills.
    fn out_row_bytes(&self, cols: &[String]) -> f64 {
        let widths: f64 = cols.iter().map(|c| self.col_width(c)).sum();
        widths + cols.len().saturating_sub(1) as f64 + 1.0
    }

    /// Distinct-value estimate for one column.
    fn ndv(&self, name: &str) -> f64 {
        let idx = match self.table.schema.resolve(name) {
            Ok(i) => i,
            Err(_) => return self.rows,
        };
        self.stats()
            .and_then(|s| s.column(idx))
            .map(|c| (c.ndv as f64).max(1.0))
            .unwrap_or(self.rows)
    }

    /// Predicate selectivity against this table's statistics.
    pub fn selectivity(&self, pred: Option<&Expr>) -> f64 {
        match pred {
            None => 1.0,
            Some(p) => selectivity(p, &self.table.schema, self.stats()),
        }
    }

    /// ColumnarLite parse accounting for `bytes` of this table — keyed
    /// on the stored format, exactly like the scan paths, so predicted
    /// phases price parse bandwidth the same way executed ones report it.
    fn cl_bytes(&self, bytes: u64) -> u64 {
        if self.table.format == pushdown_select::InputFormat::Columnar {
            bytes
        } else {
            0
        }
    }

    /// Baseline load phase: GET every partition, decode every row.
    fn plain_load(&self, extra_cpu: f64) -> PhaseStats {
        PhaseStats {
            requests: self.parts,
            plain_bytes: self.bytes as u64,
            cl_parse_bytes: self.cl_bytes(self.bytes as u64),
            server_cpu_units: (self.rows + extra_cpu) as u64,
            ..Default::default()
        }
    }

    /// Cached-local load phase: read partitions through the tiered
    /// segment cache, priced **per segment per tier** from live
    /// occupancy — mem-resident chunks cost a `cache_read_bw` local scan
    /// (`cache_bytes`; zero billable), disk-resident chunks a slower
    /// `disk_read_bw` scan (`disk_bytes`; zero billable), and only the
    /// gaps bill, as one coalesced range GET per gap run. A fully cold
    /// partition (no recorded layout) is one whole-object fill — exactly
    /// the [`Estimator::plain_load`] price, so Adaptive's tie-break
    /// still warms the cache. `Ok(None)` when the store has no cache
    /// installed, so the candidate only exists on cache-enabled
    /// contexts. A partition in the estimator's snapshot whose object
    /// has vanished is an error — pricing it as zero bytes would make
    /// the cached plan look arbitrarily cheap.
    fn cached_load(&self, extra_cpu: f64) -> Result<Option<PhaseStats>> {
        let Some(cache) = self.ctx.store.cache() else {
            return Ok(None);
        };
        let mut stats = PhaseStats::default();
        for key in &self.partition_keys {
            let size = self.ctx.store.object_size(&self.table.bucket, key)?;
            let occ = cache.occupancy(&self.table.bucket, key, size);
            stats.requests += occ.gap_requests;
            stats.plain_bytes += occ.gap_bytes;
            stats.cache_bytes += occ.mem_bytes;
            stats.disk_bytes += occ.disk_bytes;
        }
        stats.cl_parse_bytes =
            self.cl_bytes(stats.plain_bytes + stats.cache_bytes + stats.disk_bytes);
        stats.server_cpu_units = (self.rows + extra_cpu) as u64;
        Ok(Some(stats))
    }

    /// Wrap a cached-local load phase into a one-phase candidate, when a
    /// cache is installed.
    fn cached_candidate(&self, label: &str, extra_cpu: f64) -> Result<Option<PlanEstimate>> {
        let Some(phase) = self.cached_load(extra_cpu)? else {
            return Ok(None);
        };
        let mut m = QueryMetrics::new();
        m.push_serial(label, phase);
        Ok(Some(PlanEstimate {
            algorithm: "cached-local",
            predicted: m,
        }))
    }

    /// Select phase scanning the whole table and returning `ret_rows`
    /// records of `ret_row_bytes` each.
    fn select_full_scan(&self, ret_rows: f64, ret_row_bytes: f64, terms: u32) -> PhaseStats {
        let ret_rows = ret_rows.min(self.rows).max(0.0);
        PhaseStats {
            requests: self.parts,
            s3_scanned_bytes: self.bytes as u64,
            select_returned_bytes: (ret_rows * ret_row_bytes) as u64,
            server_cpu_units: ret_rows as u64,
            expr_terms: terms,
            ..Default::default()
        }
    }

    // ---- Filter (§IV) --------------------------------------------------

    /// Candidates for a filter query: server-side vs S3-side.
    pub fn filter(&self, q: &FilterQuery) -> Result<Vec<PlanEstimate>> {
        let sel = self.selectivity(Some(&q.predicate));
        let out_cols: Vec<String> = match &q.projection {
            Some(cols) => cols.clone(),
            None => self
                .table
                .schema
                .fields()
                .iter()
                .map(|f| f.name.clone())
                .collect(),
        };
        let matches = sel * self.rows;

        // Server-side: full plain load, local filter (+ projection).
        let extra = self.rows + if q.projection.is_some() { matches } else { 0.0 };
        let mut server = QueryMetrics::new();
        server.push_serial("server-side filter", self.plain_load(extra));

        // S3-side: predicate + projection pushed.
        let mut s3 = QueryMetrics::new();
        s3.push_serial(
            "s3-side filter",
            self.select_full_scan(
                matches,
                self.out_row_bytes(&out_cols),
                q.predicate.term_count(),
            ),
        );

        // Cached-local first: a cold fill costs exactly what the remote
        // load costs, so ties must break toward warming the cache (the
        // argmin keeps the earliest minimum).
        let mut out = Vec::new();
        out.extend(self.cached_candidate("cached-local filter", extra)?);
        out.push(PlanEstimate {
            algorithm: "server-side",
            predicted: server,
        });
        out.push(PlanEstimate {
            algorithm: "s3-side",
            predicted: s3,
        });
        Ok(out)
    }

    // ---- Scalar aggregation (§VIII Q6 shape) ---------------------------

    /// Candidates for aggregates without GROUP BY: local vs S3-side.
    pub fn aggregate(&self, stmt: &SelectStmt) -> Result<Vec<PlanEstimate>> {
        let sel = self.selectivity(stmt.where_clause.as_ref());
        let n_aggs = stmt.items.len() as f64;
        // AVG decomposes into SUM+COUNT per partition on the pushed path.
        let pushed_vals: f64 = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Agg {
                    func: AggFunc::Avg, ..
                } => 2.0,
                _ => 1.0,
            })
            .sum();

        // One shared CPU estimate: the cold-cache tie with server-side
        // (which the warm-the-cache tie-break relies on) requires the
        // cached and plain loads to price *identically*.
        let extra = self.rows + sel * self.rows * n_aggs;
        let mut server = QueryMetrics::new();
        server.push_serial("server-side aggregation", self.plain_load(extra));

        let mut s3 = QueryMetrics::new();
        let mut phase = self.select_full_scan(0.0, 0.0, stmt.term_count());
        // One partial row per partition: `pushed_vals` values wide.
        phase.select_returned_bytes =
            (self.parts as f64 * (pushed_vals * AGG_VALUE_WIDTH + 1.0)) as u64;
        phase.server_cpu_units = self.parts;
        s3.push_serial("s3-side aggregation", phase);

        let mut out = Vec::new();
        out.extend(self.cached_candidate("cached-local aggregation", extra)?);
        out.push(PlanEstimate {
            algorithm: "server-side",
            predicted: server,
        });
        out.push(PlanEstimate {
            algorithm: "s3-side",
            predicted: s3,
        });
        Ok(out)
    }

    // ---- Group-by (§VI) ------------------------------------------------

    /// Estimated group count: product of per-column NDVs, capped at the
    /// row count.
    fn group_count(&self, q: &GroupByQuery) -> f64 {
        q.group_cols
            .iter()
            .map(|c| self.ndv(c))
            .product::<f64>()
            .min(self.rows)
            .max(1.0)
    }

    /// Phase-2 CASE-WHEN footprint for `groups` pushed groups — mirrors
    /// `groupby::case_when_aggregate` (statement chunking under the SQL
    /// size limit included).
    fn case_when_phase(&self, q: &GroupByQuery, groups: f64) -> PhaseStats {
        let key_width: f64 = q.group_cols.iter().map(|c| self.col_width(c)).sum();
        let est_per_group = q.aggs.len() as f64 * 96.0 + key_width + 24.0;
        let budget = (self.ctx.engine.limits().max_sql_bytes.saturating_sub(256)) as f64;
        let chunk = (budget / est_per_group).floor().max(1.0);
        let statements = (groups / chunk).ceil().max(1.0);
        let per_stmt_groups = (groups / statements).ceil();
        PhaseStats {
            requests: (statements * self.parts as f64) as u64,
            s3_scanned_bytes: (statements * self.bytes) as u64,
            select_returned_bytes: (statements
                * self.parts as f64
                * (per_stmt_groups * q.aggs.len() as f64 * AGG_VALUE_WIDTH + 1.0))
                as u64,
            server_cpu_units: (statements * self.parts as f64) as u64,
            // Each (group, aggregate) item contributes a CASE arm plus the
            // group-equality comparison(s).
            expr_terms: (per_stmt_groups * q.aggs.len() as f64 * (2.0 + q.group_cols.len() as f64))
                as u32,
            ..Default::default()
        }
    }

    /// Candidates for a GROUP BY query: server-side, filtered, S3-side
    /// and (single grouping column only) hybrid. When the engine's
    /// `native_group_by` extension is enabled, the §X Suggestion-4
    /// variant joins the lineup.
    pub fn groupby(&self, q: &GroupByQuery) -> Result<Vec<PlanEstimate>> {
        let sel = self.selectivity(q.predicate.as_ref());
        let groups = self.group_count(q);
        let matches = sel * self.rows;
        let needed: Vec<String> = {
            let mut cols = q.group_cols.clone();
            for (_, c) in &q.aggs {
                if !cols.iter().any(|x| x.eq_ignore_ascii_case(c)) {
                    cols.push(c.clone());
                }
            }
            cols
        };
        let pred_terms = q.predicate.as_ref().map(Expr::term_count).unwrap_or(0);

        let mut out = Vec::new();

        // Server-side: full load + local hash aggregation — preceded by
        // its cached-local twin so cold ties warm the cache.
        let mut server = QueryMetrics::new();
        let filter_cpu = if q.predicate.is_some() {
            self.rows
        } else {
            0.0
        };
        // Shared so the cold-cache candidate ties the server-side load
        // exactly (the warm-the-cache tie-break depends on it).
        let extra = filter_cpu + matches + groups;
        out.extend(self.cached_candidate("cached-local group-by", extra)?);
        server.push_serial("server-side group-by", self.plain_load(extra));
        out.push(PlanEstimate {
            algorithm: "server-side",
            predicted: server,
        });

        // Filtered: projection (+ predicate) pushed, aggregation local.
        let mut filtered = QueryMetrics::new();
        let mut phase = self.select_full_scan(matches, self.out_row_bytes(&needed), pred_terms);
        phase.server_cpu_units += (matches + groups) as u64;
        filtered.push_serial("filtered group-by", phase);
        out.push(PlanEstimate {
            algorithm: "filtered",
            predicted: filtered,
        });

        // S3-side: distinct phase + CASE-WHEN aggregation phase.
        let mut s3 = QueryMetrics::new();
        let mut distinct =
            self.select_full_scan(matches, self.out_row_bytes(&q.group_cols), pred_terms);
        distinct.server_cpu_units += matches as u64;
        s3.push_serial("s3-side group-by: distinct", distinct);
        s3.push_serial(
            "s3-side group-by: aggregate",
            self.case_when_phase(q, groups),
        );
        out.push(PlanEstimate {
            algorithm: "s3-side",
            predicted: s3,
        });

        // Hybrid (single-column grouping, §VI-B): sample, then push the
        // populous groups while the long tail ships for local aggregation.
        if q.group_cols.len() == 1 {
            let opts = HybridOptions::default();
            let sample_rows = (self.rows * opts.sample_fraction).ceil().max(64.0);
            let rows_per_part = (self.rows / self.parts as f64).max(1.0);
            // The sequential LIMIT scan touches partitions until the
            // sample fills; with a predicate it reads sample/sel rows.
            let scanned_rows = (sample_rows / sel.max(1e-6)).min(self.rows);
            let sample_phase = PhaseStats {
                requests: (scanned_rows / rows_per_part).ceil().max(1.0) as u64,
                s3_scanned_bytes: (scanned_rows * self.row_bytes).min(self.bytes) as u64,
                select_returned_bytes: (sample_rows * (self.col_width(&q.group_cols[0]) + 1.0))
                    as u64,
                server_cpu_units: sample_rows as u64,
                expr_terms: pred_terms,
                ..Default::default()
            };
            let mut hybrid = QueryMetrics::new();
            hybrid.push_serial("hybrid: sample", sample_phase);
            // Uniform-share assumption: every group holds ~1/G of the
            // sample, so either all of the top `max_s3_groups` qualify or
            // none does.
            let n_big = if 1.0 / groups >= opts.min_share {
                groups.min(opts.max_s3_groups as f64)
            } else {
                0.0
            };
            if n_big == 0.0 {
                let mut phase =
                    self.select_full_scan(matches, self.out_row_bytes(&needed), pred_terms);
                phase.server_cpu_units += (matches + groups) as u64;
                hybrid.push_serial("filtered group-by", phase);
            } else {
                let tail_frac = (1.0 - n_big / groups).max(0.0);
                let tail_rows = matches * tail_frac;
                let mut tail = self.select_full_scan(
                    tail_rows,
                    self.out_row_bytes(&needed),
                    pred_terms + n_big as u32 + 1,
                );
                tail.server_cpu_units += (tail_rows + groups) as u64;
                hybrid.push_parallel(vec![
                    (
                        "hybrid: s3-side aggregation".into(),
                        self.case_when_phase(q, n_big),
                    ),
                    ("hybrid: server-side aggregation".into(), tail),
                ]);
            }
            out.push(PlanEstimate {
                algorithm: "hybrid",
                predicted: hybrid,
            });
        }

        // What-if (§X Suggestion 4): native storage-side GROUP BY, when
        // the extended engine is enabled.
        if self.ctx.engine.extensions().native_group_by {
            let mut native = QueryMetrics::new();
            let mut phase = self.select_full_scan(
                (self.parts as f64 * groups).min(self.rows),
                self.out_row_bytes(&needed),
                pred_terms + q.group_cols.len() as u32,
            );
            phase.server_cpu_units += (self.parts as f64 * groups) as u64;
            native.push_serial("s3-native group-by (suggestion 4)", phase);
            out.push(PlanEstimate {
                algorithm: "s3-native",
                predicted: native,
            });
        }

        Ok(out)
    }

    // ---- Top-K (§VII) --------------------------------------------------

    /// Candidates for `ORDER BY col LIMIT k`: server-side heap vs the
    /// two-phase sampling algorithm at the §VII-B optimal sample size.
    pub fn topk(&self, q: &TopKQuery) -> Result<Vec<PlanEstimate>> {
        let k = q.k as f64;
        let log_k = (q.k.max(2) as f64).log2().ceil();

        // Shared so the cold-cache candidate ties the server-side load
        // exactly (the warm-the-cache tie-break depends on it).
        let extra = self.rows * log_k + k;
        let mut server = QueryMetrics::new();
        server.push_serial("server-side top-k", self.plain_load(extra));
        let mut out = Vec::new();
        out.extend(self.cached_candidate("cached-local top-k", extra)?);
        out.push(PlanEstimate {
            algorithm: "server-side",
            predicted: server,
        });

        // Sampling: mirror `topk::sampling`'s default sample size.
        let alpha = 1.0 / self.table.schema.len().max(1) as f64;
        let s = optimal_sample_size(q.k, self.table.row_count, alpha).max(q.k) as f64;
        let order_width = self.col_width(&q.order_col) + 1.0;
        let phase1 = PhaseStats {
            // Striped: every partition serves its share.
            requests: self.parts.min(s as u64),
            s3_scanned_bytes: (s * self.row_bytes).min(self.bytes) as u64,
            select_returned_bytes: (s * order_width) as u64,
            server_cpu_units: s as u64,
            ..Default::default()
        };
        // Threshold = K-th order statistic of the sample ⇒ phase 2
        // matches ≈ K/(S+1) of the table (plus the K survivors' heap).
        let phase2_rows = (self.rows * k / (s + 1.0) + k).min(self.rows);
        let mut phase2 = self.select_full_scan(phase2_rows, self.row_bytes, 1);
        phase2.server_cpu_units = (phase2_rows * (1.0 + log_k)) as u64;
        let mut sampling = QueryMetrics::new();
        sampling.push_serial("sampling phase", phase1);
        sampling.push_serial("scanning phase", phase2);
        out.push(PlanEstimate {
            algorithm: "sampling",
            predicted: sampling,
        });

        Ok(out)
    }
}

/// Candidates for a two-table equi-join (§V): baseline plain loads,
/// filtered pushdown, and the Bloom join (plus the §X Suggestion-3
/// binary Bloom variant when the engine's `bitwise` extension is on).
pub fn join_candidates(ctx: &QueryContext, q: &JoinQuery) -> Vec<PlanEstimate> {
    let left = Estimator::new(ctx, &q.left);
    let right = Estimator::new(ctx, &q.right);
    let lsel = left.selectivity(q.left_pred.as_ref());
    let rsel = right.selectivity(q.right_pred.as_ref());
    let lcols = needed_cols(&q.left_proj, &q.left_key);
    let rcols = needed_cols(&q.right_proj, &q.right_key);
    let l_out = lsel * left.rows;
    let join_cpu = l_out + rsel * right.rows;

    let mut out = Vec::new();

    let mut baseline = QueryMetrics::new();
    baseline.push_parallel(vec![
        (
            "load build side".into(),
            left.plain_load(if q.left_pred.is_some() {
                left.rows
            } else {
                0.0
            }),
        ),
        (
            "load probe side".into(),
            right.plain_load(if q.right_pred.is_some() {
                right.rows
            } else {
                0.0
            }),
        ),
    ]);
    baseline.push_serial(
        "local join",
        PhaseStats {
            server_cpu_units: join_cpu as u64,
            ..Default::default()
        },
    );
    out.push(PlanEstimate {
        algorithm: "baseline",
        predicted: baseline,
    });

    let lterms = q.left_pred.as_ref().map(Expr::term_count).unwrap_or(0);
    let rterms = q.right_pred.as_ref().map(Expr::term_count).unwrap_or(0);
    let mut filtered = QueryMetrics::new();
    filtered.push_parallel(vec![
        (
            "select build side".into(),
            left.select_full_scan(l_out, left.out_row_bytes(&lcols), lterms),
        ),
        (
            "select probe side".into(),
            right.select_full_scan(rsel * right.rows, right.out_row_bytes(&rcols), rterms),
        ),
    ]);
    filtered.push_serial(
        "local join",
        PhaseStats {
            server_cpu_units: join_cpu as u64,
            ..Default::default()
        },
    );
    out.push(PlanEstimate {
        algorithm: "filtered",
        predicted: filtered,
    });

    // Bloom join: serial build → filtered probe. Only applicable when
    // *both* join keys are integers (§V-A2): the build side feeds the
    // filter, and the probe predicate CASTs the right key to INT.
    // Containment assumption: the probe retains right rows whose key
    // joins a build-side key, plus the false-positive share.
    let is_int = |table: &Table, key: &str| {
        table
            .schema
            .resolve(key)
            .map(|i| table.schema.dtype_of(i) == pushdown_common::DataType::Int)
            .unwrap_or(false)
    };
    let int_keys = is_int(&q.left, &q.left_key) && is_int(&q.right, &q.right_key);
    if !int_keys {
        return out;
    }
    let fpr = 0.01;
    let build_keys = l_out.min(left.ndv(&q.left_key));
    let match_frac = (build_keys / right.ndv(&q.right_key).max(1.0)).min(1.0);
    let keep = (match_frac + fpr * (1.0 - match_frac)).min(1.0);
    let hashes = (1.0 / fpr).log2().ceil().max(1.0) as u32;
    let mut bloom = QueryMetrics::new();
    bloom.push_serial(
        "build: select",
        left.select_full_scan(l_out, left.out_row_bytes(&lcols), lterms),
    );
    bloom.push_serial(
        "bloom probe",
        right.select_full_scan(
            rsel * keep * right.rows,
            right.out_row_bytes(&rcols),
            rterms + hashes,
        ),
    );
    bloom.push_serial(
        "local join",
        PhaseStats {
            server_cpu_units: (l_out + rsel * keep * right.rows) as u64,
            ..Default::default()
        },
    );
    out.push(PlanEstimate {
        algorithm: "bloom",
        predicted: bloom.clone(),
    });

    if ctx.engine.extensions().bitwise {
        // Suggestion 3: identical traffic shape, but the binary encoding
        // packs 4 bits per character — a quarter of the expression terms
        // reach the scanner for the same filter.
        let mut binary = bloom.clone();
        if let Some(phase) = binary.groups.get_mut(1).and_then(|g| g.phases.get_mut(0)) {
            phase.stats.expr_terms = rterms + hashes.div_ceil(4);
            phase.label = "bloom probe (binary)".into();
        }
        out.push(PlanEstimate {
            algorithm: "bloom-binary",
            predicted: binary,
        });
    }

    out
}

fn needed_cols(proj: &[String], key: &str) -> Vec<String> {
    let mut cols: Vec<String> = proj.to_vec();
    if !cols.iter().any(|c| c.eq_ignore_ascii_case(key)) {
        cols.push(key.to_string());
    }
    cols
}

// ---------------------------------------------------------------------
// whole-plan pricing (the physical-plan IR)
// ---------------------------------------------------------------------

/// Per-node predicted footprint, shaped exactly like the plan tree (and
/// therefore like the executor's [`crate::plan::OpReport`], which the
/// planner zips it against for per-operator predicted-vs-actual).
#[derive(Debug, Clone)]
pub struct PredNode {
    pub stats: PhaseStats,
    pub children: Vec<PredNode>,
}

/// Prediction for a whole physical plan: the per-node tree plus a
/// [`QueryMetrics`] whose group structure mirrors what execution will
/// record — priced by the *same* `PerfModel`/`Pricing` as measurements,
/// like every other estimate in this module.
#[derive(Debug, Clone)]
pub struct PlanPrediction {
    pub metrics: QueryMetrics,
    pub root: PredNode,
}

/// Estimated cardinality flowing out of a node.
#[derive(Debug, Clone, Copy)]
struct Card {
    rows: f64,
    row_bytes: f64,
}

/// Price a whole physical plan by summing per-operator [`PhaseStats`]:
/// scan leaves from per-table statistics, joins by key-containment,
/// group-bys by NDV products, local operators by their CPU charge.
pub fn predict_plan(ctx: &QueryContext, node: &crate::plan::PlanNode) -> PlanPrediction {
    let mut tables = Vec::new();
    collect_tables(node, &mut tables);
    let (root, metrics, _) = predict_node(ctx, node, &tables);
    PlanPrediction { metrics, root }
}

fn collect_tables(node: &crate::plan::PlanNode, out: &mut Vec<Table>) {
    use crate::plan::PlanOp;
    match &node.op {
        PlanOp::LocalScan { table, .. }
        | PlanOp::PushdownScan { table, .. }
        | PlanOp::CachedScan { table, .. } => out.push(table.clone()),
        _ => {}
    }
    for c in &node.children {
        collect_tables(c, out);
    }
}

/// NDV of `name` in whichever leaf table carries it (row count when no
/// statistics are attached; 1 when the column is unknown).
fn col_ndv(tables: &[Table], name: &str) -> f64 {
    for t in tables {
        if let Some(idx) = t.schema.index_of(name) {
            return t
                .stats
                .as_ref()
                .and_then(|s| s.column(idx))
                .map(|c| (c.ndv as f64).max(1.0))
                .unwrap_or((t.row_count.max(1)) as f64);
        }
    }
    1.0
}

/// Mean CSV width of `name` in its leaf table (a generic value width for
/// computed expressions).
fn col_width_in(tables: &[Table], name: &str) -> f64 {
    for t in tables {
        if let Some(idx) = t.schema.index_of(name) {
            return t
                .stats
                .as_ref()
                .and_then(|s| s.column(idx))
                .map(|c| c.avg_width)
                .unwrap_or(AGG_VALUE_WIDTH);
        }
    }
    AGG_VALUE_WIDTH
}

/// Join output cardinality under key containment: `|L ⋈ R| ≈
/// |L|·|R| / max(ndv(lk), ndv(rk))`, with each NDV capped by its side's
/// row estimate.
fn join_out_rows(tables: &[Table], l_rows: f64, r_rows: f64, lk: &str, rk: &str) -> f64 {
    let nl = col_ndv(tables, lk).min(l_rows.max(1.0));
    let nr = col_ndv(tables, rk).min(r_rows.max(1.0));
    (l_rows * r_rows / nl.max(nr).max(1.0)).max(0.0)
}

fn cpu_phase(units: f64) -> PhaseStats {
    PhaseStats {
        server_cpu_units: units.max(0.0) as u64,
        ..Default::default()
    }
}

/// Predicted footprint of one pushdown scan leaf: full storage-side
/// scan, `keep × selectivity` of the rows returned at the projection's
/// width, `extra_terms` added to the shipped predicate's term count
/// (the Bloom probe's hash terms). `keep = 1` for a plain scan.
fn predict_pushdown_scan(
    ctx: &QueryContext,
    table: &Table,
    predicate: &Option<Expr>,
    projection: &Option<Vec<String>>,
    keep: f64,
    extra_terms: u32,
) -> (PhaseStats, Card) {
    let est = Estimator::new(ctx, table);
    let sel = est.selectivity(predicate.as_ref());
    let cols: Vec<String> = match projection {
        Some(cols) => cols.clone(),
        None => table
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect(),
    };
    let width = est.out_row_bytes(&cols);
    let terms = predicate.as_ref().map(Expr::term_count).unwrap_or(0) + extra_terms;
    let rows = sel * keep * est.rows;
    (
        est.select_full_scan(rows, width, terms),
        Card {
            rows,
            row_bytes: width,
        },
    )
}

fn predict_node(
    ctx: &QueryContext,
    node: &crate::plan::PlanNode,
    tables: &[Table],
) -> (PredNode, QueryMetrics, Card) {
    use crate::plan::PlanOp;
    let leaf = |stats: PhaseStats, label: &str, card: Card| {
        let mut m = QueryMetrics::new();
        m.push_serial(label, stats);
        (
            PredNode {
                stats,
                children: Vec::new(),
            },
            m,
            card,
        )
    };
    let stacked =
        |stats: PhaseStats, label: &str, child: (PredNode, QueryMetrics, Card), card: Card| {
            let (cn, mut cm, _) = child;
            cm.push_serial(label, stats);
            (
                PredNode {
                    stats,
                    children: vec![cn],
                },
                cm,
                card,
            )
        };
    match &node.op {
        PlanOp::LocalScan { table, predicate } => {
            let est = Estimator::new(ctx, table);
            let sel = est.selectivity(predicate.as_ref());
            let extra = if predicate.is_some() { est.rows } else { 0.0 };
            leaf(
                est.plain_load(extra),
                "load",
                Card {
                    rows: sel * est.rows,
                    row_bytes: est.row_bytes,
                },
            )
        }
        PlanOp::PushdownScan {
            table,
            predicate,
            projection,
        } => {
            let (stats, card) = predict_pushdown_scan(ctx, table, predicate, projection, 1.0, 0);
            leaf(stats, "select", card)
        }
        PlanOp::CachedScan { table, predicate } => {
            let est = Estimator::new(ctx, table);
            let sel = est.selectivity(predicate.as_ref());
            let extra = if predicate.is_some() { est.rows } else { 0.0 };
            // Per-segment occupancy pricing: cached partitions are free,
            // the cold tail bills as read-through fills. Falls back to a
            // full plain load if no cache is installed (a CachedScan
            // then degrades to exactly a LocalScan) or if the snapshot
            // went stale mid-prediction — the full-load price is the
            // conservative upper bound, never the zero the old
            // `unwrap_or(0)` produced.
            let stats = match est.cached_load(extra) {
                Ok(Some(s)) => s,
                _ => est.plain_load(extra),
            };
            leaf(
                stats,
                "cached load",
                Card {
                    rows: sel * est.rows,
                    row_bytes: est.row_bytes,
                },
            )
        }
        PlanOp::HashJoin {
            build_key,
            probe_key,
        } => {
            let (bn, bm, bc) = predict_node(ctx, &node.children[0], tables);
            let (pn, pm, pc) = predict_node(ctx, &node.children[1], tables);
            let out = join_out_rows(tables, bc.rows, pc.rows, build_key, probe_key);
            let stats = cpu_phase(bc.rows + pc.rows + out);
            let mut metrics = crate::plan::merge_concurrent(bm, pm);
            metrics.push_serial("hash join", stats);
            (
                PredNode {
                    stats,
                    children: vec![bn, pn],
                },
                metrics,
                Card {
                    rows: out,
                    row_bytes: bc.row_bytes + pc.row_bytes,
                },
            )
        }
        PlanOp::BloomJoin {
            build_key,
            probe_key,
            fpr,
        } => {
            let (bn, bm, bc) = predict_node(ctx, &node.children[0], tables);
            // The probe is a PushdownScan whose predicate gains the Bloom
            // filter: containment says a `keep` fraction of otherwise
            // matching rows survives the storage-side filter.
            let (pn, pm, pc) = match &node.children[1].op {
                PlanOp::PushdownScan {
                    table,
                    predicate,
                    projection,
                } => {
                    let build_keys = bc.rows.min(col_ndv(tables, build_key));
                    let probe_ndv = col_ndv(tables, probe_key);
                    let match_frac = (build_keys / probe_ndv.max(1.0)).min(1.0);
                    let keep = (match_frac + fpr * (1.0 - match_frac)).min(1.0);
                    let hashes = (1.0 / fpr).log2().ceil().max(1.0) as u32;
                    let (stats, card) =
                        predict_pushdown_scan(ctx, table, predicate, projection, keep, hashes);
                    let mut m = QueryMetrics::new();
                    m.push_serial("bloom probe", stats);
                    (
                        PredNode {
                            stats,
                            children: Vec::new(),
                        },
                        m,
                        card,
                    )
                }
                _ => predict_node(ctx, &node.children[1], tables),
            };
            let out = join_out_rows(tables, bc.rows, pc.rows, build_key, probe_key);
            let stats = cpu_phase(bc.rows + pc.rows + out);
            let mut metrics = bm;
            metrics.extend(&pm);
            metrics.push_serial("hash join (bloom)", stats);
            (
                PredNode {
                    stats,
                    children: vec![bn, pn],
                },
                metrics,
                Card {
                    rows: out,
                    row_bytes: bc.row_bytes + pc.row_bytes,
                },
            )
        }
        PlanOp::LocalFilter { predicate } => {
            let child = predict_node(ctx, &node.children[0], tables);
            let sel = selectivity(predicate, &node.children[0].schema, None);
            let card = Card {
                rows: sel * child.2.rows,
                row_bytes: child.2.row_bytes,
            };
            let stats = cpu_phase(child.2.rows);
            stacked(stats, "residual filter", child, card)
        }
        PlanOp::Project { exprs } => {
            let child = predict_node(ctx, &node.children[0], tables);
            let width: f64 = exprs
                .iter()
                .map(|e| match e {
                    Expr::Column(name) => col_width_in(tables, name),
                    _ => AGG_VALUE_WIDTH,
                })
                .sum::<f64>()
                + exprs.len() as f64;
            let card = Card {
                rows: child.2.rows,
                row_bytes: width,
            };
            let stats = cpu_phase(child.2.rows);
            stacked(stats, "project", child, card)
        }
        PlanOp::GroupBy { group_width, aggs } => {
            let child = predict_node(ctx, &node.children[0], tables);
            // Group count: NDV product over the grouped input expressions
            // (readable through the Project the planner places below).
            let groups = match &node.children[0].op {
                PlanOp::Project { exprs } => exprs[..*group_width]
                    .iter()
                    .map(|e| match e {
                        Expr::Column(name) => col_ndv(tables, name),
                        _ => child.2.rows.sqrt().max(1.0),
                    })
                    .product::<f64>(),
                _ => child.2.rows,
            }
            .min(child.2.rows)
            .max(1.0);
            let card = Card {
                rows: groups,
                row_bytes: child.2.row_bytes + aggs.len() as f64 * AGG_VALUE_WIDTH,
            };
            let stats = cpu_phase(child.2.rows + groups);
            stacked(stats, "group-by", child, card)
        }
        PlanOp::Aggregate { aggs } => {
            let child = predict_node(ctx, &node.children[0], tables);
            let stats = cpu_phase(child.2.rows * aggs.len().max(1) as f64);
            let card = Card {
                rows: 1.0,
                row_bytes: aggs.len() as f64 * AGG_VALUE_WIDTH,
            };
            stacked(stats, "aggregate", child, card)
        }
        PlanOp::Sort { limit, .. } => {
            let child = predict_node(ctx, &node.children[0], tables);
            let n = child.2.rows.max(1.0);
            let stats = cpu_phase(n * n.log2().max(1.0));
            let card = Card {
                rows: limit.map_or(n, |k| n.min(k as f64)),
                row_bytes: child.2.row_bytes,
            };
            stacked(stats, "sort", child, card)
        }
        PlanOp::Limit { n } => {
            let (cn, cm, cc) = predict_node(ctx, &node.children[0], tables);
            let card = Card {
                rows: cc.rows.min(*n as f64),
                row_bytes: cc.row_bytes,
            };
            (
                PredNode {
                    stats: PhaseStats::default(),
                    children: vec![cn],
                },
                cm,
                card,
            )
        }
        // Algorithm-family leaves are predicted by the Estimator's
        // per-family candidates, not this walker; the planner attaches
        // those predictions directly.
        PlanOp::Algo(_) => leaf(
            PhaseStats::default(),
            "algo",
            Card {
                rows: 1.0,
                row_bytes: AGG_VALUE_WIDTH,
            },
        ),
        PlanOp::Gather { .. } => {
            let first = node.children.first().and_then(|c| c.children.first());
            let Some((cluster, leaf_node)) = ctx.cluster.as_ref().zip(first) else {
                // No cluster (or malformed fan-out): predict the first
                // child serially — the executor degenerates the same way.
                return predict_node(ctx, &node.children[0], tables);
            };
            match predict_gather(ctx, cluster, node, leaf_node) {
                Some(out) => out,
                None => predict_node(ctx, &node.children[0], tables),
            }
        }
        // A bare Exchange predicts (and executes) as its child.
        PlanOp::Exchange { .. } => predict_node(ctx, &node.children[0], tables),
        PlanOp::Repartition { nodes, .. } => {
            let (cn, cm, cc) = predict_node(ctx, &node.children[0], tables);
            let n = (*nodes).max(1) as f64;
            // Modeled all-to-all shuffle: the expected cross-node share
            // of the serialized child volume. No extra metrics phase —
            // the executor meters this inside the per-node group-by
            // phases.
            let stats = PhaseStats {
                exchange_bytes: (cc.rows * cc.row_bytes * (n - 1.0) / n) as u64,
                ..Default::default()
            };
            (
                PredNode {
                    stats,
                    children: vec![cn],
                },
                cm,
                cc,
            )
        }
    }
}

/// Predict a Gather fan-out: split the leaf scan's footprint across the
/// Exchange children by each node's owned-partition byte share, pricing
/// `CachedScan` leaves against *the owning node's* cache slice (per-node
/// occupancy), and metering each node's result share as exchange volume.
/// Returns `None` when the first child's child is not a scan leaf.
fn predict_gather(
    ctx: &QueryContext,
    cluster: &crate::cluster::Cluster,
    node: &crate::plan::PlanNode,
    leaf_node: &crate::plan::PlanNode,
) -> Option<(PredNode, QueryMetrics, Card)> {
    use crate::plan::PlanOp;
    let table = match &leaf_node.op {
        PlanOp::LocalScan { table, .. }
        | PlanOp::CachedScan { table, .. }
        | PlanOp::PushdownScan { table, .. } => table,
        _ => return None,
    };
    let est = Estimator::new(ctx, table);
    let keys = table.partitions(&ctx.store);
    let sized: Vec<(usize, String, u64)> = keys
        .into_iter()
        .map(|k| {
            let owner = cluster.assign(&table.bucket, &k);
            let size = ctx.store.object_size(&table.bucket, &k).unwrap_or(0);
            (owner, k, size)
        })
        .collect();
    let total_bytes: u64 = sized.iter().map(|(_, _, s)| s).sum();
    // Leaf-total footprint and output card, by leaf kind.
    let (full, card) = match &leaf_node.op {
        PlanOp::LocalScan { predicate, .. } | PlanOp::CachedScan { predicate, .. } => {
            let sel = est.selectivity(predicate.as_ref());
            let extra = if predicate.is_some() { est.rows } else { 0.0 };
            (
                est.plain_load(extra),
                Card {
                    rows: sel * est.rows,
                    row_bytes: est.row_bytes,
                },
            )
        }
        PlanOp::PushdownScan {
            predicate,
            projection,
            ..
        } => {
            let (stats, card) = predict_pushdown_scan(ctx, table, predicate, projection, 1.0, 0);
            (stats, card)
        }
        _ => return None,
    };
    let mut children = Vec::with_capacity(node.children.len());
    let mut phases = Vec::with_capacity(node.children.len());
    for child in &node.children {
        let PlanOp::Exchange { node: k, .. } = child.op else {
            return None;
        };
        let owned: Vec<&(usize, String, u64)> =
            sized.iter().filter(|(owner, ..)| *owner == k).collect();
        let owned_bytes: u64 = owned.iter().map(|(_, _, s)| s).sum();
        let frac = if total_bytes > 0 {
            owned_bytes as f64 / total_bytes as f64
        } else {
            0.0
        };
        let mut stats = full.scaled(frac);
        stats.requests = owned.len() as u64;
        if let PlanOp::CachedScan { .. } = &leaf_node.op {
            // Per-node occupancy: chunks resident in the owning node's
            // cache slice are free local reads (per tier); only the gap
            // runs bill, as coalesced range GETs. A fully cold partition
            // prices as one whole-object fill.
            let cache = cluster.node(k).cache.clone();
            stats.requests = 0;
            stats.plain_bytes = 0;
            stats.cache_bytes = 0;
            stats.disk_bytes = 0;
            for (_, key, size) in &owned {
                match &cache {
                    Some(c) => {
                        let occ = c.occupancy(&table.bucket, key, *size);
                        stats.requests += occ.gap_requests;
                        stats.plain_bytes += occ.gap_bytes;
                        stats.cache_bytes += occ.mem_bytes;
                        stats.disk_bytes += occ.disk_bytes;
                    }
                    None => {
                        stats.requests += 1;
                        stats.plain_bytes += size;
                    }
                }
            }
        }
        stats.exchange_bytes = (card.rows * frac * card.row_bytes) as u64;
        phases.push((format!("exchange node {k}"), stats));
        children.push(PredNode {
            stats,
            children: Vec::new(),
        });
    }
    let mut metrics = QueryMetrics::new();
    metrics.push_parallel(phases);
    Some((
        PredNode {
            stats: PhaseStats::default(),
            children,
        },
        metrics,
        card,
    ))
}

/// Price a scattered plan the way a reserved cluster bills: byte and
/// request charges are usage-based (identical at any node count), but
/// compute is reserved on *every* node for the query's wall time —
/// `nodes ×` the predicted runtime (itself the slowest node's time, via
/// the parallel phase groups). The planner scatters only when this
/// beats the serial prediction's dollars: per-node cache hits must shave
/// more billable bytes than the reserved-compute premium costs.
pub fn scatter_dollars(ctx: &QueryContext, pred: &PlanPrediction, nodes: usize) -> f64 {
    let runtime = pred.metrics.runtime(&ctx.model);
    ctx.pricing
        .cost(&pred.metrics.usage(), runtime * nodes.max(1) as f64)
        .total()
}

// ---------------------------------------------------------------------
// selectivity estimation
// ---------------------------------------------------------------------

/// Estimate the fraction of rows satisfying `pred`, using per-column
/// statistics where available. Conjunctions multiply (independence),
/// disjunctions use inclusion–exclusion, comparisons against literals
/// assume a uniform distribution over `[min, max]`, equality uses
/// `1/NDV`. Shapes outside the model fall back to a default
/// (`DEFAULT_SELECTIVITY`, 0.33).
pub fn selectivity(pred: &Expr, schema: &Schema, stats: Option<&TableStats>) -> f64 {
    let s = sel_inner(pred, schema, stats);
    s.clamp(0.0, 1.0)
}

fn sel_inner(pred: &Expr, schema: &Schema, stats: Option<&TableStats>) -> f64 {
    match pred {
        Expr::Literal(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Literal(Value::Null) => 0.0,
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => sel_inner(left, schema, stats) * sel_inner(right, schema, stats),
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            let a = sel_inner(left, schema, stats);
            let b = sel_inner(right, schema, stats);
            a + b - a * b
        }
        Expr::Binary { left, op, right } => match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) => cmp_sel(c, *op, v, schema, stats),
            (Expr::Literal(v), Expr::Column(c)) => cmp_sel(c, flip(*op), v, schema, stats),
            _ => DEFAULT_SELECTIVITY,
        },
        Expr::Unary {
            op: pushdown_sql::ast::UnOp::Not,
            expr,
        } => 1.0 - sel_inner(expr, schema, stats),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let s = match (&**expr, &**low, &**high) {
                (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) => {
                    let a = cmp_sel(c, BinOp::GtEq, lo, schema, stats);
                    let b = cmp_sel(c, BinOp::LtEq, hi, schema, stats);
                    (a + b - 1.0).max(0.0)
                }
                _ => DEFAULT_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let s = match &**expr {
                Expr::Column(c) => list
                    .iter()
                    .map(|e| match e {
                        Expr::Literal(v) => cmp_sel(c, BinOp::Eq, v, schema, stats),
                        _ => DEFAULT_SELECTIVITY / list.len() as f64,
                    })
                    .sum::<f64>()
                    .min(1.0),
                _ => DEFAULT_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::IsNull { expr, negated } => {
            let frac = match &**expr {
                Expr::Column(c) => column_stats(c, schema, stats)
                    .map(|cs| cs.null_fraction)
                    .unwrap_or(0.05),
                _ => 0.05,
            };
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        Expr::Like { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

fn column_stats<'s>(
    name: &str,
    schema: &Schema,
    stats: Option<&'s TableStats>,
) -> Option<&'s ColumnStats> {
    let idx = schema.resolve(name).ok()?;
    stats?.column(idx)
}

/// Numeric view of a value for range interpolation (dates count as
/// day numbers, matching their comparison order).
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Date(d) => Some(*d as f64),
        _ => None,
    }
}

/// Selectivity of `col op literal`.
fn cmp_sel(col: &str, op: BinOp, lit: &Value, schema: &Schema, stats: Option<&TableStats>) -> f64 {
    let Some(cs) = column_stats(col, schema, stats) else {
        return match op {
            BinOp::Eq => 0.05,
            BinOp::NotEq => 0.95,
            _ => DEFAULT_SELECTIVITY,
        };
    };
    let non_null = 1.0 - cs.null_fraction;
    match op {
        BinOp::Eq => non_null / (cs.ndv.max(1) as f64),
        BinOp::NotEq => non_null * (1.0 - 1.0 / (cs.ndv.max(1) as f64)),
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let (Some(lo), Some(hi), Some(x)) = (numeric(&cs.min), numeric(&cs.max), numeric(lit))
            else {
                // Non-numeric range (strings): fall back.
                return non_null * DEFAULT_SELECTIVITY;
            };
            if hi <= lo {
                // Single-valued column: compare directly.
                let matched = match op {
                    BinOp::Lt => lo < x,
                    BinOp::LtEq => lo <= x,
                    BinOp::Gt => lo > x,
                    BinOp::GtEq => lo >= x,
                    _ => unreachable!(),
                };
                return if matched { non_null } else { 0.0 };
            }
            let frac = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
            let below = match op {
                BinOp::Lt | BinOp::LtEq => frac,
                _ => 1.0 - frac,
            };
            non_null * below
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::{DataType, Row};
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_expr;

    /// Uniform table: k = 0..n (unique), v = k % 100 (100 distinct),
    /// s = one of 4 strings, plus a NULL-heavy column.
    fn setup(n: i64) -> (QueryContext, Table) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
            ("s", DataType::Str),
            ("maybe", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Float((i % 100) as f64),
                    Value::Str(format!("tag-{}", i % 4)),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 10)
                    },
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 250).unwrap();
        (QueryContext::new(store), t)
    }

    fn sel(t: &Table, pred: &str) -> f64 {
        selectivity(&parse_expr(pred).unwrap(), &t.schema, t.stats.as_deref())
    }

    #[test]
    fn selectivity_from_statistics() {
        let (_, t) = setup(1000);
        // Uniform range interpolation.
        assert!((sel(&t, "k < 500") - 0.5).abs() < 0.05);
        assert!((sel(&t, "k >= 900") - 0.1).abs() < 0.05);
        assert!(
            (sel(&t, "500 > k") - 0.5).abs() < 0.05,
            "flipped operand order"
        );
        // Equality via NDV.
        assert!((sel(&t, "k = 7") - 0.001).abs() < 1e-4);
        assert!((sel(&t, "s = 'tag-1'") - 0.25).abs() < 0.01);
        // Conjunction multiplies; disjunction via inclusion-exclusion.
        assert!((sel(&t, "k < 500 AND v < 50") - 0.25).abs() < 0.05);
        assert!((sel(&t, "k < 500 OR k >= 500") - 0.75).abs() < 0.06);
        // BETWEEN and IN.
        assert!((sel(&t, "k BETWEEN 100 AND 299") - 0.2).abs() < 0.05);
        assert!((sel(&t, "v IN (1, 2, 3)") - 0.03).abs() < 0.01);
        // NULL fraction.
        assert!((sel(&t, "maybe IS NULL") - 0.2).abs() < 0.01);
        assert!((sel(&t, "maybe IS NOT NULL") - 0.8).abs() < 0.01);
        // Out-of-range literals clamp.
        assert_eq!(sel(&t, "k < -5"), 0.0);
        assert!((sel(&t, "k >= -5") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_defaults_without_statistics() {
        let (_, mut t) = setup(100);
        t.stats = None;
        assert_eq!(sel(&t, "k < 50"), DEFAULT_SELECTIVITY);
        assert_eq!(sel(&t, "k = 5"), 0.05);
    }

    #[test]
    fn filter_candidates_have_the_right_shapes() {
        let (ctx, t) = setup(1000);
        let est = Estimator::new(&ctx, &t);
        let q = FilterQuery {
            table: t.clone(),
            predicate: parse_expr("k < 10").unwrap(),
            projection: Some(vec!["k".into()]),
        };
        let cands = est.filter(&q).unwrap();
        assert_eq!(cands.len(), 2);
        let server = cands.iter().find(|c| c.algorithm == "server-side").unwrap();
        let s3 = cands.iter().find(|c| c.algorithm == "s3-side").unwrap();
        let bytes = t.total_bytes(&ctx.store);
        // Server loads everything as plain bytes; S3 scans everything and
        // returns only the matches.
        assert_eq!(server.usage().plain_bytes, bytes);
        assert_eq!(server.usage().select_scanned_bytes, 0);
        assert_eq!(s3.usage().select_scanned_bytes, bytes);
        assert!(s3.usage().select_returned_bytes < bytes / 20);
    }

    #[test]
    fn stale_partition_snapshot_errors_instead_of_pricing_zero() {
        let (ctx, t) = setup(1000);
        let ctx = ctx.with_cache(1 << 30);
        let est = Estimator::new(&ctx, &t);
        let q = FilterQuery {
            table: t.clone(),
            predicate: parse_expr("k < 10").unwrap(),
            projection: None,
        };
        // Sanity: with the snapshot intact the cached candidate exists.
        let cands = est.filter(&q).unwrap();
        assert!(cands.iter().any(|c| c.algorithm == "cached-local"));

        // Delete a partition out from under the estimator's snapshot.
        // Pricing must fail loudly — the old path priced the vanished
        // object as 0 bytes, making cached-local look arbitrarily cheap.
        let victim = t.partitions(&ctx.store)[0].clone();
        assert!(ctx.store.delete_object(&t.bucket, &victim));
        let err = est.filter(&q).unwrap_err();
        assert!(
            err.to_string().contains(&victim),
            "error should name the missing partition: {err}"
        );
    }

    #[test]
    fn groupby_candidates_respect_applicability() {
        let (ctx, t) = setup(1000);
        let est = Estimator::new(&ctx, &t);
        let mut q = GroupByQuery {
            table: t.clone(),
            group_cols: vec!["s".into()],
            aggs: vec![(AggFunc::Sum, "v".into())],
            predicate: None,
        };
        let names: Vec<&str> = est
            .groupby(&q)
            .unwrap()
            .iter()
            .map(|c| c.algorithm)
            .collect();
        assert_eq!(names, vec!["server-side", "filtered", "s3-side", "hybrid"]);
        // Multi-column grouping: hybrid is not applicable.
        q.group_cols.push("v".into());
        let names: Vec<&str> = est
            .groupby(&q)
            .unwrap()
            .iter()
            .map(|c| c.algorithm)
            .collect();
        assert!(!names.contains(&"hybrid"));
        // The §X native variant joins only under the extended engine.
        let mut ext = ctx.clone();
        ext.engine = ext
            .engine
            .clone()
            .with_extensions(pushdown_select::EngineExtensions {
                native_group_by: true,
                ..Default::default()
            });
        let est_ext = Estimator::new(&ext, &t);
        q.group_cols.pop();
        let names: Vec<&str> = est_ext
            .groupby(&q)
            .unwrap()
            .iter()
            .map(|c| c.algorithm)
            .collect();
        assert!(names.contains(&"s3-native"));
    }

    #[test]
    fn join_candidates_gate_bloom_on_integer_keys() {
        let (ctx, t) = setup(500);
        let q = JoinQuery {
            left: t.clone(),
            right: t.clone(),
            left_key: "k".into(),
            right_key: "k".into(),
            left_pred: Some(parse_expr("v < 10").unwrap()),
            right_pred: None,
            left_proj: vec!["k".into()],
            right_proj: vec!["v".into()],
            sum_column: None,
        };
        let names: Vec<&str> = join_candidates(&ctx, &q)
            .iter()
            .map(|c| c.algorithm)
            .collect();
        assert_eq!(names, vec!["baseline", "filtered", "bloom"]);
        let mut sq = q.clone();
        sq.left_key = "s".into();
        sq.right_key = "s".into();
        let names: Vec<&str> = join_candidates(&ctx, &sq)
            .iter()
            .map(|c| c.algorithm)
            .collect();
        assert_eq!(
            names,
            vec!["baseline", "filtered"],
            "no bloom over string keys"
        );
        // Mixed keys: the probe predicate CASTs the *right* key to INT,
        // so an integer build side is not enough.
        let mut mq = q.clone();
        mq.right_key = "s".into();
        let names: Vec<&str> = join_candidates(&ctx, &mq)
            .iter()
            .map(|c| c.algorithm)
            .collect();
        assert_eq!(
            names,
            vec!["baseline", "filtered"],
            "no bloom when only the left key is an integer"
        );
    }

    #[test]
    fn cheapest_is_the_argmin_by_dollars() {
        let (ctx, t) = setup(1000);
        let est = Estimator::new(&ctx, &t);
        let q = FilterQuery {
            table: t.clone(),
            predicate: parse_expr("k < 10").unwrap(),
            projection: None,
        };
        let cands = est.filter(&q).unwrap();
        let i = cheapest(&cands, &ctx);
        for (j, c) in cands.iter().enumerate() {
            assert!(
                cands[i].dollars(&ctx) <= c.dollars(&ctx),
                "candidate {j} beats the chosen one"
            );
        }
    }

    #[test]
    fn topk_candidates_price_both_phases() {
        let (ctx, t) = setup(2000);
        let est = Estimator::new(&ctx, &t);
        let q = TopKQuery {
            table: t.clone(),
            order_col: "v".into(),
            k: 10,
            asc: true,
        };
        let cands = est.topk(&q).unwrap();
        assert_eq!(cands.len(), 2);
        let sampling = cands.iter().find(|c| c.algorithm == "sampling").unwrap();
        assert_eq!(sampling.predicted.groups.len(), 2, "sample + scan phases");
        // The scanning phase scans the table but returns only ~K/S of it.
        let u = sampling.usage();
        assert!(u.select_returned_bytes < t.total_bytes(&ctx.store) / 4);
    }
}
