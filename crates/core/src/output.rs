//! Query results: rows plus the metrics needed to reproduce the paper's
//! runtime and cost figures.

use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use pushdown_common::pricing::CostBreakdown;
use pushdown_common::{Row, Schema};

/// The result of one query execution under one algorithm.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub metrics: QueryMetrics,
}

impl QueryOutput {
    /// Modeled runtime under the context's performance model.
    pub fn runtime(&self, ctx: &QueryContext) -> f64 {
        self.metrics.runtime(&ctx.model)
    }

    /// Dollar cost under the context's models.
    pub fn cost(&self, ctx: &QueryContext) -> CostBreakdown {
        self.metrics.cost(&ctx.model, &ctx.pricing)
    }
}
