//! Query results: rows plus the metrics needed to reproduce the paper's
//! runtime and cost figures.

use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use pushdown_common::pricing::{CostBreakdown, Usage};
use pushdown_common::{Row, Schema};

/// The result of one query execution under one algorithm.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub metrics: QueryMetrics,
    /// What this query actually billed on its scoped child ledger —
    /// exact even when other queries run concurrently on the same store
    /// (the child rolls up into the global ledger; see
    /// [`pushdown_common::CostLedger::child`]).
    pub billed: Usage,
}

impl QueryOutput {
    /// Modeled runtime under the context's performance model.
    pub fn runtime(&self, ctx: &QueryContext) -> f64 {
        self.metrics.runtime(&ctx.model)
    }

    /// Dollar cost under the context's models.
    pub fn cost(&self, ctx: &QueryContext) -> CostBreakdown {
        self.metrics.cost(&ctx.model, &ctx.pricing)
    }

    /// Dollar cost computed from the *billed* ledger usage (rather than
    /// the phase metrics) — what the AWS bill would say for this query.
    pub fn billed_cost(&self, ctx: &QueryContext) -> CostBreakdown {
        ctx.pricing.cost(&self.billed, self.runtime(ctx))
    }
}
