//! The paper's pushdown algorithms, one module per operator family:
//!
//! * [`filter`] — server-side / S3-side / indexed filtering (paper §IV);
//! * [`join`] — baseline / filtered / Bloom joins (§V);
//! * [`groupby`] — server-side / filtered / S3-side / hybrid group-by (§VI);
//! * [`topk`] — server-side / sampling top-K (§VII).

pub mod filter;
pub mod groupby;
pub mod join;
pub mod topk;
pub mod whatif;
