//! What-if variants of the paper's algorithms, one per §X suggestion.
//!
//! Section X of the paper lists five suggestions — concrete service changes that
//! would make pushdown more effective. Each function here implements the
//! corresponding algorithm against the *extended* engine so the ablation
//! harness can quantify what AWS would have bought the paper's authors:
//!
//! * [`indexed_multirange`] — Suggestion 1: multiple byte ranges per GET;
//! * [`indexed_in_s3`] — Suggestion 2: the whole index lookup inside S3;
//! * [`bloom_binary`] — Suggestion 3: bitwise Bloom probes (`BIT_AT` over
//!   hex) instead of `SUBSTRING` over `'0'/'1'` strings;
//! * [`s3_native_groupby`] — Suggestion 4: partial group-by in S3.
//!
//! (Suggestion 5, computation-aware *pricing*, changes no algorithm —
//! see the `ablation_suggestions` harness in `pushdown-bench`.)

use crate::algos::filter::FilterQuery;
use crate::algos::groupby::GroupByQuery;
use crate::algos::join::JoinQuery;
use crate::catalog::Table;
use crate::context::QueryContext;
use crate::index::IndexTable;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{select_scan, ScanResult};
use pushdown_common::perf::PhaseStats;
use pushdown_common::{Error, Result, Row, Value};
use pushdown_select::{EngineExtensions, S3SelectEngine};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::ExtendedSelect;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// How many ranges to pack into one multipart GET. HTTP has no hard
/// limit; we batch conservatively.
const RANGES_PER_REQUEST: usize = 256;

fn extended_engine(ctx: &QueryContext) -> S3SelectEngine {
    ctx.engine.clone().with_extensions(EngineExtensions {
        native_group_by: true,
        index_in_s3: true,
        bitwise: true,
    })
}

/// Suggestion 1: the §IV-A indexed filter, but phase 2 packs up to
/// `RANGES_PER_REQUEST` (256) byte ranges into each GET. Request count drops
/// by that factor; everything else is identical to
/// [`crate::algos::filter::indexed`].
pub fn indexed_multirange(
    ctx: &QueryContext,
    idx: &IndexTable,
    q: &FilterQuery,
) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let mut refs = Vec::new();
    q.predicate.referenced_columns(&mut refs);
    if !(refs.len() == 1 && refs[0].eq_ignore_ascii_case(&idx.column)) {
        return Err(Error::Bind(format!(
            "indexed filter supports predicates on `{}` only",
            idx.column
        )));
    }
    let index_pred = super::filter::rename_column(&q.predicate, &idx.column, "value");

    // Phase 1: unchanged index lookup.
    let lookup = SelectStmt {
        items: vec![
            SelectItem::Expr {
                expr: Expr::col("first_byte_offset"),
                alias: None,
            },
            SelectItem::Expr {
                expr: Expr::col("last_byte_offset"),
                alias: None,
            },
        ],
        alias: None,
        where_clause: Some(index_pred),
        limit: None,
    };
    let mut phase1 = PhaseStats::default();
    let index_parts = idx.index.partitions(&ctx.store);
    let data_parts = idx.data.partitions(&ctx.store);
    let mut per_partition: Vec<Vec<(u64, u64)>> = vec![Vec::new(); data_parts.len()];
    for (p, ikey) in index_parts.iter().enumerate() {
        let resp = ctx.engine.select_stmt(
            &idx.index.bucket,
            ikey,
            &lookup,
            &idx.index.schema,
            idx.index.format,
        )?;
        phase1.requests += u64::from(resp.stats.attempts.max(1));
        phase1.s3_scanned_bytes += resp.stats.bytes_scanned;
        phase1.select_returned_bytes += resp.stats.bytes_returned;
        for row in resp.rows()? {
            per_partition[p].push((row[0].as_i64()? as u64, row[1].as_i64()? as u64));
        }
    }
    phase1.server_cpu_units += per_partition.iter().map(|v| v.len() as u64).sum::<u64>();

    // Phase 2: batched multipart GETs.
    let mut phase2 = PhaseStats::default();
    let mut rows: Vec<Row> = Vec::new();
    for (p, ranges) in per_partition.iter().enumerate() {
        for batch in ranges.chunks(RANGES_PER_REQUEST) {
            let fetched = ctx.store.get_object_ranges_with(
                &idx.data.bucket,
                &data_parts[p],
                batch,
                &ctx.retry,
            )?;
            phase2.point_requests += u64::from(fetched.attempts);
            for slice in fetched.value {
                phase2.plain_bytes += slice.len() as u64;
                phase2.server_cpu_units += 1;
                let line = std::str::from_utf8(&slice)
                    .map_err(|_| Error::Corrupt("non-UTF8 record".into()))?;
                let fields = pushdown_format::csv::split_line(line.trim_end_matches(['\n', '\r']))?;
                let mut vals = Vec::with_capacity(fields.len());
                for (i, f) in fields.iter().enumerate() {
                    vals.push(Value::parse_typed(f, idx.data.schema.dtype_of(i))?);
                }
                rows.push(Row::new(vals));
            }
        }
    }

    let (schema, rows) = apply_projection(&idx.data, q, rows, &mut phase2)?;
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("index lookup", phase1);
    metrics.push_serial("row fetch (multi-range)", phase2);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Suggestion 2: the index lookup runs entirely inside the storage
/// service — one `select_indexed` request per partition, no per-row GETs
/// at all.
pub fn indexed_in_s3(ctx: &QueryContext, idx: &IndexTable, q: &FilterQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let mut refs = Vec::new();
    q.predicate.referenced_columns(&mut refs);
    if !(refs.len() == 1 && refs[0].eq_ignore_ascii_case(&idx.column)) {
        return Err(Error::Bind(format!(
            "indexed filter supports predicates on `{}` only",
            idx.column
        )));
    }
    let pred = super::filter::rename_column(&q.predicate, &idx.column, "value");
    let engine = extended_engine(ctx);

    let mut stats = PhaseStats::default();
    let mut rows = Vec::new();
    let index_parts = idx.index.partitions(&ctx.store);
    let data_parts = idx.data.partitions(&ctx.store);
    for (ikey, dkey) in index_parts.iter().zip(&data_parts) {
        let resp = engine.select_indexed(
            &idx.index.bucket,
            ikey,
            dkey,
            &idx.index.schema,
            &idx.data.schema,
            &pred,
        )?;
        stats.requests += u64::from(resp.stats.attempts.max(1));
        stats.s3_scanned_bytes += resp.stats.bytes_scanned;
        stats.select_returned_bytes += resp.stats.bytes_returned;
        stats.server_cpu_units += resp.stats.records_returned;
        rows.extend(resp.rows()?);
    }

    let (schema, rows) = apply_projection(&idx.data, q, rows, &mut stats)?;
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("index lookup in S3", stats);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

fn apply_projection(
    table: &Table,
    q: &FilterQuery,
    rows: Vec<Row>,
    stats: &mut PhaseStats,
) -> Result<(pushdown_common::Schema, Vec<Row>)> {
    match &q.projection {
        None => Ok((table.schema.clone(), rows)),
        Some(cols) => {
            let idx: Result<Vec<usize>> = cols.iter().map(|c| table.schema.resolve(c)).collect();
            let idx = idx?;
            Ok((
                table.schema.project(&idx),
                ops::project_rows(rows, &idx, stats),
            ))
        }
    }
}

/// Suggestion 3: a Bloom join whose probe predicate is the hex/`BIT_AT`
/// encoding — 4× smaller SQL, so filters that would degrade or fall back
/// under the 256 KB limit still fit. Mirrors
/// [`crate::algos::join::bloom`] otherwise.
pub fn bloom_binary(ctx: &QueryContext, q: &JoinQuery, fpr: f64) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let engine = extended_engine(ctx);
    // Build side.
    let left_cols = {
        let mut cols = q.left_proj.clone();
        if !cols.iter().any(|c| c.eq_ignore_ascii_case(&q.left_key)) {
            cols.push(q.left_key.clone());
        }
        cols
    };
    let left_stmt = SelectStmt {
        items: left_cols
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.clone()),
                alias: None,
            })
            .collect(),
        alias: None,
        where_clause: q.left_pred.clone(),
        limit: None,
    };
    let left = select_scan(ctx, &q.left, &left_stmt)?;
    let left_stats = left.stats;
    let lk = left.schema.resolve(&q.left_key)?;
    let mut keys = Vec::with_capacity(left.rows.len());
    for r in &left.rows {
        if !r[lk].is_null() {
            keys.push(r[lk].as_i64()?);
        }
    }

    // The binary encoding packs 4 bits per character, so the same SQL
    // budget admits ~4x more filter bits: plan with an inflated budget.
    let mut builder = ctx.bloom;
    builder.max_sql_bytes = ctx.bloom.max_sql_bytes.saturating_mul(4);
    let built = builder.build(&keys, fpr, &q.right_key);

    let right_cols = {
        let mut cols = q.right_proj.clone();
        if !cols.iter().any(|c| c.eq_ignore_ascii_case(&q.right_key)) {
            cols.push(q.right_key.clone());
        }
        cols
    };
    let (right, probe_label) = match built {
        Some((filter, _plan)) => {
            let bloom_pred = filter.sql_predicate_binary(&q.right_key);
            let pred = match &q.right_pred {
                Some(p) => Expr::and(p.clone(), bloom_pred),
                None => bloom_pred,
            };
            let right_stmt = SelectStmt {
                items: right_cols
                    .iter()
                    .map(|c| SelectItem::Expr {
                        expr: Expr::col(c.clone()),
                        alias: None,
                    })
                    .collect(),
                alias: None,
                where_clause: Some(pred),
                limit: None,
            };
            // Scan each partition through the *extended* engine.
            let mut stats = PhaseStats::default();
            let mut rows = Vec::new();
            let mut schema = None;
            for key in q.right.partitions(&ctx.store) {
                let resp = engine.select_stmt(
                    &q.right.bucket,
                    &key,
                    &right_stmt,
                    &q.right.schema,
                    q.right.format,
                )?;
                stats.requests += u64::from(resp.stats.attempts.max(1));
                stats.s3_scanned_bytes += resp.stats.bytes_scanned;
                stats.select_returned_bytes += resp.stats.bytes_returned;
                stats.server_cpu_units += resp.stats.records_returned;
                stats.expr_terms = stats.expr_terms.max(resp.stats.expr_terms);
                if schema.is_none() {
                    schema = Some(resp.output_schema.clone());
                }
                rows.extend(resp.rows()?);
            }
            (
                ScanResult {
                    schema: schema.expect("partitions"),
                    rows,
                    stats,
                },
                "bloom probe (binary)",
            )
        }
        None => {
            let right_stmt = SelectStmt {
                items: right_cols
                    .iter()
                    .map(|c| SelectItem::Expr {
                        expr: Expr::col(c.clone()),
                        alias: None,
                    })
                    .collect(),
                alias: None,
                where_clause: q.right_pred.clone(),
                limit: None,
            };
            (select_scan(ctx, &q.right, &right_stmt)?, "fallback probe")
        }
    };
    let right_stats = right.stats;

    // Local join + optional SUM, mirroring the stock bloom join's tail.
    let mut local = PhaseStats::default();
    let rk = right.schema.resolve(&q.right_key)?;
    let joined = ops::hash_join(left.rows, lk, right.rows, rk, &mut local);
    let join_schema = left.schema.join(&right.schema);
    let (schema, rows) = if let Some(sum_col) = &q.sum_column {
        let si = join_schema.resolve(sum_col)?;
        local.server_cpu_units += joined.len() as u64;
        let mut acc = AggFunc::Sum.accumulator();
        for r in &joined {
            acc.update(&r[si])?;
        }
        (
            pushdown_common::Schema::from_pairs(&[("sum", join_schema.dtype_of(si))]),
            vec![Row::new(vec![acc.finish()])],
        )
    } else {
        let mut out_idx = Vec::new();
        let mut fields = Vec::new();
        for c in &q.left_proj {
            let i = left.schema.resolve(c)?;
            out_idx.push(i);
            fields.push(left.schema.field(i).clone());
        }
        for c in &q.right_proj {
            let i = right.schema.resolve(c)?;
            out_idx.push(left.schema.len() + i);
            fields.push(right.schema.field(i).clone());
        }
        (
            pushdown_common::Schema::new(fields),
            ops::project_rows(joined, &out_idx, &mut local),
        )
    };

    let mut metrics = QueryMetrics::new();
    metrics.push_serial(format!("build: select {}", q.left.name), left_stats);
    metrics.push_serial(probe_label, right_stats);
    metrics.push_serial("local join", local);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Suggestion 4: group-by pushed natively — a single `GROUP BY` select
/// per partition, merged on the compute node. No distinct phase, no
/// CASE-WHEN chains (compare with [`crate::algos::groupby::s3_side`]).
pub fn s3_native_groupby(ctx: &QueryContext, q: &GroupByQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let engine = extended_engine(ctx);
    // Build the extended statement: group cols, then aggregates with AVG
    // decomposed so partials merge.
    let mut items: Vec<SelectItem> = q
        .group_cols
        .iter()
        .map(|c| SelectItem::Expr {
            expr: Expr::col(c.clone()),
            alias: None,
        })
        .collect();
    let mut merge_plan: Vec<(AggFunc, usize)> = Vec::new(); // (orig func, first col)
    let mut col = q.group_cols.len();
    for (f, c) in &q.aggs {
        match f {
            AggFunc::Avg => {
                items.push(SelectItem::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(c.clone())),
                    alias: None,
                });
                items.push(SelectItem::Agg {
                    func: AggFunc::Count,
                    arg: Some(Expr::col(c.clone())),
                    alias: None,
                });
                merge_plan.push((AggFunc::Avg, col));
                col += 2;
            }
            other => {
                items.push(SelectItem::Agg {
                    func: *other,
                    arg: Some(Expr::col(c.clone())),
                    alias: None,
                });
                merge_plan.push((*other, col));
                col += 1;
            }
        }
    }
    let ext = ExtendedSelect {
        select: SelectStmt {
            items,
            alias: None,
            where_clause: q.predicate.clone(),
            limit: None,
        },
        group_by: q.group_cols.clone(),
    };

    let mut stats = PhaseStats::default();
    let mut partials: Vec<Row> = Vec::new();
    for key in q.table.partitions(&ctx.store) {
        let resp =
            engine.select_grouped(&q.table.bucket, &key, &ext, &q.table.schema, q.table.format)?;
        stats.requests += u64::from(resp.stats.attempts.max(1));
        stats.s3_scanned_bytes += resp.stats.bytes_scanned;
        stats.select_returned_bytes += resp.stats.bytes_returned;
        stats.server_cpu_units += resp.stats.records_returned;
        stats.expr_terms = stats.expr_terms.max(resp.stats.expr_terms);
        partials.extend(resp.rows()?);
    }

    // Merge partials per group, then finalize AVG columns.
    let gw = q.group_cols.len();
    let merge_funcs: Vec<AggFunc> = merge_plan
        .iter()
        .flat_map(|(f, _)| match f {
            AggFunc::Avg => vec![AggFunc::Sum, AggFunc::Count],
            other => vec![*other],
        })
        .collect();
    let merged = ops::merge_group_rows(vec![partials], gw, &merge_funcs, &mut stats)?;
    let rows: Vec<Row> = merged
        .into_iter()
        .map(|r| {
            let mut vals: Vec<Value> = r.values()[..gw].to_vec();
            for (f, c) in &merge_plan {
                match f {
                    AggFunc::Avg => {
                        let sum = &r[gw + (*c - gw)];
                        let count = &r[gw + (*c - gw) + 1];
                        let v = match (sum.is_null(), count.as_i64().unwrap_or(0)) {
                            (true, _) | (_, 0) => Value::Null,
                            _ => Value::Float(
                                sum.as_f64().unwrap_or(0.0) / count.as_i64().unwrap() as f64,
                            ),
                        };
                        vals.push(v);
                    }
                    _ => vals.push(r[*c].clone()),
                }
            }
            Row::new(vals)
        })
        .collect();

    let mut metrics = QueryMetrics::new();
    metrics.push_serial("s3-native group-by (suggestion 4)", stats);
    Ok(QueryOutput {
        schema: q.output_schema()?,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::{filter, groupby, join};
    use crate::catalog::upload_csv_table;
    use crate::index::build_index;
    use pushdown_common::{DataType, Schema};
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_expr;

    fn filter_setup(n: usize) -> (QueryContext, Table, IndexTable) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
        let rows: Vec<Row> = (0..n as i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("payload-{i}"))]))
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, n / 4 + 1).unwrap();
        let ctx = QueryContext::new(store);
        let idx = build_index(&ctx, &t, "k").unwrap();
        (ctx, t, idx)
    }

    #[test]
    fn suggestion1_multirange_same_rows_fewer_requests() {
        let (ctx, t, idx) = filter_setup(2_000);
        let q = filter::FilterQuery {
            table: t,
            predicate: parse_expr("k >= 100 AND k < 700").unwrap(),
            projection: None,
        };
        let stock = filter::indexed(&ctx, &idx, &q).unwrap();
        let multi = indexed_multirange(&ctx, &idx, &q).unwrap();
        assert_eq!(stock.rows, multi.rows);
        let stock_u = stock.metrics.usage();
        let multi_u = multi.metrics.usage();
        // 600 per-row GETs collapse into ceil-per-batch requests.
        assert_eq!(stock_u.requests, 4 + 600);
        assert!(
            multi_u.requests < stock_u.requests / 50,
            "{}",
            multi_u.requests
        );
        // Same bytes either way.
        assert_eq!(stock_u.plain_bytes, multi_u.plain_bytes);
        // And the model rewards it.
        assert!(multi.runtime(&ctx) < stock.runtime(&ctx));
    }

    #[test]
    fn suggestion2_index_in_s3_same_rows_one_request_per_partition() {
        let (ctx, t, idx) = filter_setup(2_000);
        let q = filter::FilterQuery {
            table: t.clone(),
            predicate: parse_expr("k >= 100 AND k < 700").unwrap(),
            projection: Some(vec!["s".into()]),
        };
        let stock = filter::indexed(&ctx, &idx, &q).unwrap();
        let in_s3 = indexed_in_s3(&ctx, &idx, &q).unwrap();
        assert_eq!(stock.rows, in_s3.rows);
        assert_eq!(
            in_s3.metrics.usage().requests,
            t.partitions(&ctx.store).len() as u64
        );
        assert_eq!(in_s3.metrics.usage().plain_bytes, 0);
    }

    fn join_setup() -> (QueryContext, JoinQuery) {
        let store = S3Store::new();
        let ls = Schema::from_pairs(&[("lk", DataType::Int), ("bal", DataType::Float)]);
        let lrows: Vec<Row> = (0..400)
            .map(|i| Row::new(vec![Value::Int(i), Value::Float((i % 100) as f64 - 50.0)]))
            .collect();
        let rs = Schema::from_pairs(&[("rk", DataType::Int), ("price", DataType::Float)]);
        let rrows: Vec<Row> = (0..4_000)
            .map(|i| Row::new(vec![Value::Int(i % 500), Value::Float(i as f64)]))
            .collect();
        let left = upload_csv_table(&store, "b", "l", &ls, &lrows, 200).unwrap();
        let right = upload_csv_table(&store, "b", "r", &rs, &rrows, 1_000).unwrap();
        let ctx = QueryContext::new(store);
        let q = JoinQuery {
            left,
            right,
            left_key: "lk".into(),
            right_key: "rk".into(),
            left_pred: Some(parse_expr("bal < -40").unwrap()),
            right_pred: None,
            left_proj: vec!["lk".into()],
            right_proj: vec!["price".into()],
            sum_column: Some("price".into()),
        };
        (ctx, q)
    }

    #[test]
    fn suggestion3_binary_bloom_matches_and_shrinks_sql() {
        let (ctx, q) = join_setup();
        let stock = join::bloom(&ctx, &q, 0.01).unwrap();
        let binary = bloom_binary(&ctx, &q, 0.01).unwrap();
        assert_eq!(stock.rows.len(), 1);
        let a = stock.rows[0][0].as_f64().unwrap();
        let b = binary.rows[0][0].as_f64().unwrap();
        assert!((a - b).abs() < 1e-6);
        // The stock engine refuses BIT_AT.
        let mut f = pushdown_bloom::BloomFilter::with_rate(10, 0.1, 1);
        f.insert(3);
        let sql = format!(
            "SELECT rk FROM S3Object WHERE {}",
            f.sql_predicate_binary("rk")
        );
        let err = ctx
            .engine
            .select(
                "b",
                "r/part-00000.csv",
                &sql,
                &q.right.schema,
                q.right.format,
            )
            .unwrap_err();
        assert_eq!(err.code(), "SelectRejected");
    }

    #[test]
    fn suggestion3_binary_bloom_survives_where_string_bloom_degrades() {
        let (mut ctx, q) = join_setup();
        // A budget the string filter cannot meet at the requested rate.
        ctx.bloom.max_sql_bytes = 1_200;
        let (_, outcome) = join::bloom_with_outcome(&ctx, &q, 0.001).unwrap();
        assert!(
            matches!(
                outcome,
                join::BloomOutcome::Degraded { .. } | join::BloomOutcome::FellBack
            ),
            "{outcome:?}"
        );
        // The 4x denser binary encoding still fits and still agrees.
        let binary = bloom_binary(&ctx, &q, 0.001).unwrap();
        let reference = join::baseline(&ctx, &q).unwrap();
        assert!(
            (binary.rows[0][0].as_f64().unwrap() - reference.rows[0][0].as_f64().unwrap()).abs()
                < 1e-6
        );
    }

    #[test]
    fn suggestion4_native_groupby_matches_case_when() {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Float)]);
        let rows: Vec<Row> = (0..2_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i % 37) as i64),
                    Value::Float((i as f64 * 1.3) % 211.0),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 700).unwrap();
        let ctx = QueryContext::new(store);
        let q = GroupByQuery {
            table: t,
            group_cols: vec!["g".into()],
            aggs: vec![
                (AggFunc::Sum, "v".into()),
                (AggFunc::Count, "v".into()),
                (AggFunc::Avg, "v".into()),
                (AggFunc::Min, "v".into()),
            ],
            predicate: Some(parse_expr("v > 10").unwrap()),
        };
        let case_when = groupby::s3_side(&ctx, &q).unwrap();
        let native = s3_native_groupby(&ctx, &q).unwrap();
        assert_eq!(case_when.rows.len(), native.rows.len());
        for (a, b) in case_when.rows.iter().zip(&native.rows) {
            for (x, y) in a.values().iter().zip(b.values()) {
                match (x, y) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() < 1e-6 * (1.0 + fx.abs()))
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
        // The native statement is tiny: far fewer expression terms reach
        // the scanner, so the modeled scan is faster.
        let native_terms = native.metrics.groups[0].phases[0].stats.expr_terms;
        let case_terms = case_when.metrics.groups[1].phases[0].stats.expr_terms;
        assert!(
            native_terms * 5 < case_terms,
            "native {native_terms} vs case-when {case_terms}"
        );
        assert!(native.runtime(&ctx) < case_when.runtime(&ctx));
    }

    #[test]
    fn stock_engine_refuses_native_groupby() {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[("g", DataType::Int)]);
        let rows = vec![Row::new(vec![Value::Int(1)])];
        upload_csv_table(&store, "b", "t", &schema, &rows, 10).unwrap();
        let ctx = QueryContext::new(store);
        let ext = pushdown_sql::parser::parse_select_extended(
            "SELECT g, COUNT(*) FROM S3Object GROUP BY g",
        )
        .unwrap();
        let err = ctx
            .engine
            .select_grouped(
                "b",
                "t/part-00000.csv",
                &ext,
                &schema,
                pushdown_select::InputFormat::Csv,
            )
            .unwrap_err();
        assert_eq!(err.code(), "SelectRejected");
    }
}
