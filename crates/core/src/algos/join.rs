//! Join algorithms (paper §V).
//!
//! Hash joins in two phases: build on the smaller table, probe with the
//! bigger. Three variants differ in what they push into S3:
//!
//! * [`baseline`] — no pushdown: both tables load in full over plain
//!   GETs, everything happens on the compute node;
//! * [`filtered`] — base-table predicates *and projections* push into S3
//!   Select; the join itself stays local;
//! * [`bloom`] — after the build phase, the build side's join keys are
//!   encoded into a Bloom filter which is **shipped inside the probe
//!   side's S3 Select predicate** (§V-A2), so rows that cannot join are
//!   never returned. Falls back per §V-B1 when the filter cannot fit the
//!   256 KB SQL limit: first degrade the false-positive rate, then revert
//!   to a filtered join — but *serially* (the build side has already been
//!   loaded by the time the decision is made), which is why a degraded
//!   Bloom join underperforms a true filtered join in the paper.

use crate::catalog::Table;
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{plain_scan_streamed, select_scan, ScanResult};
use pushdown_bloom::BloomPlan;
use pushdown_common::perf::PhaseStats;
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_sql::bind::Binder;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// A two-table equi-join with per-side predicates and projections.
///
/// Projections list the columns each side contributes to the output (the
/// join keys need not be included; they are added internally as needed).
/// If `sum_column` is set, the output is a single row `SUM(col)` over the
/// join result — the shape of the paper's evaluation query (Listing 2:
/// `SELECT SUM(o_totalprice) FROM customer, orders WHERE …`).
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Build side (the smaller table; `customer` in the paper).
    pub left: Table,
    /// Probe side (the bigger table; `orders` in the paper).
    pub right: Table,
    pub left_key: String,
    pub right_key: String,
    pub left_pred: Option<Expr>,
    pub right_pred: Option<Expr>,
    pub left_proj: Vec<String>,
    pub right_proj: Vec<String>,
    pub sum_column: Option<String>,
}

impl JoinQuery {
    /// Columns a side must fetch: projection ∪ {key}.
    fn needed(proj: &[String], key: &str) -> Vec<String> {
        let mut cols: Vec<String> = proj.to_vec();
        if !cols.iter().any(|c| c.eq_ignore_ascii_case(key)) {
            cols.push(key.to_string());
        }
        cols
    }

    fn select_stmt(cols: &[String], pred: Option<&Expr>) -> SelectStmt {
        SelectStmt {
            items: cols
                .iter()
                .map(|c| SelectItem::Expr {
                    expr: Expr::col(c.clone()),
                    alias: None,
                })
                .collect(),
            alias: None,
            where_clause: pred.cloned(),
            limit: None,
        }
    }
}

/// Common tail: local filter (if still needed), projection bookkeeping,
/// hash join, optional final SUM.
struct JoinFinisher<'a> {
    q: &'a JoinQuery,
}

impl JoinFinisher<'_> {
    /// `left`/`right` carry at least `needed()` columns under the given
    /// schemas. Returns (schema, rows, cpu-stats of the local join).
    fn finish(
        &self,
        left: ScanResult,
        right: ScanResult,
        stats: &mut PhaseStats,
    ) -> Result<(Schema, Vec<Row>)> {
        let q = self.q;
        let lk = left.schema.resolve(&q.left_key)?;
        let rk = right.schema.resolve(&q.right_key)?;
        let joined = ops::hash_join(left.rows, lk, right.rows, rk, stats);
        let join_schema = left.schema.join(&right.schema);

        // Output projection: left_proj ++ right_proj (resolved against the
        // concatenated schema; right columns come after left's width).
        let mut out_idx = Vec::new();
        let mut fields = Vec::new();
        for c in &q.left_proj {
            let i = left.schema.resolve(c)?;
            out_idx.push(i);
            fields.push(left.schema.field(i).clone());
        }
        for c in &q.right_proj {
            let i = right.schema.resolve(c)?;
            out_idx.push(left.schema.len() + i);
            fields.push(right.schema.field(i).clone());
        }

        if let Some(sum_col) = &q.sum_column {
            let si = join_schema.resolve(sum_col)?;
            stats.server_cpu_units += joined.len() as u64;
            let mut acc = pushdown_sql::agg::AggFunc::Sum.accumulator();
            for r in &joined {
                acc.update(&r[si])?;
            }
            let schema = Schema::from_pairs(&[("sum", join_schema.dtype_of(si))]);
            return Ok((schema, vec![Row::new(vec![acc.finish()])]));
        }

        let rows = ops::project_rows(joined, &out_idx, stats);
        Ok((Schema::new(fields), rows))
    }
}

/// Stream one side's plain scan, applying its local predicate to every
/// batch as it arrives so only passing rows are ever resident. Returns
/// the filtered scan plus the filter's CPU footprint (accounted to the
/// local-join phase, as when filtering ran after the load).
fn plain_scan_filtered(
    ctx: &QueryContext,
    table: &Table,
    pred: Option<&Expr>,
) -> Result<(ScanResult, PhaseStats)> {
    let bound = match pred {
        Some(p) => Some(Binder::new(&table.schema).bind_expr(p)?),
        None => None,
    };
    let mut filter_stats = PhaseStats::default();
    let mut rows = Vec::new();
    let summary = plain_scan_streamed(ctx, table, |batch| {
        match &bound {
            Some(b) => rows.extend(ops::filter_rows(batch.rows, b, &mut filter_stats)?),
            None => rows.extend(batch.rows),
        }
        Ok(())
    })?;
    Ok((
        ScanResult {
            schema: summary.schema,
            rows,
            stats: summary.stats,
        },
        filter_stats,
    ))
}

/// Baseline join: full plain loads of both tables, all work local. The
/// two loads stream concurrently, filtering batch-at-a-time.
pub fn baseline(ctx: &QueryContext, q: &JoinQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let ((left, left_filter), (right, right_filter)) = parallel_scans(
        || plain_scan_filtered(ctx, &q.left, q.left_pred.as_ref()),
        || plain_scan_filtered(ctx, &q.right, q.right_pred.as_ref()),
    )?;
    let mut local = left_filter;
    local.merge(&right_filter);
    let left_stats = left.stats;
    let right_stats = right.stats;
    let finisher = JoinFinisher { q };
    let (schema, rows) = finisher.finish(left, right, &mut local)?;
    let mut metrics = QueryMetrics::new();
    metrics.push_parallel(vec![
        (format!("load {}", q.left.name), left_stats),
        (format!("load {}", q.right.name), right_stats),
    ]);
    metrics.push_serial("local join", local);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Filtered join: predicates + projections pushed to S3, join local.
pub fn filtered(ctx: &QueryContext, q: &JoinQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let left_cols = JoinQuery::needed(&q.left_proj, &q.left_key);
    let right_cols = JoinQuery::needed(&q.right_proj, &q.right_key);
    let left_stmt = JoinQuery::select_stmt(&left_cols, q.left_pred.as_ref());
    let right_stmt = JoinQuery::select_stmt(&right_cols, q.right_pred.as_ref());
    let (left, right) = parallel_scans(
        || select_scan(ctx, &q.left, &left_stmt),
        || select_scan(ctx, &q.right, &right_stmt),
    )?;
    let left_stats = left.stats;
    let right_stats = right.stats;
    let mut local = PhaseStats::default();
    let finisher = JoinFinisher { q };
    let (schema, rows) = finisher.finish(left, right, &mut local)?;
    let mut metrics = QueryMetrics::new();
    metrics.push_parallel(vec![
        (format!("select {}", q.left.name), left_stats),
        (format!("select {}", q.right.name), right_stats),
    ]);
    metrics.push_serial("local join", local);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// How the Bloom join actually executed (recorded for experiments).
#[derive(Debug, Clone, PartialEq)]
pub enum BloomOutcome {
    /// Probe side filtered at the requested FPR.
    Applied { fpr: f64, bits: u64, hashes: u32 },
    /// FPR degraded to fit the 256 KB SQL limit.
    Degraded { requested: f64, fpr: f64 },
    /// No filter fit; reverted to (serial) filtered join.
    FellBack,
}

/// Bloom join (paper §V-A2) at the requested false-positive rate.
pub fn bloom(ctx: &QueryContext, q: &JoinQuery, fpr: f64) -> Result<QueryOutput> {
    Ok(bloom_with_outcome(ctx, q, fpr)?.0)
}

/// Bloom join, also reporting how it executed.
pub fn bloom_with_outcome(
    ctx: &QueryContext,
    q: &JoinQuery,
    fpr: f64,
) -> Result<(QueryOutput, BloomOutcome)> {
    let ctx = &ctx.scoped();
    // ---- Build phase: load the (filtered, projected) build side.
    let left_cols = JoinQuery::needed(&q.left_proj, &q.left_key);
    let left_stmt = JoinQuery::select_stmt(&left_cols, q.left_pred.as_ref());
    let left = select_scan(ctx, &q.left, &left_stmt)?;
    let left_stats = left.stats;

    // Join keys for the filter. The paper's implementation "supports only
    // integer join attributes" (§V-A2) — same here.
    let lk = left.schema.resolve(&q.left_key)?;
    if left.schema.dtype_of(lk) != pushdown_common::DataType::Int {
        return Err(Error::Bind(format!(
            "Bloom join requires an integer join key, `{}` is {}",
            q.left_key,
            left.schema.dtype_of(lk)
        )));
    }
    let mut keys = Vec::with_capacity(left.rows.len());
    for r in &left.rows {
        match &r[lk] {
            Value::Null => {}
            v => keys.push(v.as_i64()?),
        }
    }

    // ---- Plan the filter under the SQL size limit.
    let built = ctx.bloom.build(&keys, fpr, &q.right_key);
    let right_cols = JoinQuery::needed(&q.right_proj, &q.right_key);

    let (right, outcome, probe_label) = match built {
        Some((filter, plan)) => {
            let bloom_pred = filter.sql_predicate(&q.right_key);
            let pred = match &q.right_pred {
                Some(p) => Expr::and(p.clone(), bloom_pred),
                None => bloom_pred,
            };
            let right_stmt = JoinQuery::select_stmt(&right_cols, Some(&pred));
            let right = select_scan(ctx, &q.right, &right_stmt)?;
            let outcome = match plan {
                BloomPlan::AsRequested { fpr } => BloomOutcome::Applied {
                    fpr,
                    bits: filter.bit_len(),
                    hashes: filter.num_hashes(),
                },
                BloomPlan::Degraded { requested, fpr } => BloomOutcome::Degraded { requested, fpr },
                BloomPlan::Fallback => unreachable!("build() returns None on fallback"),
            };
            (right, outcome, "bloom probe")
        }
        None => {
            // §V-B1 fallback: behave like a filtered join, but the two
            // scans are forced serial — the build side was already loaded
            // before the decision could be made.
            let right_stmt = JoinQuery::select_stmt(&right_cols, q.right_pred.as_ref());
            let right = select_scan(ctx, &q.right, &right_stmt)?;
            (right, BloomOutcome::FellBack, "fallback probe (no bloom)")
        }
    };
    let right_stats = right.stats;

    let mut local = PhaseStats::default();
    let finisher = JoinFinisher { q };
    let (schema, rows) = finisher.finish(left, right, &mut local)?;

    let mut metrics = QueryMetrics::new();
    metrics.push_serial(format!("build: select {}", q.left.name), left_stats);
    metrics.push_serial(probe_label, right_stats);
    metrics.push_serial("local join", local);
    Ok((
        QueryOutput {
            schema,
            rows,
            metrics,
            billed: ctx.billed(),
        },
        outcome,
    ))
}

/// Cost-based join: predict every applicable variant's footprint
/// ([`crate::cost::join_candidates`]) and execute the cheapest by
/// predicted dollars. Returns the output plus the chosen algorithm name
/// (`"baseline"`, `"filtered"`, `"bloom"`, `"bloom-binary"`).
pub fn adaptive(ctx: &QueryContext, q: &JoinQuery) -> Result<(QueryOutput, &'static str)> {
    let candidates = crate::cost::join_candidates(ctx, q);
    let chosen = &candidates[crate::cost::cheapest(&candidates, ctx)];
    let algorithm = chosen.algorithm;
    let out = match algorithm {
        "filtered" => filtered(ctx, q)?,
        "bloom" => bloom(ctx, q, 0.01)?,
        "bloom-binary" => crate::algos::whatif::bloom_binary(ctx, q, 0.01)?,
        _ => baseline(ctx, q)?,
    };
    Ok((out, algorithm))
}

/// Run two scans concurrently (they are independent I/O).
fn parallel_scans<L, R, A, B>(l: L, r: R) -> Result<(A, B)>
where
    A: Send,
    B: Send,
    L: FnOnce() -> Result<A> + Send,
    R: FnOnce() -> Result<B> + Send,
{
    let mut left = None;
    let mut right = None;
    std::thread::scope(|s| {
        let lh = s.spawn(l);
        right = Some(r());
        left = Some(lh.join().expect("left scan thread panicked"));
    });
    Ok((left.unwrap()?, right.unwrap()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::DataType;
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_expr;

    /// A miniature customer ⋈ orders setup mirroring the paper's Listing 2.
    fn setup() -> (QueryContext, JoinQuery) {
        let store = S3Store::new();
        let cust_schema =
            Schema::from_pairs(&[("c_custkey", DataType::Int), ("c_acctbal", DataType::Float)]);
        let customers: Vec<Row> = (0..200)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Float((i as f64 * 37.0) % 2000.0 - 1000.0),
                ])
            })
            .collect();
        let orders_schema = Schema::from_pairs(&[
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_totalprice", DataType::Float),
            ("o_orderdate", DataType::Date),
        ]);
        let orders: Vec<Row> = (0..2000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 250), // some custkeys have no customer
                    Value::Float((i as f64 * 13.0) % 500.0),
                    Value::Date(8000 + (i % 1000) as i32),
                ])
            })
            .collect();
        let left = upload_csv_table(&store, "b", "customer", &cust_schema, &customers, 64).unwrap();
        let right = upload_csv_table(&store, "b", "orders", &orders_schema, &orders, 256).unwrap();
        let ctx = QueryContext::new(store);
        let q = JoinQuery {
            left,
            right,
            left_key: "c_custkey".into(),
            right_key: "o_custkey".into(),
            left_pred: Some(parse_expr("c_acctbal <= -800").unwrap()),
            right_pred: None,
            left_proj: vec!["c_custkey".into()],
            right_proj: vec!["o_totalprice".into()],
            sum_column: Some("o_totalprice".into()),
        };
        (ctx, q)
    }

    fn total(out: &QueryOutput) -> f64 {
        assert_eq!(out.rows.len(), 1);
        out.rows[0][0].as_f64().unwrap()
    }

    #[test]
    fn all_three_algorithms_agree_on_the_answer() {
        let (ctx, q) = setup();
        let a = baseline(&ctx, &q).unwrap();
        let b = filtered(&ctx, &q).unwrap();
        let c = bloom(&ctx, &q, 0.01).unwrap();
        assert!((total(&a) - total(&b)).abs() < 1e-6);
        assert!((total(&a) - total(&c)).abs() < 1e-6);
        assert!(total(&a) > 0.0);
    }

    #[test]
    fn row_outputs_agree_too() {
        let (ctx, mut q) = setup();
        q.sum_column = None;
        let mut a = baseline(&ctx, &q).unwrap();
        let mut b = filtered(&ctx, &q).unwrap();
        let mut c = bloom(&ctx, &q, 0.05).unwrap();
        for out in [&mut a, &mut b, &mut c] {
            out.rows
                .sort_by(|x, y| x[0].total_cmp(&y[0]).then(x[1].total_cmp(&y[1])));
        }
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rows, c.rows);
        assert_eq!(a.schema.names(), vec!["c_custkey", "o_totalprice"]);
    }

    #[test]
    fn bloom_join_returns_fewer_probe_bytes() {
        let (ctx, q) = setup();
        let b = filtered(&ctx, &q).unwrap();
        let c = bloom(&ctx, &q, 0.01).unwrap();
        // The Bloom filter suppresses non-joining orders rows at S3, so
        // far fewer bytes come back on the probe side.
        assert!(
            c.metrics.usage().select_returned_bytes * 3 < b.metrics.usage().select_returned_bytes,
            "bloom {} vs filtered {}",
            c.metrics.usage().select_returned_bytes,
            b.metrics.usage().select_returned_bytes
        );
    }

    #[test]
    fn bloom_outcome_reports_geometry() {
        let (ctx, q) = setup();
        let (_, outcome) = bloom_with_outcome(&ctx, &q, 0.01).unwrap();
        match outcome {
            BloomOutcome::Applied { fpr, bits, hashes } => {
                assert_eq!(fpr, 0.01);
                assert!(bits > 0);
                assert_eq!(hashes, 7); // log2(1/0.01) ≈ 6.6 → 7
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bloom_falls_back_when_sql_cannot_fit() {
        let (mut ctx, q) = setup();
        ctx.bloom.max_sql_bytes = 64; // nothing fits
        let (out, outcome) = bloom_with_outcome(&ctx, &q, 0.01).unwrap();
        assert_eq!(outcome, BloomOutcome::FellBack);
        // Still correct.
        let want = filtered(&ctx, &q).unwrap();
        assert!((total(&out) - total(&want)).abs() < 1e-6);
        // And serial: build then probe as separate groups (3 groups total),
        // while filtered runs its scans in one parallel group (2 groups).
        assert_eq!(out.metrics.groups.len(), 3);
        assert_eq!(want.metrics.groups.len(), 2);
    }

    #[test]
    fn bloom_requires_integer_keys() {
        let (ctx, mut q) = setup();
        // Retarget the join key at a float column.
        q.left_key = "c_acctbal".into();
        q.right_key = "o_totalprice".into();
        assert!(bloom(&ctx, &q, 0.01).is_err());
    }

    #[test]
    fn right_predicate_pushes_in_filtered_and_bloom() {
        let (ctx, mut q) = setup();
        q.right_pred = Some(parse_expr("o_orderdate < DATE '1992-01-01'").unwrap());
        let a = baseline(&ctx, &q).unwrap();
        let b = filtered(&ctx, &q).unwrap();
        let c = bloom(&ctx, &q, 0.01).unwrap();
        assert!((total(&a) - total(&b)).abs() < 1e-6);
        assert!((total(&a) - total(&c)).abs() < 1e-6);
        // Selective date predicate => filtered returns fewer probe bytes
        // than the unfiltered variant did.
        let unfiltered = {
            let mut q2 = q.clone();
            q2.right_pred = None;
            filtered(&ctx, &q2).unwrap()
        };
        assert!(
            b.metrics.usage().select_returned_bytes
                < unfiltered.metrics.usage().select_returned_bytes
        );
    }

    #[test]
    fn adaptive_join_agrees_and_never_measurably_loses() {
        let (ctx, q) = setup();
        let (out, algorithm) = adaptive(&ctx, &q).unwrap();
        assert!(
            ["baseline", "filtered", "bloom"].contains(&algorithm),
            "{algorithm}"
        );
        let others = [
            baseline(&ctx, &q).unwrap(),
            filtered(&ctx, &q).unwrap(),
            bloom(&ctx, &q, 0.01).unwrap(),
        ];
        assert!((total(&out) - total(&others[0])).abs() < 1e-6);
        let cost = |o: &QueryOutput| o.metrics.cost(&ctx.model, &ctx.pricing).total();
        let min = others.iter().map(cost).fold(f64::INFINITY, f64::min);
        assert!(
            cost(&out) <= min * 1.10,
            "adaptive {algorithm} ${:.6} vs min ${min:.6}",
            cost(&out)
        );
    }

    #[test]
    fn empty_build_side_yields_empty_join() {
        let (ctx, mut q) = setup();
        q.left_pred = Some(parse_expr("c_acctbal < -99999").unwrap());
        q.sum_column = None;
        for out in [
            baseline(&ctx, &q).unwrap(),
            filtered(&ctx, &q).unwrap(),
            bloom(&ctx, &q, 0.01).unwrap(),
        ] {
            assert!(out.rows.is_empty());
        }
    }
}
