//! Top-K algorithms (paper §VII).
//!
//! * [`server_side`] — load the table, keep a K-heap locally;
//! * [`sampling`] — two phases: (1) sample `S` rows of the ORDER BY
//!   column via S3 Select `LIMIT`, take the K-th order statistic as a
//!   *threshold*; (2) push `WHERE col <= threshold` to S3 and heap only
//!   the survivors. The sample always contains K records at or below the
//!   threshold, so the final answer is exact.
//!
//! The sampling phase **stripes** its `LIMIT` across partitions
//! (per-partition shares, [`select_scan_striped_limit`]) rather than
//! taking the table's first `S` rows: a plain `LIMIT S` is a storage-
//! order *prefix*, and on input sorted opposite to the query order the
//! phase-1 threshold degenerates until phase 2 re-fetches nearly the
//! whole table. With striping every partition contributes, so phase-2
//! traffic stays bounded regardless of how the table is ordered (the
//! regression test below pins this).
//!
//! The paper's §VII-B analysis gives the traffic-optimal sample size
//! `S* = sqrt(K·N/α)` where `α` is the fraction of each record the
//! sampling phase must read — implemented by [`optimal_sample_size`] and
//! validated against measurement in the Fig 8 harness.

use crate::catalog::Table;
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{
    plain_scan_columnar_streamed, plain_scan_streamed, select_scan_streamed,
    select_scan_striped_limit,
};
use pushdown_common::perf::PhaseStats;
use pushdown_common::{Result, Value};
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// A top-K query: `SELECT * FROM t ORDER BY col ASC|DESC LIMIT k`.
#[derive(Debug, Clone)]
pub struct TopKQuery {
    pub table: Table,
    pub order_col: String,
    pub k: usize,
    pub asc: bool,
}

/// The paper's optimal sample size `S* = sqrt(K·N/α)` (§VII-B), clamped
/// to `[10·K, N]` so the sample always dominates K and never exceeds the
/// table.
pub fn optimal_sample_size(k: usize, n: u64, alpha: f64) -> usize {
    let s = ((k as f64) * (n as f64) / alpha.clamp(0.001, 1.0)).sqrt();
    let lo = (10 * k.max(1)) as f64;
    s.max(lo).min(n as f64).ceil() as usize
}

/// Server-side top-K: full load plus a local heap — streamed. Scan
/// batches feed the K-heap directly, so at most K rows plus one batch
/// are resident at any moment.
pub fn server_side(ctx: &QueryContext, q: &TopKQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let col = q.table.schema.resolve(&q.order_col)?;
    let mut op_stats = PhaseStats::default();
    let mut heap = ops::TopKAccumulator::new(col, q.k, q.asc);
    let summary = if ctx.columnar_exec && q.table.format == pushdown_select::InputFormat::Columnar {
        plain_scan_columnar_streamed(ctx, &q.table, |batch| {
            heap.push_columnar(&batch, &ops::full_selection(batch.len()), &mut op_stats);
            Ok(())
        })?
    } else {
        plain_scan_streamed(ctx, &q.table, |batch| {
            heap.push_batch(&batch.rows, &mut op_stats);
            Ok(())
        })?
    };
    let rows = heap.finish(&mut op_stats);
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side top-k", stats);
    Ok(QueryOutput {
        schema: summary.schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Sampling-based top-K (paper §VII-A). `sample_size = None` uses the
/// analytic optimum with `alpha` = (order column width)/(row width),
/// approximated by column count.
pub fn sampling(
    ctx: &QueryContext,
    q: &TopKQuery,
    sample_size: Option<usize>,
) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let alpha = 1.0 / q.table.schema.len().max(1) as f64;
    let s = sample_size
        .unwrap_or_else(|| optimal_sample_size(q.k, q.table.row_count, alpha))
        .max(q.k);

    // ---- Phase 1: sample S values of the order column, striped across
    // partitions so the sample is not a storage-order prefix.
    let sample_stmt = SelectStmt {
        items: vec![SelectItem::Expr {
            expr: Expr::col(q.order_col.clone()),
            alias: None,
        }],
        alias: None,
        where_clause: None,
        limit: None, // per-partition shares are applied by the striped scan
    };
    let sample = select_scan_striped_limit(ctx, &q.table, &sample_stmt, s)?;
    let mut phase1 = sample.stats;

    // K-th order statistic of the sample = threshold. If the sample holds
    // fewer than K rows the whole table does too; threshold = none (scan
    // everything).
    let mut vals: Vec<Value> = sample
        .rows
        .iter()
        .map(|r| r[0].clone())
        .filter(|v| !v.is_null())
        .collect();
    phase1.server_cpu_units += vals.len() as u64;
    vals.sort_by(|a, b| {
        let o = a.total_cmp(b);
        if q.asc {
            o
        } else {
            o.reverse()
        }
    });
    let threshold: Option<Value> = if vals.len() >= q.k && q.k > 0 {
        Some(vals[q.k - 1].clone())
    } else {
        None
    };

    // ---- Phase 2: fetch rows at or inside the threshold, heap locally.
    let pred = threshold.as_ref().map(|t| {
        let col = Expr::col(q.order_col.clone());
        let lit = Expr::Literal(t.clone());
        if q.asc {
            Expr::lt_eq(col, lit)
        } else {
            Expr::gt_eq(col, lit)
        }
    });
    let scan_stmt = SelectStmt {
        items: vec![SelectItem::Wildcard],
        alias: None,
        where_clause: pred,
        limit: None,
    };
    // Stream the scanning phase: survivors feed the K-heap batch-at-a-
    // time instead of materializing first.
    let col = q.table.schema.resolve(&q.order_col)?;
    let mut op_stats = PhaseStats::default();
    let mut heap = ops::TopKAccumulator::new(col, q.k, q.asc);
    let summary = select_scan_streamed(ctx, &q.table, &scan_stmt, |batch| {
        heap.push_batch(&batch.rows, &mut op_stats);
        Ok(())
    })?;
    let rows = heap.finish(&mut op_stats);
    let mut phase2 = summary.stats;
    phase2.merge(&op_stats);

    let mut metrics = QueryMetrics::new();
    metrics.push_serial("sampling phase", phase1);
    metrics.push_serial("scanning phase", phase2);
    Ok(QueryOutput {
        schema: summary.schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::{DataType, Row, Schema};
    use pushdown_s3::S3Store;

    fn setup(n: usize) -> (QueryContext, TopKQuery) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("price", DataType::Float),
            ("pad", DataType::Str),
        ]);
        // Pseudo-random prices, deterministic; no natural ordering with id.
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let price = ((i as u64).wrapping_mul(2654435761) % 1_000_000) as f64 / 100.0;
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Float(price),
                    Value::Str(format!("pad-{i:08}")),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "lineitem", &schema, &rows, 512).unwrap();
        (
            QueryContext::new(store),
            TopKQuery {
                table: t,
                order_col: "price".into(),
                k: 25,
                asc: true,
            },
        )
    }

    #[test]
    fn sampling_equals_server_side() {
        let (ctx, q) = setup(3000);
        let a = server_side(&ctx, &q).unwrap();
        let b = sampling(&ctx, &q, None).unwrap();
        assert_eq!(a.rows.len(), 25);
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x[1], y[1], "order keys must agree");
        }
    }

    #[test]
    fn descending_order_works() {
        let (ctx, mut q) = setup(2000);
        q.asc = false;
        let a = server_side(&ctx, &q).unwrap();
        let b = sampling(&ctx, &q, Some(400)).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x[1], y[1]);
        }
        // Top element is the max.
        let max = (0..2000)
            .map(|i| ((i as u64).wrapping_mul(2654435761) % 1_000_000) as f64 / 100.0)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(a.rows[0][1], Value::Float(max));
    }

    #[test]
    fn sampling_correct_across_sample_sizes() {
        let (ctx, q) = setup(4000);
        let want = server_side(&ctx, &q).unwrap();
        for s in [25usize, 100, 500, 4000, 100_000] {
            let got = sampling(&ctx, &q, Some(s)).unwrap();
            assert_eq!(got.rows.len(), want.rows.len(), "sample size {s}");
            for (x, y) in want.rows.iter().zip(&got.rows) {
                assert_eq!(x[1], y[1], "sample size {s}");
            }
        }
    }

    #[test]
    fn k_larger_than_table() {
        let (ctx, mut q) = setup(100);
        q.k = 500;
        let a = server_side(&ctx, &q).unwrap();
        let b = sampling(&ctx, &q, None).unwrap();
        assert_eq!(a.rows.len(), 100);
        assert_eq!(b.rows.len(), 100);
    }

    #[test]
    fn bigger_samples_shrink_the_scanning_phase() {
        let (ctx, q) = setup(5000);
        let small = sampling(&ctx, &q, Some(50)).unwrap();
        let big = sampling(&ctx, &q, Some(2500)).unwrap();
        let small_phase2 = small.metrics.groups[1].phases[0].stats;
        let big_phase2 = big.metrics.groups[1].phases[0].stats;
        assert!(
            big_phase2.select_returned_bytes < small_phase2.select_returned_bytes,
            "{} vs {}",
            big_phase2.select_returned_bytes,
            small_phase2.select_returned_bytes
        );
        // And the sampling phase grows.
        let small_phase1 = small.metrics.groups[0].phases[0].stats;
        let big_phase1 = big.metrics.groups[0].phases[0].stats;
        assert!(big_phase1.select_returned_bytes > small_phase1.select_returned_bytes);
    }

    #[test]
    fn sampling_transfers_less_than_server_side() {
        let (ctx, q) = setup(5000);
        let a = server_side(&ctx, &q).unwrap();
        let b = sampling(&ctx, &q, None).unwrap();
        assert!(
            b.metrics.bytes_returned() < a.metrics.bytes_returned() / 2,
            "sampling {} vs server {}",
            b.metrics.bytes_returned(),
            a.metrics.bytes_returned()
        );
    }

    #[test]
    fn optimal_sample_size_formula() {
        // S* = sqrt(KN/alpha); K=100, N=6e7, alpha=0.1 -> ~2.45e5 (paper
        // §VII-C1 computes 2.4e5).
        let s = optimal_sample_size(100, 60_000_000, 0.1);
        assert!((200_000..300_000).contains(&s), "{s}");
        // Clamps below at 10K.
        assert_eq!(optimal_sample_size(100, 2_000_000_000, 1.0), 447_214);
        assert!(optimal_sample_size(10, 500, 1.0) >= 70);
        // Never exceeds N.
        assert!(optimal_sample_size(1000, 2000, 0.01) <= 2000);
    }

    #[test]
    fn phase_labels_match_fig8() {
        let (ctx, q) = setup(1000);
        let out = sampling(&ctx, &q, Some(200)).unwrap();
        let labels: Vec<String> = out
            .metrics
            .phase_seconds(&ctx.model)
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(labels, vec!["sampling phase", "scanning phase"]);
    }

    #[test]
    fn striped_sampling_bounds_phase2_on_adversarial_order() {
        // The table is sorted exactly opposite to the query order — the
        // worst case for a prefix sample: a plain `LIMIT S` would collect
        // the S *largest* values, the ascending threshold would be huge,
        // and phase 2 would re-fetch nearly the whole table. Striping the
        // sample across partitions keeps phase-2 returned bytes within a
        // small multiple of K/N of the table.
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("price", DataType::Float),
            ("pad", DataType::Str),
        ]);
        let n = 6000usize;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Float((n - i) as f64), // sorted descending
                    Value::Str(format!("pad-{i:08}")),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "sorted", &schema, &rows, 150).unwrap();
        let total = t.total_bytes(&store) as f64;
        let ctx = QueryContext::new(store);
        let k = 30usize;
        let q = TopKQuery {
            table: t,
            order_col: "price".into(),
            k,
            asc: true,
        };
        let want = server_side(&ctx, &q).unwrap();
        let kn_bytes = total * k as f64 / n as f64; // "K/N of the table"
        for sample_size in [None, Some(1200)] {
            let got = sampling(&ctx, &q, sample_size).unwrap();
            assert_eq!(want.rows.len(), got.rows.len());
            for (x, y) in want.rows.iter().zip(&got.rows) {
                assert_eq!(x[1], y[1], "sample {sample_size:?}");
            }
            // Worst case for a striped sample of share s/P per partition
            // is ~N/P + K rows (one partition's span plus the threshold
            // overshoot) — a small multiple of K/N here, and nowhere near
            // the ~full table the prefix sample degenerates to.
            let phase2 = got.metrics.groups[1].phases[0].stats.select_returned_bytes as f64;
            assert!(
                phase2 <= 12.0 * kn_bytes,
                "sample {sample_size:?}: phase 2 returned {phase2:.0} bytes, \
                 want ≤ 12×(K/N)×table = {:.0} (table {total:.0})",
                12.0 * kn_bytes
            );
            assert!(
                phase2 <= total / 10.0,
                "phase 2 must stay far from a full re-fetch"
            );
        }
    }

    #[test]
    fn duplicate_keys_at_the_threshold() {
        // Many duplicate order keys exactly at the K-th position.
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]);
        let rows: Vec<Row> = (0..500)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 3)]))
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 128).unwrap();
        let ctx = QueryContext::new(store);
        let q = TopKQuery {
            table: t,
            order_col: "v".into(),
            k: 10,
            asc: true,
        };
        let a = server_side(&ctx, &q).unwrap();
        let b = sampling(&ctx, &q, Some(50)).unwrap();
        assert_eq!(a.rows.len(), 10);
        assert_eq!(b.rows.len(), 10);
        assert!(b.rows.iter().all(|r| r[1] == Value::Int(0)));
    }
}
