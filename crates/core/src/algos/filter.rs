//! Filter strategies (paper §IV).
//!
//! Three ways to evaluate `SELECT cols FROM t WHERE pred`:
//!
//! * [`server_side`] — load the whole table, filter on the compute node
//!   (the no-pushdown baseline);
//! * [`s3_side`] — push predicate and projection into S3 Select;
//! * [`indexed`] — query an index table for qualifying byte ranges, then
//!   fetch each row with a ranged GET (§IV-A). Wins when very selective;
//!   collapses under per-row request overheads as selectivity grows
//!   (Fig 1).

use crate::catalog::Table;
use crate::context::QueryContext;
use crate::index::IndexTable;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{plain_scan_columnar_streamed, plain_scan_streamed, select_scan};
use pushdown_common::perf::PhaseStats;
use pushdown_common::{Result, Row, Schema};
use pushdown_format::csv::split_line;
use pushdown_sql::bind::Binder;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// A filter query: predicate plus optional projection (None = `*`).
#[derive(Debug, Clone)]
pub struct FilterQuery {
    pub table: Table,
    pub predicate: Expr,
    pub projection: Option<Vec<String>>,
}

impl FilterQuery {
    fn stmt(&self) -> SelectStmt {
        let items = match &self.projection {
            None => vec![SelectItem::Wildcard],
            Some(cols) => cols
                .iter()
                .map(|c| SelectItem::Expr {
                    expr: Expr::col(c.clone()),
                    alias: None,
                })
                .collect(),
        };
        SelectStmt {
            items,
            alias: None,
            where_clause: Some(self.predicate.clone()),
            limit: None,
        }
    }

    /// The schema every strategy's output shares.
    pub fn output_schema(&self) -> Result<Schema> {
        match &self.projection {
            None => Ok(self.table.schema.clone()),
            Some(cols) => {
                let idx: Result<Vec<usize>> =
                    cols.iter().map(|c| self.table.schema.resolve(c)).collect();
                Ok(self.table.schema.project(&idx?))
            }
        }
    }
}

/// Server-side filter: full load, local predicate — streamed. Each scan
/// batch is filtered (and projected) as it arrives, so only the matches
/// are ever resident.
pub fn server_side(ctx: &QueryContext, q: &FilterQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let pred = Binder::new(&q.table.schema).bind_expr(&q.predicate)?;
    let proj_idx = match &q.projection {
        None => None,
        Some(cols) => {
            let idx: Result<Vec<usize>> = cols.iter().map(|c| q.table.schema.resolve(c)).collect();
            Some(idx?)
        }
    };
    let mut op_stats = PhaseStats::default();
    let mut rows = Vec::new();
    let summary = if ctx.columnar_exec && q.table.format == pushdown_select::InputFormat::Columnar {
        let compiled = ops::compile_predicate(&pred);
        plain_scan_columnar_streamed(ctx, &q.table, |batch| {
            let sel = match &compiled {
                Some(p) => ops::filter_columnar(&batch, p, &mut op_stats),
                None => ops::filter_columnar_fallback(&batch, &pred, &mut op_stats)?,
            };
            match &proj_idx {
                // Late materialization straight into the projected shape:
                // only the selected rows of the projected columns are
                // ever built. Charged like `project_rows` on the kept set.
                Some(idx) => {
                    op_stats.server_cpu_units += sel.len() as u64;
                    rows.extend(sel.iter().map(|&i| {
                        Row::new(
                            idx.iter()
                                .map(|&c| batch.column(c).value_at(i as usize))
                                .collect(),
                        )
                    }));
                }
                None => rows.extend(batch.gather(&sel)),
            }
            Ok(())
        })?
    } else {
        plain_scan_streamed(ctx, &q.table, |batch| {
            let kept = ops::filter_rows(batch.rows, &pred, &mut op_stats)?;
            match &proj_idx {
                Some(idx) => rows.extend(ops::project_rows(kept, idx, &mut op_stats)),
                None => rows.extend(kept),
            }
            Ok(())
        })?
    };
    let schema = match &proj_idx {
        None => q.table.schema.clone(),
        Some(idx) => q.table.schema.project(idx),
    };
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side filter", stats);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// S3-side filter: predicate and projection pushed into S3 Select.
pub fn s3_side(ctx: &QueryContext, q: &FilterQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let scan = select_scan(ctx, &q.table, &q.stmt())?;
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("s3-side filter", scan.stats);
    Ok(QueryOutput {
        schema: scan.schema,
        rows: scan.rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Indexed filter (paper §IV-A): phase 1 pushes the predicate (rewritten
/// onto the index table's `value` column) into S3 Select; phase 2 issues
/// one ranged GET per qualifying row.
///
/// The predicate must reference only the indexed column.
pub fn indexed(ctx: &QueryContext, idx: &IndexTable, q: &FilterQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    // Validate the predicate touches only the indexed column, then rewrite
    // it onto the index table's `value` column.
    let mut refs = Vec::new();
    q.predicate.referenced_columns(&mut refs);
    if !(refs.len() == 1 && refs[0].eq_ignore_ascii_case(&idx.column)) {
        return Err(pushdown_common::Error::Bind(format!(
            "indexed filter supports predicates on `{}` only, found columns {refs:?}",
            idx.column
        )));
    }
    let index_pred = rename_column(&q.predicate, &idx.column, "value");

    // ---- Phase 1: index lookup via S3 Select, one query per index
    // partition (offsets must stay associated with their data partition).
    let lookup_stmt = SelectStmt {
        items: vec![
            SelectItem::Expr {
                expr: Expr::col("first_byte_offset"),
                alias: None,
            },
            SelectItem::Expr {
                expr: Expr::col("last_byte_offset"),
                alias: None,
            },
        ],
        alias: None,
        where_clause: Some(index_pred),
        limit: None,
    };
    let mut phase1 = PhaseStats::default();
    let index_parts = idx.index.partitions(&ctx.store);
    let data_parts = idx.data.partitions(&ctx.store);
    if index_parts.len() != data_parts.len() {
        return Err(pushdown_common::Error::Corrupt(
            "index/data partition mismatch; rebuild the index".into(),
        ));
    }
    let mut ranges: Vec<(usize, u64, u64)> = Vec::new();
    for (p, ikey) in index_parts.iter().enumerate() {
        let resp = ctx.engine.select_stmt(
            &idx.index.bucket,
            ikey,
            &lookup_stmt,
            &idx.index.schema,
            idx.index.format,
        )?;
        phase1.requests += u64::from(resp.stats.attempts.max(1));
        phase1.s3_scanned_bytes += resp.stats.bytes_scanned;
        phase1.select_returned_bytes += resp.stats.bytes_returned;
        phase1.expr_terms = phase1.expr_terms.max(resp.stats.expr_terms);
        for row in resp.rows()? {
            ranges.push((p, row[0].as_i64()? as u64, row[1].as_i64()? as u64));
        }
    }
    phase1.server_cpu_units += ranges.len() as u64;

    // ---- Phase 2: one ranged GET per row (S3 permits one range per
    // request — §X Suggestion 1). Decode each returned record.
    let mut phase2 = PhaseStats::default();
    let mut rows: Vec<Row> = Vec::with_capacity(ranges.len());
    for (p, first, last) in &ranges {
        let fetched = ctx.store.get_object_range_with(
            &idx.data.bucket,
            &data_parts[*p],
            *first,
            *last,
            &ctx.retry,
        )?;
        let slice = fetched.value;
        phase2.point_requests += u64::from(fetched.attempts);
        phase2.plain_bytes += slice.len() as u64;
        phase2.server_cpu_units += 1;
        let line = std::str::from_utf8(&slice)
            .map_err(|_| pushdown_common::Error::Corrupt("non-UTF8 record".into()))?;
        let fields = split_line(line.trim_end_matches(['\n', '\r']))?;
        if fields.len() != idx.data.schema.len() {
            return Err(pushdown_common::Error::Corrupt(format!(
                "ranged GET returned {} fields, expected {}",
                fields.len(),
                idx.data.schema.len()
            )));
        }
        let mut vals = Vec::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            vals.push(pushdown_common::Value::parse_typed(
                f,
                idx.data.schema.dtype_of(i),
            )?);
        }
        rows.push(Row::new(vals));
    }

    // Projection.
    let (schema, rows) = match &q.projection {
        None => (idx.data.schema.clone(), rows),
        Some(cols) => {
            let pidx: Result<Vec<usize>> =
                cols.iter().map(|c| idx.data.schema.resolve(c)).collect();
            let pidx = pidx?;
            (
                idx.data.schema.project(&pidx),
                ops::project_rows(rows, &pidx, &mut phase2),
            )
        }
    };

    let mut metrics = QueryMetrics::new();
    metrics.push_serial("index lookup", phase1);
    metrics.push_serial("row fetch", phase2);
    Ok(QueryOutput {
        schema,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Rewrite every reference to `from` into `to`.
pub(crate) fn rename_column(e: &Expr, from: &str, to: &str) -> Expr {
    match e {
        Expr::Column(n) if n.eq_ignore_ascii_case(from) => Expr::col(to),
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rename_column(expr, from, to)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rename_column(left, from, to)),
            op: *op,
            right: Box::new(rename_column(right, from, to)),
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rename_column(expr, from, to)),
            low: Box::new(rename_column(low, from, to)),
            high: Box::new(rename_column(high, from, to)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rename_column(expr, from, to)),
            list: list.iter().map(|e| rename_column(e, from, to)).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rename_column(expr, from, to)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rename_column(expr, from, to)),
            pattern: Box::new(rename_column(pattern, from, to)),
            negated: *negated,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (rename_column(c, from, to), rename_column(v, from, to)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(rename_column(e, from, to))),
        },
        Expr::Cast { expr, dtype } => Expr::Cast {
            expr: Box::new(rename_column(expr, from, to)),
            dtype: *dtype,
        },
        Expr::Call { func, args } => Expr::Call {
            func: *func,
            args: args.iter().map(|a| rename_column(a, from, to)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use crate::index::build_index;
    use pushdown_common::{DataType, Value};
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_expr;

    fn setup(n: usize) -> (QueryContext, Table) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
            ("s", DataType::Str),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Float((i as f64 * 31.0) % 100.0),
                    Value::Str(format!("row-{i}")),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 64).unwrap();
        (QueryContext::new(store), t)
    }

    fn q(table: &Table, pred: &str, proj: Option<Vec<&str>>) -> FilterQuery {
        FilterQuery {
            table: table.clone(),
            predicate: parse_expr(pred).unwrap(),
            projection: proj.map(|v| v.into_iter().map(String::from).collect()),
        }
    }

    #[test]
    fn all_three_strategies_agree() {
        let (ctx, t) = setup(300);
        let idx = build_index(&ctx, &t, "k").unwrap();
        let query = q(&t, "k >= 120 AND k < 140", None);
        let a = server_side(&ctx, &query).unwrap();
        let b = s3_side(&ctx, &query).unwrap();
        let c = indexed(&ctx, &idx, &query).unwrap();
        assert_eq!(a.rows.len(), 20);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rows, c.rows);
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.schema, c.schema);
    }

    #[test]
    fn projection_is_applied_consistently() {
        let (ctx, t) = setup(100);
        let idx = build_index(&ctx, &t, "k").unwrap();
        let query = q(&t, "k = 42", Some(vec!["s", "k"]));
        let a = server_side(&ctx, &query).unwrap();
        let b = s3_side(&ctx, &query).unwrap();
        let c = indexed(&ctx, &idx, &query).unwrap();
        let want = vec![Row::new(vec![Value::Str("row-42".into()), Value::Int(42)])];
        assert_eq!(a.rows, want);
        assert_eq!(b.rows, want);
        assert_eq!(c.rows, want);
        assert_eq!(a.schema.names(), vec!["s", "k"]);
    }

    #[test]
    fn cost_profiles_differ_as_in_fig1() {
        let (ctx, t) = setup(1000);
        let idx = build_index(&ctx, &t, "k").unwrap();
        let query = q(&t, "k = 7", None);
        let server = server_side(&ctx, &query).unwrap();
        let s3 = s3_side(&ctx, &query).unwrap();
        let ix = indexed(&ctx, &idx, &query).unwrap();
        // Server-side: all plain bytes, nothing scanned.
        let su = server.metrics.usage();
        assert!(su.plain_bytes > 0 && su.select_scanned_bytes == 0);
        // S3-side: scans the table, returns almost nothing.
        let xu = s3.metrics.usage();
        assert_eq!(xu.select_scanned_bytes, t.total_bytes(&ctx.store));
        assert!(xu.select_returned_bytes < 100);
        // Indexed: one ranged GET per matching row.
        let iu = ix.metrics.usage();
        assert_eq!(
            iu.requests,
            t.partitions(&ctx.store).len() as u64 + 1 // index lookups + 1 row
        );
        assert!(iu.plain_bytes < 64);
    }

    #[test]
    fn indexed_request_count_tracks_selectivity() {
        let (ctx, t) = setup(1000);
        let idx = build_index(&ctx, &t, "k").unwrap();
        let narrow = indexed(&ctx, &idx, &q(&t, "k < 10", None)).unwrap();
        let wide = indexed(&ctx, &idx, &q(&t, "k < 500", None)).unwrap();
        let parts = t.partitions(&ctx.store).len() as u64;
        assert_eq!(narrow.metrics.usage().requests, parts + 10);
        assert_eq!(wide.metrics.usage().requests, parts + 500);
        // The model must therefore price `wide` much higher.
        assert!(wide.runtime(&ctx) > narrow.runtime(&ctx));
    }

    #[test]
    fn indexed_rejects_predicates_on_other_columns() {
        let (ctx, t) = setup(50);
        let idx = build_index(&ctx, &t, "k").unwrap();
        let bad = q(&t, "v > 1.0", None);
        assert!(indexed(&ctx, &idx, &bad).is_err());
        let mixed = q(&t, "k > 1 AND v > 1.0", None);
        assert!(indexed(&ctx, &idx, &mixed).is_err());
    }

    #[test]
    fn empty_result_sets() {
        let (ctx, t) = setup(50);
        let idx = build_index(&ctx, &t, "k").unwrap();
        let query = q(&t, "k > 100000", None);
        assert!(server_side(&ctx, &query).unwrap().rows.is_empty());
        assert!(s3_side(&ctx, &query).unwrap().rows.is_empty());
        assert!(indexed(&ctx, &idx, &query).unwrap().rows.is_empty());
    }

    #[test]
    pub(crate) fn rename_column_rewrites_deeply() {
        let e = parse_expr("k > 1 AND (k < 5 OR k IN (7, 8)) AND k BETWEEN 0 AND 9").unwrap();
        let r = rename_column(&e, "k", "value");
        let mut refs = Vec::new();
        r.referenced_columns(&mut refs);
        assert_eq!(refs, vec!["value".to_string()]);
    }
}
