//! Group-by algorithms (paper §VI).
//!
//! S3 Select has **no group-by**, so PushdownDB decomposes:
//!
//! * [`server_side`] — full load, local hash aggregation;
//! * [`filtered`] — S3 Select projects only the grouping/aggregate
//!   columns (and applies any predicate); aggregation stays local;
//! * [`s3_side`] — phase 1 projects the grouping column and finds the
//!   distinct groups locally; phase 2 pushes one
//!   `SUM(CASE WHEN g = v THEN x ELSE …  END)` item *per (group,
//!   aggregate)* (paper Listing 4). Degrades as groups grow — the long
//!   CASE chain slows the storage-side scan (Fig 5);
//! * [`hybrid`] — samples the first ~1 % of rows to find the populous
//!   groups, pushes *their* aggregation to S3, and ships only the
//!   long-tail rows for local aggregation (paper Listing 5, Figs 6–7).

use crate::catalog::Table;
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{
    plain_scan_columnar_streamed, plain_scan_streamed, select_scan, select_scan_streamed,
};
use pushdown_common::perf::PhaseStats;
use pushdown_common::{DataType, Error, Field, Result, Row, Schema, Value};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::bind::Binder;
use pushdown_sql::{Expr, SelectItem, SelectStmt};
use std::collections::HashMap;

/// A group-by query: `SELECT group_cols, agg(agg_col)… FROM t [WHERE pred]
/// GROUP BY group_cols`.
#[derive(Debug, Clone)]
pub struct GroupByQuery {
    pub table: Table,
    pub group_cols: Vec<String>,
    /// Aggregates as (function, input column).
    pub aggs: Vec<(AggFunc, String)>,
    pub predicate: Option<Expr>,
}

impl GroupByQuery {
    /// The output schema shared by all four algorithms.
    pub fn output_schema(&self) -> Result<Schema> {
        let mut fields = Vec::new();
        for g in &self.group_cols {
            let i = self.table.schema.resolve(g)?;
            fields.push(self.table.schema.field(i).clone());
        }
        for (f, c) in &self.aggs {
            let i = self.table.schema.resolve(c)?;
            let dtype = match f {
                AggFunc::Count => DataType::Int,
                AggFunc::Avg => DataType::Float,
                _ => self.table.schema.dtype_of(i),
            };
            fields.push(Field::new(
                format!("{}_{}", f.name().to_lowercase(), c.to_lowercase()),
                dtype,
            ));
        }
        Ok(Schema::new(fields))
    }

    /// Columns the query touches: groups ∪ agg inputs.
    fn needed_cols(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.group_cols.clone();
        for (_, c) in &self.aggs {
            if !cols.iter().any(|x| x.eq_ignore_ascii_case(c)) {
                cols.push(c.clone());
            }
        }
        cols
    }
}

/// Build the streaming aggregation state for `q` against the schema the
/// input rows arrive in.
fn group_accumulator(q: &GroupByQuery, schema: &Schema) -> Result<ops::GroupByAccumulator> {
    let gidx: Result<Vec<usize>> = q.group_cols.iter().map(|c| schema.resolve(c)).collect();
    let aggs: Result<Vec<(AggFunc, Option<usize>)>> = q
        .aggs
        .iter()
        .map(|(f, c)| Ok((*f, Some(schema.resolve(c)?))))
        .collect();
    Ok(ops::GroupByAccumulator::new(gidx?, aggs?))
}

/// Stream `stmt` through S3 Select and fold every batch into local
/// group accumulators. The accumulator resolves its columns against the
/// response schema, so it is built lazily from the first batch; a scan
/// that returns no rows yields an empty result. Returns the aggregated
/// rows plus the phase footprint (scan merged with local CPU).
fn streamed_group_aggregate(
    ctx: &QueryContext,
    q: &GroupByQuery,
    stmt: &SelectStmt,
) -> Result<(Vec<Row>, PhaseStats)> {
    let mut acc: Option<ops::GroupByAccumulator> = None;
    let mut op_stats = PhaseStats::default();
    let summary = select_scan_streamed(ctx, &q.table, stmt, |batch| {
        if acc.is_none() {
            acc = Some(group_accumulator(q, &batch.schema)?);
        }
        acc.as_mut()
            .expect("accumulator initialized above")
            .update_batch(&batch.rows, &mut op_stats)
    })?;
    let rows = match acc {
        Some(acc) => acc.finish(&mut op_stats),
        None => Vec::new(), // no batch arrived: no matching rows at all
    };
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    Ok((rows, stats))
}

/// Server-side group-by: full table load, everything local — streamed.
/// Scan batches are filtered and folded into the group accumulators as
/// they arrive; only the groups themselves are ever resident.
pub fn server_side(ctx: &QueryContext, q: &GroupByQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let bound = match &q.predicate {
        Some(p) => Some(Binder::new(&q.table.schema).bind_expr(p)?),
        None => None,
    };
    let mut acc = group_accumulator(q, &q.table.schema)?;
    let mut op_stats = PhaseStats::default();
    let summary = if ctx.columnar_exec && q.table.format == pushdown_select::InputFormat::Columnar {
        let compiled = bound.as_ref().and_then(ops::compile_predicate);
        plain_scan_columnar_streamed(ctx, &q.table, |batch| {
            let sel = match (&bound, &compiled) {
                (None, _) => ops::full_selection(batch.len()),
                (Some(_), Some(p)) => ops::filter_columnar(&batch, p, &mut op_stats),
                (Some(p), None) => ops::filter_columnar_fallback(&batch, p, &mut op_stats)?,
            };
            acc.update_columnar(&batch, &sel, &mut op_stats)
        })?
    } else {
        plain_scan_streamed(ctx, &q.table, |batch| {
            let rows = match &bound {
                Some(pred) => ops::filter_rows(batch.rows, pred, &mut op_stats)?,
                None => batch.rows,
            };
            acc.update_batch(&rows, &mut op_stats)
        })?
    };
    let out = acc.finish(&mut op_stats);
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side group-by", stats);
    Ok(QueryOutput {
        schema: q.output_schema()?,
        rows: out,
        metrics,
        billed: ctx.billed(),
    })
}

/// Filtered group-by: projection (and predicate) pushed to S3 Select,
/// aggregation local — streamed. "Filtered group-by loads only the four
/// columns on which aggregation is performed" (paper §VI-C1).
pub fn filtered(ctx: &QueryContext, q: &GroupByQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let cols = q.needed_cols();
    let stmt = SelectStmt {
        items: cols
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.clone()),
                alias: None,
            })
            .collect(),
        alias: None,
        where_clause: q.predicate.clone(),
        limit: None,
    };
    let (out, stats) = streamed_group_aggregate(ctx, q, &stmt)?;
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("filtered group-by", stats);
    Ok(QueryOutput {
        schema: q.output_schema()?,
        rows: out,
        metrics,
        billed: ctx.billed(),
    })
}

/// Equality predicate for a (possibly multi-column) group value.
fn group_eq(group_cols: &[String], key: &[Value]) -> Expr {
    let conj: Vec<Expr> = group_cols
        .iter()
        .zip(key)
        .map(|(c, v)| Expr::eq(Expr::col(c.clone()), Expr::Literal(v.clone())))
        .collect();
    Expr::conjunction(conj).expect("non-empty group columns")
}

/// Build phase-2 CASE-WHEN aggregate statements for the given groups,
/// chunking so each statement stays under the SQL size limit. Returns the
/// merged (group key ++ aggregate values) rows and the phase stats.
fn case_when_aggregate(
    ctx: &QueryContext,
    q: &GroupByQuery,
    groups: &[Vec<Value>],
    stats: &mut PhaseStats,
) -> Result<Vec<Row>> {
    if groups.is_empty() {
        return Ok(Vec::new());
    }
    // Estimate statement size per group to pick a chunk size.
    let est_per_group: usize = q.aggs.len() * 96
        + groups[0]
            .iter()
            .map(|v| v.to_csv_field().len() + 24)
            .sum::<usize>();
    let budget = ctx.engine.limits().max_sql_bytes.saturating_sub(256);
    let chunk = (budget / est_per_group.max(1)).max(1);

    let mut out = Vec::new();
    for batch in groups.chunks(chunk) {
        let mut items = Vec::with_capacity(batch.len() * q.aggs.len());
        for key in batch {
            let eq = group_eq(&q.group_cols, key);
            for (f, c) in &q.aggs {
                // CASE WHEN g = v THEN x END — the ELSE-less NULL arm is
                // skipped by every aggregate, including COUNT(expr).
                let arg = Expr::Case {
                    branches: vec![(
                        eq.clone(),
                        if *f == AggFunc::Count {
                            Expr::int(1)
                        } else {
                            Expr::col(c.clone())
                        },
                    )],
                    else_expr: None,
                };
                items.push(SelectItem::Agg {
                    func: *f,
                    arg: Some(arg),
                    alias: None,
                });
            }
        }
        let stmt = SelectStmt {
            items,
            alias: None,
            where_clause: q.predicate.clone(),
            limit: None,
        };
        let scan = select_scan(ctx, &q.table, &stmt)?;
        stats.merge(&scan.stats);
        let row = &scan.rows[0];
        for (gi, key) in batch.iter().enumerate() {
            let mut vals: Vec<Value> = key.clone();
            for ai in 0..q.aggs.len() {
                let mut v = row[gi * q.aggs.len() + ai].clone();
                // COUNT over an empty group surfaces as 0, not NULL.
                if q.aggs[ai].0 == AggFunc::Count && v.is_null() {
                    v = Value::Int(0);
                }
                vals.push(v);
            }
            out.push(Row::new(vals));
        }
    }
    Ok(out)
}

/// S3-side group-by (paper §VI-A): distinct groups first, then one pushed
/// CASE-WHEN aggregate per (group, aggregate).
pub fn s3_side(ctx: &QueryContext, q: &GroupByQuery) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    // ---- Phase 1: project the group columns, find distinct values.
    let stmt = SelectStmt {
        items: q
            .group_cols
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.clone()),
                alias: None,
            })
            .collect(),
        alias: None,
        where_clause: q.predicate.clone(),
        limit: None,
    };
    // Stream the projected group column(s): only the distinct values are
    // kept, not the projected rows themselves.
    let mut groups: Vec<Vec<Value>> = Vec::new();
    let mut seen_rows = 0u64;
    let summary = {
        let mut seen: HashMap<Vec<Value>, ()> = HashMap::new();
        select_scan_streamed(ctx, &q.table, &stmt, |batch| {
            seen_rows += batch.len() as u64;
            for r in &batch.rows {
                if seen.insert(r.values().to_vec(), ()).is_none() {
                    groups.push(r.values().to_vec());
                }
            }
            Ok(())
        })?
    };
    let mut phase1 = summary.stats;
    phase1.server_cpu_units += seen_rows;
    groups.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });

    // ---- Phase 2: pushed CASE-WHEN aggregation per group.
    let mut phase2 = PhaseStats::default();
    let rows = case_when_aggregate(ctx, q, &groups, &mut phase2)?;

    let mut metrics = QueryMetrics::new();
    metrics.push_serial("s3-side group-by: distinct", phase1);
    metrics.push_serial("s3-side group-by: aggregate", phase2);
    Ok(QueryOutput {
        schema: q.output_schema()?,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

/// Tuning for [`hybrid`].
#[derive(Debug, Clone, Copy)]
pub struct HybridOptions {
    /// Fraction of the table sampled in phase 1 (paper: "the first 1 % of
    /// data").
    pub sample_fraction: f64,
    /// Minimum sampled share for a group to count as "large".
    pub min_share: f64,
    /// Cap on groups pushed to S3.
    pub max_s3_groups: usize,
    /// Force exactly this many groups to S3 (Fig 6's sweep), overriding
    /// the share threshold.
    pub force_s3_groups: Option<usize>,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            sample_fraction: 0.01,
            min_share: 0.02,
            max_s3_groups: 8,
            force_s3_groups: None,
        }
    }
}

/// Hybrid group-by (paper §VI-B). Only single-column grouping is
/// supported (as in the paper's workloads).
pub fn hybrid(ctx: &QueryContext, q: &GroupByQuery, opts: HybridOptions) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    if q.group_cols.len() != 1 {
        return Err(Error::Bind(
            "hybrid group-by supports a single grouping column".into(),
        ));
    }
    let gcol = &q.group_cols[0];

    // ---- Phase 1: sample the first ~1% of rows, count group frequency.
    // The *prefix* sample is the paper's §VI-B design ("the first 1% of
    // data") and is kept faithfully; note it shares the storage-order
    // bias the striped top-K sample fixes — on input clustered by the
    // grouping column the populous-group detection degenerates (the
    // result stays correct, only the S3/local split is suboptimal).
    // `crate::scan::select_scan_striped_limit` is the drop-in cure if
    // that workload ever matters.
    let sample_rows = ((q.table.row_count as f64 * opts.sample_fraction).ceil() as u64).max(64);
    let stmt = SelectStmt {
        items: vec![SelectItem::Expr {
            expr: Expr::col(gcol.clone()),
            alias: None,
        }],
        alias: None,
        where_clause: q.predicate.clone(),
        limit: Some(sample_rows),
    };
    let sample = select_scan(ctx, &q.table, &stmt)?;
    let mut phase1 = sample.stats;
    phase1.server_cpu_units += sample.rows.len() as u64;
    let mut freq: HashMap<Value, u64> = HashMap::new();
    for r in &sample.rows {
        *freq.entry(r[0].clone()).or_insert(0) += 1;
    }
    let mut by_freq: Vec<(Value, u64)> = freq.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
    let total: u64 = by_freq.iter().map(|(_, n)| n).sum();
    let big: Vec<Value> = match opts.force_s3_groups {
        Some(n) => by_freq.iter().take(n).map(|(v, _)| v.clone()).collect(),
        None => by_freq
            .iter()
            .filter(|(_, n)| (*n as f64) >= opts.min_share * total.max(1) as f64)
            .take(opts.max_s3_groups)
            .map(|(v, _)| v.clone())
            .collect(),
    };

    let mut metrics = QueryMetrics::new();
    metrics.push_serial("hybrid: sample", phase1);

    if big.is_empty() {
        // No populous groups: degenerate to a filtered group-by.
        let rest = filtered(ctx, q)?;
        metrics.extend(&rest.metrics);
        return Ok(QueryOutput {
            schema: rest.schema,
            rows: rest.rows,
            metrics,
            billed: ctx.billed(),
        });
    }

    // ---- Phase 2 (two concurrent requests, paper Listing 5):
    // Q1: pushed CASE-WHEN aggregation of the large groups.
    let mut s3_stats = PhaseStats::default();
    let big_keys: Vec<Vec<Value>> = big.iter().map(|v| vec![v.clone()]).collect();
    let s3_rows = case_when_aggregate(ctx, q, &big_keys, &mut s3_stats)?;

    // Q2: ship the long-tail rows (group NOT IN big) and aggregate locally.
    let tail_pred = {
        let not_in = Expr::InList {
            expr: Box::new(Expr::col(gcol.clone())),
            list: big.iter().map(|v| Expr::Literal(v.clone())).collect(),
            negated: true,
        };
        match &q.predicate {
            Some(p) => Expr::and(p.clone(), not_in),
            None => not_in,
        }
    };
    let cols = q.needed_cols();
    let tail_stmt = SelectStmt {
        items: cols
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.clone()),
                alias: None,
            })
            .collect(),
        alias: None,
        where_clause: Some(tail_pred),
        limit: None,
    };
    // The long tail streams straight into local group accumulators.
    let (tail_rows, server_stats) = streamed_group_aggregate(ctx, q, &tail_stmt)?;

    metrics.push_parallel(vec![
        ("hybrid: s3-side aggregation".into(), s3_stats),
        ("hybrid: server-side aggregation".into(), server_stats),
    ]);

    // Large and tail groups are disjoint: concatenate and sort.
    let mut rows = s3_rows;
    rows.extend(tail_rows);
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    Ok(QueryOutput {
        schema: q.output_schema()?,
        rows,
        metrics,
        billed: ctx.billed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_expr;

    /// Synthetic table: group column with a skewed distribution plus two
    /// value columns.
    fn setup(n: usize, n_groups: i64, skewed: bool) -> (QueryContext, GroupByQuery) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("v", DataType::Float),
            ("w", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let g = if skewed {
                    // ~half the rows in group 0, quarter in 1, ...
                    let mut x = i;
                    let mut g = 0;
                    while x % 2 == 1 && g < n_groups - 1 {
                        x /= 2;
                        g += 1;
                    }
                    g
                } else {
                    (i as i64) % n_groups
                };
                Row::new(vec![
                    Value::Int(g),
                    Value::Float((i as f64 * 7.0) % 103.0),
                    Value::Int((i as i64 * 13) % 17),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 256).unwrap();
        let q = GroupByQuery {
            table: t,
            group_cols: vec!["g".into()],
            aggs: vec![
                (AggFunc::Sum, "v".into()),
                (AggFunc::Count, "w".into()),
                (AggFunc::Min, "w".into()),
                (AggFunc::Max, "v".into()),
                (AggFunc::Avg, "v".into()),
            ],
            predicate: None,
        };
        (QueryContext::new(store), q)
    }

    fn assert_rows_close(a: &[Row], b: &[Row]) {
        assert_eq!(a.len(), b.len(), "row counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.len(), y.len());
            for (vx, vy) in x.values().iter().zip(y.values()) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() <= 1e-6 * (1.0 + fx.abs()), "{fx} vs {fy}");
                    }
                    _ => assert_eq!(vx, vy),
                }
            }
        }
    }

    #[test]
    fn all_four_algorithms_agree_uniform() {
        let (ctx, q) = setup(2000, 8, false);
        let a = server_side(&ctx, &q).unwrap();
        let b = filtered(&ctx, &q).unwrap();
        let c = s3_side(&ctx, &q).unwrap();
        let d = hybrid(&ctx, &q, HybridOptions::default()).unwrap();
        assert_eq!(a.rows.len(), 8);
        assert_rows_close(&a.rows, &b.rows);
        assert_rows_close(&a.rows, &c.rows);
        assert_rows_close(&a.rows, &d.rows);
        assert_eq!(a.schema, q.output_schema().unwrap());
        assert_eq!(c.schema, a.schema);
    }

    #[test]
    fn all_four_algorithms_agree_skewed() {
        let (ctx, q) = setup(3000, 10, true);
        let a = server_side(&ctx, &q).unwrap();
        let b = filtered(&ctx, &q).unwrap();
        let c = s3_side(&ctx, &q).unwrap();
        let d = hybrid(&ctx, &q, HybridOptions::default()).unwrap();
        assert_rows_close(&a.rows, &b.rows);
        assert_rows_close(&a.rows, &c.rows);
        assert_rows_close(&a.rows, &d.rows);
    }

    #[test]
    fn predicate_applies_in_every_algorithm() {
        let (ctx, mut q) = setup(2000, 5, false);
        q.predicate = Some(parse_expr("w < 9").unwrap());
        let a = server_side(&ctx, &q).unwrap();
        let b = filtered(&ctx, &q).unwrap();
        let c = s3_side(&ctx, &q).unwrap();
        let d = hybrid(&ctx, &q, HybridOptions::default()).unwrap();
        assert_rows_close(&a.rows, &b.rows);
        assert_rows_close(&a.rows, &c.rows);
        assert_rows_close(&a.rows, &d.rows);
    }

    #[test]
    fn filtered_returns_fewer_bytes_than_server() {
        let (ctx, q) = setup(2000, 4, false);
        let a = server_side(&ctx, &q).unwrap();
        let b = filtered(&ctx, &q).unwrap();
        // Server-side ships the whole table as plain bytes; filtered ships
        // a column subset via select.
        assert!(b.metrics.usage().select_returned_bytes < a.metrics.usage().plain_bytes);
    }

    #[test]
    fn s3_side_charges_expression_terms() {
        let (ctx, q) = setup(2000, 32, false);
        let c = s3_side(&ctx, &q).unwrap();
        // 32 groups × 5 aggregates, each with a comparison + arm ≥ 2 terms.
        let max_terms = c
            .metrics
            .groups
            .iter()
            .flat_map(|g| g.phases.iter())
            .map(|p| p.stats.expr_terms)
            .max()
            .unwrap();
        assert!(max_terms >= 64, "expr terms {max_terms}");
    }

    #[test]
    fn s3_side_chunks_when_sql_would_exceed_limit() {
        let (mut ctx, q) = setup(1000, 40, false);
        // Squeeze the limit so phase 2 must split into several statements.
        let store = ctx.store.clone();
        ctx.engine = pushdown_select::S3SelectEngine::with_limits(
            store,
            pushdown_select::SelectLimits {
                max_sql_bytes: 4 * 1024,
            },
        );
        let a = server_side(&ctx, &q).unwrap();
        let c = s3_side(&ctx, &q).unwrap();
        assert_rows_close(&a.rows, &c.rows);
        // More than one phase-2 select per partition proves chunking.
        let parts = q.table.partitions(&ctx.store).len() as u64;
        let phase2_requests: u64 = c.metrics.groups[1]
            .phases
            .iter()
            .map(|p| p.stats.requests)
            .sum();
        assert!(phase2_requests > parts, "{phase2_requests} vs {parts}");
    }

    #[test]
    fn hybrid_pushes_populous_groups_only() {
        let (ctx, q) = setup(4000, 12, true);
        let out = hybrid(&ctx, &q, HybridOptions::default()).unwrap();
        // There must be both an s3-side and a server-side phase.
        let labels: Vec<String> = out
            .metrics
            .groups
            .iter()
            .flat_map(|g| g.phases.iter().map(|p| p.label.clone()))
            .collect();
        assert!(labels.iter().any(|l| l.contains("s3-side")));
        assert!(labels.iter().any(|l| l.contains("server-side")));
        assert!(labels.iter().any(|l| l.contains("sample")));
    }

    #[test]
    fn hybrid_uniform_degenerates_to_filtered() {
        // 100 uniform groups: none reaches the 2% share threshold cap...
        // each has exactly 1% share < 2% -> no big groups -> filtered path.
        let (ctx, q) = setup(5000, 100, false);
        let out = hybrid(&ctx, &q, HybridOptions::default()).unwrap();
        let labels: Vec<String> = out
            .metrics
            .groups
            .iter()
            .flat_map(|g| g.phases.iter().map(|p| p.label.clone()))
            .collect();
        assert!(labels.iter().any(|l| l.contains("filtered")));
        let a = server_side(&ctx, &q).unwrap();
        assert_rows_close(&a.rows, &out.rows);
    }

    #[test]
    fn hybrid_force_groups_controls_split() {
        let (ctx, q) = setup(3000, 10, true);
        for n in [1usize, 4, 8] {
            let out = hybrid(
                &ctx,
                &q,
                HybridOptions {
                    force_s3_groups: Some(n),
                    ..Default::default()
                },
            )
            .unwrap();
            let a = server_side(&ctx, &q).unwrap();
            assert_rows_close(&a.rows, &out.rows);
        }
    }

    #[test]
    fn hybrid_rejects_multi_column_groups() {
        let (ctx, mut q) = setup(100, 4, false);
        q.group_cols.push("w".into());
        assert!(hybrid(&ctx, &q, HybridOptions::default()).is_err());
        // But s3-side supports multi-column grouping.
        let a = server_side(&ctx, &q).unwrap();
        let c = s3_side(&ctx, &q).unwrap();
        assert_rows_close(&a.rows, &c.rows);
    }

    #[test]
    fn empty_group_results() {
        let (ctx, mut q) = setup(500, 4, false);
        q.predicate = Some(parse_expr("w > 100000").unwrap());
        for out in [
            server_side(&ctx, &q).unwrap(),
            filtered(&ctx, &q).unwrap(),
            s3_side(&ctx, &q).unwrap(),
            hybrid(&ctx, &q, HybridOptions::default()).unwrap(),
        ] {
            assert!(out.rows.is_empty(), "{:?}", out.rows);
        }
    }
}
