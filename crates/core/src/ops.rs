//! Server-side (compute-node) operators.
//!
//! PushdownDB is a bare-bones row engine, like the paper's testbed
//! (§III). Operators come in two shapes:
//!
//! * **batch state machines** ([`TopKAccumulator`], [`GroupByAccumulator`],
//!   [`HashJoinBuild`]) that consume the streaming scan's `RowBatch`es
//!   incrementally, so a pipeline holds its *state* (a K-heap, a hash of
//!   group accumulators, a build table) plus one batch — never the whole
//!   table;
//! * thin **whole-input wrappers** ([`top_k`], [`hash_group_by`],
//!   [`hash_join`]) over those state machines for callers that already
//!   hold materialized rows.
//!
//! Each operator reports its work into a [`PhaseStats`] as
//! `server_cpu_units` so the performance model can charge compute time
//! (one unit ≈ one row visited by one non-trivial operator; heap pushes
//! charge `log2(K)`). The wrappers charge exactly what the equivalent
//! batch-wise run charges: accounting is independent of batching.

use pushdown_common::columnar::{Column, ColumnData, ColumnarBatch, SelVec};
use pushdown_common::perf::PhaseStats;
use pushdown_common::{date, DataType, Error, Result, Row, Value};
use pushdown_sql::agg::{Accumulator, AggFunc};
use pushdown_sql::ast::{BinOp, UnOp};
use pushdown_sql::bind::BoundExpr;
use pushdown_sql::eval::{eval, eval_predicate};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Keep rows passing the predicate. Call once per batch on the streaming
/// path; per-call CPU charges sum to the whole-input charge.
pub fn filter_rows(rows: Vec<Row>, pred: &BoundExpr, stats: &mut PhaseStats) -> Result<Vec<Row>> {
    stats.server_cpu_units += rows.len() as u64;
    let mut out = Vec::new();
    for r in rows {
        if eval_predicate(pred, &r)? {
            out.push(r);
        }
    }
    Ok(out)
}

/// Project rows onto the given column indices.
pub fn project_rows(rows: Vec<Row>, indices: &[usize], stats: &mut PhaseStats) -> Vec<Row> {
    stats.server_cpu_units += rows.len() as u64;
    rows.into_iter().map(|r| r.project(indices)).collect()
}

/// Evaluate one expression per row (generalized projection).
pub fn map_rows(rows: &[Row], exprs: &[BoundExpr], stats: &mut PhaseStats) -> Result<Vec<Row>> {
    stats.server_cpu_units += rows.len() as u64;
    rows.iter()
        .map(|r| {
            let vals: Result<Vec<Value>> = exprs.iter().map(|e| eval(e, r)).collect();
            Ok(Row::new(vals?))
        })
        .collect()
}

/// The build side of a hash inner join, fed batch-at-a-time. NULL keys
/// never enter the table (SQL semantics).
pub struct HashJoinBuild {
    key: usize,
    table: HashMap<Value, Vec<Row>>,
}

impl HashJoinBuild {
    pub fn new(key: usize) -> Self {
        HashJoinBuild {
            key,
            table: HashMap::new(),
        }
    }

    /// Insert one batch of build-side rows.
    pub fn add_batch(&mut self, rows: Vec<Row>, stats: &mut PhaseStats) {
        stats.server_cpu_units += rows.len() as u64;
        for row in rows {
            let k = &row[self.key];
            if k.is_null() {
                continue;
            }
            self.table.entry(k.clone()).or_default().push(row);
        }
    }

    /// Probe one batch of rows against the finished build table; output
    /// rows are `build ++ probe`. NULL probe keys never match.
    pub fn probe_batch(&self, rows: &[Row], probe_key: usize, stats: &mut PhaseStats) -> Vec<Row> {
        stats.server_cpu_units += rows.len() as u64;
        let mut out = Vec::new();
        for r in rows {
            let k = &r[probe_key];
            if k.is_null() {
                continue;
            }
            if let Some(matches) = self.table.get(k) {
                stats.server_cpu_units += matches.len() as u64;
                for l in matches {
                    out.push(l.concat(r));
                }
            }
        }
        out
    }
}

/// Hash inner join over materialized inputs: build on `left`, probe with
/// `right`. Wrapper over [`HashJoinBuild`].
pub fn hash_join(
    left: Vec<Row>,
    left_key: usize,
    right: Vec<Row>,
    right_key: usize,
    stats: &mut PhaseStats,
) -> Vec<Row> {
    let mut build = HashJoinBuild::new(left_key);
    build.add_batch(left, stats);
    build.probe_batch(&right, right_key, stats)
}

/// Hash aggregation state, fed batch-at-a-time. `aggs` pairs an aggregate
/// function with the input column it consumes (`None` = COUNT(*)).
pub struct GroupByAccumulator {
    group_cols: Vec<usize>,
    aggs: Vec<(AggFunc, Option<usize>)>,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
}

impl GroupByAccumulator {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<(AggFunc, Option<usize>)>) -> Self {
        GroupByAccumulator {
            group_cols,
            aggs,
            groups: HashMap::new(),
        }
    }

    /// Fold one batch of input rows into the group table.
    pub fn update_batch(&mut self, rows: &[Row], stats: &mut PhaseStats) -> Result<()> {
        stats.server_cpu_units += rows.len() as u64;
        for r in rows {
            let key: Vec<Value> = self.group_cols.iter().map(|&c| r[c].clone()).collect();
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|(f, _)| f.accumulator()).collect());
            for (acc, (_, col)) in accs.iter_mut().zip(&self.aggs) {
                match col {
                    Some(c) => acc.update(&r[*c])?,
                    None => acc.update(&Value::Bool(true))?,
                }
            }
        }
        Ok(())
    }

    /// Emit `group values ++ aggregate values`, sorted by group for
    /// determinism.
    pub fn finish(self, stats: &mut PhaseStats) -> Vec<Row> {
        let group_width = self.group_cols.len();
        let mut out: Vec<Row> = self
            .groups
            .into_iter()
            .map(|(key, accs)| {
                let mut vals = key;
                vals.extend(accs.iter().map(Accumulator::finish));
                Row::new(vals)
            })
            .collect();
        out.sort_by(|a, b| cmp_rows(a, b, group_width));
        stats.server_cpu_units += out.len() as u64;
        out
    }
}

/// Hash aggregation over materialized input. Wrapper over
/// [`GroupByAccumulator`].
pub fn hash_group_by(
    rows: &[Row],
    group_cols: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    stats: &mut PhaseStats,
) -> Result<Vec<Row>> {
    let mut acc = GroupByAccumulator::new(group_cols.to_vec(), aggs.to_vec());
    acc.update_batch(rows, stats)?;
    Ok(acc.finish(stats))
}

fn cmp_rows(a: &Row, b: &Row, prefix: usize) -> Ordering {
    for i in 0..prefix {
        let o = a[i].total_cmp(&b[i]);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Merge pre-aggregated partials (e.g. one per group per source) whose
/// rows are `group values ++ accumulator outputs` from `SUM`-mergeable
/// functions. Used when hybrid group-by combines the S3-side and
/// server-side halves.
pub fn merge_group_rows(
    parts: Vec<Vec<Row>>,
    group_width: usize,
    aggs: &[AggFunc],
    stats: &mut PhaseStats,
) -> Result<Vec<Row>> {
    let mut merged: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    for part in parts {
        stats.server_cpu_units += part.len() as u64;
        for row in part {
            let key: Vec<Value> = row.values()[..group_width].to_vec();
            let accs = merged
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|f| merge_accumulator(*f)).collect());
            for (i, acc) in accs.iter_mut().enumerate() {
                acc.update(&row[group_width + i])?;
            }
        }
    }
    let mut out: Vec<Row> = merged
        .into_iter()
        .map(|(key, accs)| {
            let mut vals = key;
            vals.extend(accs.iter().map(Accumulator::finish));
            Row::new(vals)
        })
        .collect();
    out.sort_by(|a, b| cmp_rows(a, b, group_width));
    Ok(out)
}

/// The accumulator that *merges* partial results of `f`: partial COUNTs
/// merge by summing, partial SUM/MIN/MAX by the same function. (AVG must
/// be decomposed by the caller before partials are formed.)
fn merge_accumulator(f: AggFunc) -> Accumulator {
    match f {
        AggFunc::Count => AggFunc::Sum.accumulator(),
        other => other.accumulator(),
    }
}

/// Max-heap entry ordering by key then full row (ties broken by full-row
/// comparison for determinism).
struct HeapEntry {
    row: Row,
    col: usize,
    asc: bool,
}

impl HeapEntry {
    fn cmp_inner(&self, other: &Self) -> Ordering {
        let o = self.row[self.col]
            .total_cmp(&other.row[self.col])
            .then_with(|| {
                for (a, b) in self.row.values().iter().zip(other.row.values()) {
                    let c = a.total_cmp(b);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                Ordering::Equal
            });
        if self.asc {
            o
        } else {
            o.reverse()
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_inner(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_inner(other)
    }
}

/// Heap-based top-K state, fed batch-at-a-time. `asc = true` keeps the K
/// smallest (the paper's `ORDER BY … ASC LIMIT K`). Rows with NULL keys
/// are skipped (SQL: NULLs sort last and can't enter an ASC top-K unless
/// K exceeds the non-null count; we mirror the paper's numeric
/// workloads). Holds at most K rows no matter how many flow through.
pub struct TopKAccumulator {
    heap: std::collections::BinaryHeap<HeapEntry>,
    order_col: usize,
    k: usize,
    asc: bool,
    log_k: u64,
}

impl TopKAccumulator {
    pub fn new(order_col: usize, k: usize, asc: bool) -> Self {
        TopKAccumulator {
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            order_col,
            k,
            asc,
            log_k: (k.max(2) as f64).log2().ceil() as u64,
        }
    }

    /// Offer one batch of rows to the heap.
    pub fn push_batch(&mut self, rows: &[Row], stats: &mut PhaseStats) {
        if self.k == 0 {
            return;
        }
        for row in rows {
            if row[self.order_col].is_null() {
                continue;
            }
            stats.server_cpu_units += self.log_k;
            let e = HeapEntry {
                row: row.clone(),
                col: self.order_col,
                asc: self.asc,
            };
            if self.heap.len() < self.k {
                self.heap.push(e);
            } else if let Some(top) = self.heap.peek() {
                if e.cmp_inner(top) == Ordering::Less {
                    self.heap.pop();
                    self.heap.push(e);
                }
            }
        }
    }

    /// The top K rows in order.
    pub fn finish(self, stats: &mut PhaseStats) -> Vec<Row> {
        let mut out: Vec<Row> = self
            .heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.row)
            .collect();
        stats.server_cpu_units += out.len() as u64;
        out.truncate(self.k);
        out
    }
}

/// Top-K over materialized input. Wrapper over [`TopKAccumulator`].
pub fn top_k(
    rows: &[Row],
    order_col: usize,
    k: usize,
    asc: bool,
    stats: &mut PhaseStats,
) -> Vec<Row> {
    if k == 0 {
        return Vec::new();
    }
    let mut acc = TopKAccumulator::new(order_col, k, asc);
    acc.push_batch(rows, stats);
    acc.finish(stats)
}

/// Full sort by one column (used by small final result orderings).
pub fn sort_rows(mut rows: Vec<Row>, col: usize, asc: bool, stats: &mut PhaseStats) -> Vec<Row> {
    let n = rows.len() as u64;
    stats.server_cpu_units += n * (64 - n.leading_zeros() as u64).max(1);
    rows.sort_by(|a, b| {
        let o = a[col].total_cmp(&b[col]);
        if asc {
            o
        } else {
            o.reverse()
        }
    });
    rows
}

/// Full sort by several `(column, ascending)` keys, major key first —
/// the Sort operator of the physical plan (`ORDER BY a DESC, b`). The
/// sort is stable, so rows equal on every key keep their input order;
/// with deterministic upstream operators the output is deterministic.
pub fn sort_rows_by_keys(
    mut rows: Vec<Row>,
    keys: &[(usize, bool)],
    stats: &mut PhaseStats,
) -> Vec<Row> {
    let n = rows.len() as u64;
    stats.server_cpu_units += n * (64 - n.leading_zeros() as u64).max(1);
    rows.sort_by(|a, b| {
        for &(col, asc) in keys {
            let o = a[col].total_cmp(&b[col]);
            if o != Ordering::Equal {
                return if asc { o } else { o.reverse() };
            }
        }
        Ordering::Equal
    });
    rows
}

// ---------------------------------------------------------------------
// vectorized columnar kernels
// ---------------------------------------------------------------------
//
// The kernels below are the column-at-a-time twins of the row operators
// above. They consume `ColumnarBatch`es (typed vectors + validity bitmaps,
// dictionary-coded strings kept coded) and produce selection vectors, so
// rows materialize only at operator boundaries that still need them
// (joins, SQL expression fallback, output) — late materialization.
//
// Every kernel charges *exactly* what its row twin charges, so ledger and
// performance-model accounting are identical whichever path executes, and
// the differential suite can assert exact stats equality.

/// A predicate compiled for vectorized evaluation.
///
/// Only *error-free* expression shapes compile: comparisons and
/// three-valued logic never raise (`sql_cmp` is fallible only into NULL),
/// so evaluating both branches of an `AND`/`OR` eagerly is
/// indistinguishable from the row evaluator's short-circuit. Expressions
/// that can raise — arithmetic, `LIKE`, `CASE`, `CAST`, function calls —
/// must go through the row fallback so errors surface identically.
#[derive(Debug, Clone)]
pub enum ColumnarPred {
    /// Constant tri-state (TRUE / FALSE / NULL literal).
    Const(Option<bool>),
    /// A BOOL column used directly as a predicate.
    BoolCol(usize),
    /// `column <op> literal` (literal-column comparisons are flipped at
    /// compile time).
    Cmp {
        col: usize,
        op: BinOp,
        lit: Value,
    },
    Not(Box<ColumnarPred>),
    And(Box<ColumnarPred>, Box<ColumnarPred>),
    Or(Box<ColumnarPred>, Box<ColumnarPred>),
    Between {
        col: usize,
        low: Value,
        high: Value,
        negated: bool,
    },
    InList {
        col: usize,
        list: Vec<Value>,
        negated: bool,
    },
    IsNull {
        col: usize,
        negated: bool,
    },
}

/// Mirror a comparison across `lit <op> col` → `col <op'> lit`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other, // Eq / NotEq are symmetric
    }
}

/// Try to compile a bound predicate for vectorized evaluation. Returns
/// `None` when any sub-expression could raise at eval time (or is not a
/// recognized shape); callers then use the row-at-a-time fallback.
pub fn compile_predicate(expr: &BoundExpr) -> Option<ColumnarPred> {
    match expr {
        BoundExpr::Literal(Value::Bool(b)) => Some(ColumnarPred::Const(Some(*b))),
        BoundExpr::Literal(Value::Null) => Some(ColumnarPred::Const(None)),
        // Non-bool literals error in `as_bool`; let the fallback raise.
        BoundExpr::Literal(_) => None,
        BoundExpr::Column(idx, DataType::Bool) => Some(ColumnarPred::BoolCol(*idx)),
        BoundExpr::Unary {
            op: UnOp::Not,
            expr,
        } => Some(ColumnarPred::Not(Box::new(compile_predicate(expr)?))),
        BoundExpr::Binary { left, op, right } => match op {
            BinOp::And => Some(ColumnarPred::And(
                Box::new(compile_predicate(left)?),
                Box::new(compile_predicate(right)?),
            )),
            BinOp::Or => Some(ColumnarPred::Or(
                Box::new(compile_predicate(left)?),
                Box::new(compile_predicate(right)?),
            )),
            op if op.is_comparison() => match (&**left, &**right) {
                (BoundExpr::Column(c, _), BoundExpr::Literal(v)) => Some(ColumnarPred::Cmp {
                    col: *c,
                    op: *op,
                    lit: v.clone(),
                }),
                (BoundExpr::Literal(v), BoundExpr::Column(c, _)) => Some(ColumnarPred::Cmp {
                    col: *c,
                    op: flip_cmp(*op),
                    lit: v.clone(),
                }),
                _ => None,
            },
            _ => None,
        },
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => match (&**expr, &**low, &**high) {
            (BoundExpr::Column(c, _), BoundExpr::Literal(lo), BoundExpr::Literal(hi)) => {
                Some(ColumnarPred::Between {
                    col: *c,
                    low: lo.clone(),
                    high: hi.clone(),
                    negated: *negated,
                })
            }
            _ => None,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let BoundExpr::Column(c, _) = &**expr else {
                return None;
            };
            let lits: Option<Vec<Value>> = list
                .iter()
                .map(|e| match e {
                    BoundExpr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            Some(ColumnarPred::InList {
                col: *c,
                list: lits?,
                negated: *negated,
            })
        }
        BoundExpr::IsNull { expr, negated } => match &**expr {
            BoundExpr::Column(c, _) => Some(ColumnarPred::IsNull {
                col: *c,
                negated: *negated,
            }),
            _ => None,
        },
        _ => None,
    }
}

/// Tri-state vector: `1` = TRUE, `0` = FALSE, `-1` = NULL.
type TriVec = Vec<i8>;

fn tri(b: Option<bool>) -> i8 {
    match b {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

/// `column <cmp> literal` orderings, one per row (`None` = NULL /
/// incomparable), replicating `Value::sql_cmp` per type pair. Dictionary
/// columns compare the literal against each dictionary entry once and
/// look orderings up per row.
fn cmp_column_lit(col: &Column, lit: &Value) -> Vec<Option<Ordering>> {
    let n = col.len();
    let mut out = vec![None; n];
    if lit.is_null() {
        return out;
    }
    match (&col.data, lit) {
        (ColumnData::Int(v), Value::Int(b)) => {
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = Some(v[i].cmp(b));
                }
            }
        }
        (ColumnData::Int(v), Value::Float(_) | Value::Date(_)) => {
            let b = lit.as_f64().unwrap();
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = (v[i] as f64).partial_cmp(&b);
                }
            }
        }
        (ColumnData::Float(v), Value::Int(_) | Value::Float(_) | Value::Date(_)) => {
            let b = lit.as_f64().unwrap();
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = v[i].partial_cmp(&b);
                }
            }
        }
        (ColumnData::Date(v), Value::Date(b)) => {
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = Some(v[i].cmp(b));
                }
            }
        }
        (ColumnData::Date(v), Value::Int(_) | Value::Float(_)) => {
            let b = lit.as_f64().unwrap();
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = (v[i] as f64).partial_cmp(&b);
                }
            }
        }
        (ColumnData::Date(v), Value::Str(s)) => {
            // sql_cmp compares dates to strings textually via the ISO form.
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = Some(date::format_date(v[i]).as_str().cmp(s.as_str()));
                }
            }
        }
        (ColumnData::Bool(v), Value::Bool(b)) => {
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = Some(v[i].cmp(b));
                }
            }
        }
        (ColumnData::Str(v), Value::Str(s)) => {
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = Some(v[i].as_str().cmp(s.as_str()));
                }
            }
        }
        (ColumnData::Str(v), Value::Date(d)) => {
            let ds = date::format_date(*d);
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = Some(v[i].as_str().cmp(ds.as_str()));
                }
            }
        }
        (ColumnData::DictStr { codes, dict }, _) => {
            // One comparison per distinct value, then a per-row lookup.
            let lut: Vec<Option<Ordering>> = dict
                .iter()
                .map(|s| Value::Str(s.clone()).sql_cmp(lit))
                .collect();
            for i in 0..n {
                if col.is_valid(i) {
                    out[i] = lut[codes[i] as usize];
                }
            }
        }
        // Remaining pairs (Bool vs numeric/Str, Str vs numeric, …) are
        // incomparable under sql_cmp: every row stays None (NULL).
        _ => {}
    }
    out
}

fn ord_to_tri(ord: Option<Ordering>, op: BinOp) -> i8 {
    let Some(o) = ord else { return -1 };
    let b = match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::NotEq => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::LtEq => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::GtEq => o != Ordering::Less,
        _ => unreachable!("non-comparison op in compiled predicate"),
    };
    i8::from(b)
}

fn kleene_and_tri(l: i8, r: i8) -> i8 {
    if l == 0 || r == 0 {
        0
    } else if l == 1 && r == 1 {
        1
    } else {
        -1
    }
}

fn kleene_or_tri(l: i8, r: i8) -> i8 {
    if l == 1 || r == 1 {
        1
    } else if l == 0 && r == 0 {
        0
    } else {
        -1
    }
}

fn negate_tri(t: i8, negated: bool) -> i8 {
    if t < 0 || !negated {
        t
    } else {
        1 - t
    }
}

fn eval_pred_tri(pred: &ColumnarPred, batch: &ColumnarBatch) -> TriVec {
    let n = batch.len();
    match pred {
        ColumnarPred::Const(b) => vec![tri(*b); n],
        ColumnarPred::BoolCol(c) => {
            let col = batch.column(*c);
            let ColumnData::Bool(v) = &col.data else {
                // Schema says BOOL but the vector is another type only if
                // the batch was built inconsistently; treat as NULL.
                return vec![-1; n];
            };
            (0..n)
                .map(|i| if col.is_valid(i) { i8::from(v[i]) } else { -1 })
                .collect()
        }
        ColumnarPred::Cmp { col, op, lit } => cmp_column_lit(batch.column(*col), lit)
            .into_iter()
            .map(|o| ord_to_tri(o, *op))
            .collect(),
        ColumnarPred::Not(inner) => eval_pred_tri(inner, batch)
            .into_iter()
            .map(|t| if t < 0 { -1 } else { 1 - t })
            .collect(),
        ColumnarPred::And(l, r) => {
            let lv = eval_pred_tri(l, batch);
            let rv = eval_pred_tri(r, batch);
            lv.into_iter()
                .zip(rv)
                .map(|(a, b)| kleene_and_tri(a, b))
                .collect()
        }
        ColumnarPred::Or(l, r) => {
            let lv = eval_pred_tri(l, batch);
            let rv = eval_pred_tri(r, batch);
            lv.into_iter()
                .zip(rv)
                .map(|(a, b)| kleene_or_tri(a, b))
                .collect()
        }
        ColumnarPred::Between {
            col,
            low,
            high,
            negated,
        } => {
            let c = batch.column(*col);
            let lo = cmp_column_lit(c, low);
            let hi = cmp_column_lit(c, high);
            (0..n)
                .map(|i| {
                    let ge_low = lo[i].map(|o| o != Ordering::Less).map_or(-1, i8::from);
                    let le_high = hi[i].map(|o| o != Ordering::Greater).map_or(-1, i8::from);
                    negate_tri(kleene_and_tri(ge_low, le_high), *negated)
                })
                .collect()
        }
        ColumnarPred::InList { col, list, negated } => {
            let c = batch.column(*col);
            let per_item: Vec<Vec<Option<Ordering>>> =
                list.iter().map(|lit| cmp_column_lit(c, lit)).collect();
            (0..n)
                .map(|i| {
                    let mut found = false;
                    let mut saw_null = false;
                    for item in &per_item {
                        match item[i] {
                            Some(Ordering::Equal) => {
                                found = true;
                                break;
                            }
                            Some(_) => {}
                            None => saw_null = true,
                        }
                    }
                    let t = if found {
                        1
                    } else if saw_null {
                        -1
                    } else {
                        0
                    };
                    negate_tri(t, *negated)
                })
                .collect()
        }
        ColumnarPred::IsNull { col, negated } => {
            let c = batch.column(*col);
            (0..n)
                .map(|i| i8::from(c.is_valid(i) == *negated))
                .collect()
        }
    }
}

/// Vectorized filter: evaluate a compiled predicate over a columnar batch
/// and return the selection vector of passing rows (tri-state TRUE only,
/// as in SQL `WHERE`). Charges `batch.len()` CPU units — identical to
/// [`filter_rows`] on the same input.
pub fn filter_columnar(
    batch: &ColumnarBatch,
    pred: &ColumnarPred,
    stats: &mut PhaseStats,
) -> SelVec {
    stats.server_cpu_units += batch.len() as u64;
    eval_pred_tri(pred, batch)
        .into_iter()
        .enumerate()
        .filter_map(|(i, t)| (t == 1).then_some(i as u32))
        .collect()
}

/// Row-at-a-time fallback for predicates that do not compile (arithmetic,
/// `LIKE`, `CASE`, …): materializes each row and runs the row evaluator so
/// errors surface identically. Charges `batch.len()` like [`filter_rows`].
pub fn filter_columnar_fallback(
    batch: &ColumnarBatch,
    pred: &BoundExpr,
    stats: &mut PhaseStats,
) -> Result<SelVec> {
    stats.server_cpu_units += batch.len() as u64;
    let mut out = Vec::new();
    for i in 0..batch.len() {
        if eval_predicate(pred, &batch.row_at(i))? {
            out.push(i as u32);
        }
    }
    Ok(out)
}

/// Fold the selected slots of a typed column into an accumulator,
/// replicating [`Accumulator::update`] row-for-row (same visit order, same
/// overflow points, same NaN comparison semantics, same errors). NULL
/// slots are skipped. Charges nothing — like `update`, the caller accounts
/// for rows visited.
pub fn update_accumulator_columnar(acc: &mut Accumulator, col: &Column, sel: &[u32]) -> Result<()> {
    match (&mut *acc, &col.data) {
        (
            Accumulator::Sum {
                int,
                float,
                saw_float,
                count,
            },
            data,
        ) => match data {
            ColumnData::Int(v) => {
                for &i in sel {
                    let i = i as usize;
                    if col.is_valid(i) {
                        *int = int
                            .checked_add(v[i])
                            .ok_or_else(|| Error::Eval("integer overflow in SUM".into()))?;
                        *count += 1;
                    }
                }
            }
            ColumnData::Float(v) => {
                for &i in sel {
                    let i = i as usize;
                    if col.is_valid(i) {
                        *float += v[i];
                        *saw_float = true;
                        *count += 1;
                    }
                }
            }
            ColumnData::Date(v) => {
                // Date is non-Int: the row path takes the float branch.
                for &i in sel {
                    let i = i as usize;
                    if col.is_valid(i) {
                        *float += v[i] as f64;
                        *saw_float = true;
                        *count += 1;
                    }
                }
            }
            // Bool/Str inputs error in as_f64; use the row path for the
            // exact error message.
            _ => {
                for &i in sel {
                    acc.update(&col.value_at(i as usize))?;
                }
            }
        },
        (Accumulator::Count(n), _) => {
            *n += sel.iter().filter(|&&i| col.is_valid(i as usize)).count() as u64;
        }
        (Accumulator::Avg { sum, count }, data) => match data {
            ColumnData::Int(v) => {
                for &i in sel {
                    let i = i as usize;
                    if col.is_valid(i) {
                        *sum += v[i] as f64;
                        *count += 1;
                    }
                }
            }
            ColumnData::Float(v) => {
                for &i in sel {
                    let i = i as usize;
                    if col.is_valid(i) {
                        *sum += v[i];
                        *count += 1;
                    }
                }
            }
            ColumnData::Date(v) => {
                for &i in sel {
                    let i = i as usize;
                    if col.is_valid(i) {
                        *sum += v[i] as f64;
                        *count += 1;
                    }
                }
            }
            _ => {
                for &i in sel {
                    acc.update(&col.value_at(i as usize))?;
                }
            }
        },
        (Accumulator::Min(_) | Accumulator::Max(_), ColumnData::Str(v)) => {
            // Track the batch-best index; materialize one Value per batch.
            // String comparison is total, so folding the batch first and
            // updating once is equivalent to the sequential fold.
            let want = if matches!(acc, Accumulator::Min(_)) {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            let mut best: Option<usize> = None;
            for &i in sel {
                let i = i as usize;
                if !col.is_valid(i) {
                    continue;
                }
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        if v[i].as_str().cmp(v[b].as_str()) == want {
                            i
                        } else {
                            b
                        }
                    }
                });
            }
            if let Some(b) = best {
                acc.update(&Value::Str(v[b].clone()))?;
            }
        }
        (Accumulator::Min(_) | Accumulator::Max(_), ColumnData::DictStr { codes, dict }) => {
            let want = if matches!(acc, Accumulator::Min(_)) {
                Ordering::Greater // entry(best) cmp entry(i): replace when best > i for Min
            } else {
                Ordering::Less
            };
            let mut best: Option<u32> = None;
            for &i in sel {
                let i = i as usize;
                if !col.is_valid(i) {
                    continue;
                }
                let code = codes[i];
                best = Some(match best {
                    None => code,
                    Some(b) => {
                        if dict[b as usize].as_str().cmp(dict[code as usize].as_str()) == want {
                            code
                        } else {
                            b
                        }
                    }
                });
            }
            if let Some(b) = best {
                acc.update(&Value::Str(dict[b as usize].clone()))?;
            }
        }
        (Accumulator::Min(_) | Accumulator::Max(_), _) => {
            // Numeric / bool Min-Max: Value construction is free, and the
            // row-path update preserves partial-compare (NaN) semantics.
            for &i in sel {
                acc.update(&col.value_at(i as usize))?;
            }
        }
    }
    Ok(())
}

impl GroupByAccumulator {
    /// Columnar twin of [`GroupByAccumulator::update_batch`]: group keys
    /// and aggregate inputs materialize per row, but only the referenced
    /// columns — unreferenced columns are never touched. Charges
    /// `sel.len()` (the rows fed), like the row path fed the same rows.
    pub fn update_columnar(
        &mut self,
        batch: &ColumnarBatch,
        sel: &[u32],
        stats: &mut PhaseStats,
    ) -> Result<()> {
        stats.server_cpu_units += sel.len() as u64;
        for &i in sel {
            let i = i as usize;
            let key: Vec<Value> = self
                .group_cols
                .iter()
                .map(|&c| batch.column(c).value_at(i))
                .collect();
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|(f, _)| f.accumulator()).collect());
            for (acc, (_, col)) in accs.iter_mut().zip(&self.aggs) {
                match col {
                    Some(c) => acc.update(&batch.column(*c).value_at(i))?,
                    None => acc.update(&Value::Bool(true))?,
                }
            }
        }
        Ok(())
    }
}

impl TopKAccumulator {
    /// Columnar twin of [`TopKAccumulator::push_batch`]: the order key is
    /// compared column-side and a full row materializes only when it
    /// actually enters the heap. NULL keys are skipped uncharged; every
    /// surviving candidate charges `log2(K)`, like the row path.
    pub fn push_columnar(&mut self, batch: &ColumnarBatch, sel: &[u32], stats: &mut PhaseStats) {
        if self.k == 0 {
            return;
        }
        let key_col = batch.column(self.order_col);
        for &i in sel {
            let i = i as usize;
            if !key_col.is_valid(i) {
                continue;
            }
            stats.server_cpu_units += self.log_k;
            if self.heap.len() < self.k {
                self.heap.push(HeapEntry {
                    row: batch.row_at(i),
                    col: self.order_col,
                    asc: self.asc,
                });
                continue;
            }
            let Some(top) = self.heap.peek() else {
                continue;
            };
            // Key-only comparison first: it decides unless exactly equal,
            // in which case the full-row tiebreak needs a materialized row.
            let kv = key_col.value_at(i);
            let o = kv.total_cmp(&top.row[self.order_col]);
            let o = if self.asc { o } else { o.reverse() };
            let replace = match o {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    let e = HeapEntry {
                        row: batch.row_at(i),
                        col: self.order_col,
                        asc: self.asc,
                    };
                    e.cmp_inner(top) == Ordering::Less
                }
            };
            if replace {
                self.heap.pop();
                self.heap.push(HeapEntry {
                    row: batch.row_at(i),
                    col: self.order_col,
                    asc: self.asc,
                });
            }
        }
    }
}

/// Identity selection vector `[0, n)` — "all rows".
pub fn full_selection(n: usize) -> SelVec {
    (0..n as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushdown_common::{DataType, Schema};
    use pushdown_sql::bind::Binder;
    use pushdown_sql::parse_expr;

    fn row(vals: Vec<i64>) -> Row {
        Row::new(vals.into_iter().map(Value::Int).collect())
    }

    #[test]
    fn filter_and_project() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let pred = Binder::new(&schema)
            .bind_expr(&parse_expr("a > 2").unwrap())
            .unwrap();
        let mut stats = PhaseStats::default();
        let rows = vec![row(vec![1, 10]), row(vec![3, 30]), row(vec![5, 50])];
        let filtered = filter_rows(rows, &pred, &mut stats).unwrap();
        assert_eq!(filtered.len(), 2);
        let projected = project_rows(filtered, &[1], &mut stats);
        assert_eq!(projected, vec![row(vec![30]), row(vec![50])]);
        assert!(stats.server_cpu_units >= 5);
    }

    #[test]
    fn hash_join_inner_semantics() {
        let left = vec![row(vec![1, 100]), row(vec![2, 200]), row(vec![2, 201])];
        let right = vec![row(vec![2, 9]), row(vec![3, 8]), row(vec![2, 7])];
        let mut stats = PhaseStats::default();
        let out = hash_join(left, 0, right, 0, &mut stats);
        // key 2: 2 left x 2 right = 4 rows; keys 1,3 unmatched.
        assert_eq!(out.len(), 4);
        assert!(out
            .iter()
            .all(|r| r[0] == Value::Int(2) && r[2] == Value::Int(2)));
        assert!(out
            .iter()
            .any(|r| r[1] == Value::Int(200) && r[3] == Value::Int(9)));
    }

    #[test]
    fn hash_join_skips_null_keys() {
        let left = vec![Row::new(vec![Value::Null, Value::Int(1)])];
        let right = vec![Row::new(vec![Value::Null, Value::Int(2)])];
        let mut stats = PhaseStats::default();
        assert!(hash_join(left, 0, right, 0, &mut stats).is_empty());
    }

    #[test]
    fn batched_join_equals_whole_input_join() {
        let left: Vec<Row> = (0..200).map(|i| row(vec![i % 40, i])).collect();
        let right: Vec<Row> = (0..300).map(|i| row(vec![i % 55, 1000 + i])).collect();
        let mut s1 = PhaseStats::default();
        let whole = hash_join(left.clone(), 0, right.clone(), 0, &mut s1);

        let mut s2 = PhaseStats::default();
        let mut build = HashJoinBuild::new(0);
        for chunk in left.chunks(33) {
            build.add_batch(chunk.to_vec(), &mut s2);
        }
        let mut probed = Vec::new();
        for chunk in right.chunks(29) {
            probed.extend(build.probe_batch(chunk, 0, &mut s2));
        }
        assert_eq!(whole, probed);
        // Batching must not change the CPU accounting.
        assert_eq!(s1.server_cpu_units, s2.server_cpu_units);
    }

    #[test]
    fn group_by_matches_hand_computation() {
        let rows = vec![
            row(vec![1, 10]),
            row(vec![2, 20]),
            row(vec![1, 30]),
            row(vec![2, 5]),
            row(vec![3, 7]),
        ];
        let mut stats = PhaseStats::default();
        let out = hash_group_by(
            &rows,
            &[0],
            &[
                (AggFunc::Sum, Some(1)),
                (AggFunc::Count, None),
                (AggFunc::Max, Some(1)),
            ],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            out,
            vec![
                Row::new(vec![
                    Value::Int(1),
                    Value::Int(40),
                    Value::Int(2),
                    Value::Int(30)
                ]),
                Row::new(vec![
                    Value::Int(2),
                    Value::Int(25),
                    Value::Int(2),
                    Value::Int(20)
                ]),
                Row::new(vec![
                    Value::Int(3),
                    Value::Int(7),
                    Value::Int(1),
                    Value::Int(7)
                ]),
            ]
        );
    }

    #[test]
    fn group_by_multi_column_keys() {
        let rows = vec![row(vec![1, 1, 5]), row(vec![1, 2, 6]), row(vec![1, 1, 7])];
        let mut stats = PhaseStats::default();
        let out = hash_group_by(&rows, &[0, 1], &[(AggFunc::Sum, Some(2))], &mut stats).unwrap();
        assert_eq!(
            out,
            vec![
                Row::new(vec![Value::Int(1), Value::Int(1), Value::Int(12)]),
                Row::new(vec![Value::Int(1), Value::Int(2), Value::Int(6)]),
            ]
        );
    }

    #[test]
    fn batched_group_by_equals_whole_input() {
        let rows: Vec<Row> = (0..500).map(|i| row(vec![i % 13, i, i % 7])).collect();
        let aggs = [
            (AggFunc::Sum, Some(1)),
            (AggFunc::Count, None),
            (AggFunc::Min, Some(2)),
        ];
        let mut s1 = PhaseStats::default();
        let whole = hash_group_by(&rows, &[0], &aggs, &mut s1).unwrap();

        let mut s2 = PhaseStats::default();
        let mut acc = GroupByAccumulator::new(vec![0], aggs.to_vec());
        for chunk in rows.chunks(37) {
            acc.update_batch(chunk, &mut s2).unwrap();
        }
        assert_eq!(whole, acc.finish(&mut s2));
        assert_eq!(s1.server_cpu_units, s2.server_cpu_units);
    }

    #[test]
    fn merge_group_rows_combines_partials() {
        // Partial 1 says group 1 sum=10 count=2; partial 2 says group 1
        // sum=5 count=1 and group 2 sum=7 count=3.
        let p1 = vec![Row::new(vec![Value::Int(1), Value::Int(10), Value::Int(2)])];
        let p2 = vec![
            Row::new(vec![Value::Int(1), Value::Int(5), Value::Int(1)]),
            Row::new(vec![Value::Int(2), Value::Int(7), Value::Int(3)]),
        ];
        let mut stats = PhaseStats::default();
        let out =
            merge_group_rows(vec![p1, p2], 1, &[AggFunc::Sum, AggFunc::Count], &mut stats).unwrap();
        assert_eq!(
            out,
            vec![
                Row::new(vec![Value::Int(1), Value::Int(15), Value::Int(3)]),
                Row::new(vec![Value::Int(2), Value::Int(7), Value::Int(3)]),
            ]
        );
    }

    #[test]
    fn top_k_smallest_and_largest() {
        let rows: Vec<Row> = [5, 3, 9, 1, 7, 1, 8]
            .iter()
            .map(|&v| row(vec![v]))
            .collect();
        let mut stats = PhaseStats::default();
        let smallest = top_k(&rows, 0, 3, true, &mut stats);
        assert_eq!(smallest, vec![row(vec![1]), row(vec![1]), row(vec![3])]);
        let largest = top_k(&rows, 0, 2, false, &mut stats);
        assert_eq!(largest, vec![row(vec![9]), row(vec![8])]);
    }

    #[test]
    fn top_k_equals_sort_truncate() {
        let rows: Vec<Row> = (0..500).map(|i| row(vec![(i * 7919) % 1000, i])).collect();
        let mut s1 = PhaseStats::default();
        let heap = top_k(&rows, 0, 25, true, &mut s1);
        let mut s2 = PhaseStats::default();
        let mut sorted = sort_rows(rows, 0, true, &mut s2);
        sorted.truncate(25);
        assert_eq!(heap.len(), 25);
        for (a, b) in heap.iter().zip(&sorted) {
            assert_eq!(a[0], b[0]);
        }
    }

    #[test]
    fn batched_top_k_equals_whole_input() {
        let rows: Vec<Row> = (0..400).map(|i| row(vec![(i * 6151) % 977, i])).collect();
        let mut s1 = PhaseStats::default();
        let whole = top_k(&rows, 0, 17, true, &mut s1);

        let mut s2 = PhaseStats::default();
        let mut acc = TopKAccumulator::new(0, 17, true);
        for chunk in rows.chunks(41) {
            acc.push_batch(chunk, &mut s2);
        }
        assert_eq!(whole, acc.finish(&mut s2));
        assert_eq!(s1.server_cpu_units, s2.server_cpu_units);
    }

    #[test]
    fn top_k_edge_cases() {
        let rows: Vec<Row> = vec![row(vec![1]), row(vec![2])];
        let mut stats = PhaseStats::default();
        assert!(top_k(&rows, 0, 0, true, &mut stats).is_empty());
        assert_eq!(top_k(&rows, 0, 10, true, &mut stats).len(), 2);
        // NULL keys are skipped.
        let with_null = vec![Row::new(vec![Value::Null]), row(vec![5])];
        assert_eq!(top_k(&with_null, 0, 2, true, &mut stats).len(), 1);
    }

    #[test]
    fn multi_key_sort_orders_major_then_minor() {
        let rows = vec![
            row(vec![2, 1]),
            row(vec![1, 9]),
            row(vec![2, 3]),
            row(vec![1, 4]),
        ];
        let mut stats = PhaseStats::default();
        // Major: col 0 DESC; minor: col 1 ASC.
        let sorted = sort_rows_by_keys(rows, &[(0, false), (1, true)], &mut stats);
        assert_eq!(
            sorted,
            vec![
                row(vec![2, 1]),
                row(vec![2, 3]),
                row(vec![1, 4]),
                row(vec![1, 9]),
            ]
        );
        assert!(stats.server_cpu_units > 0);
    }

    #[test]
    fn map_rows_evaluates_expressions() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let e = Binder::new(&schema)
            .bind_expr(&parse_expr("a * 2 + 1").unwrap())
            .unwrap();
        let mut stats = PhaseStats::default();
        let out = map_rows(&[row(vec![3])], &[e], &mut stats).unwrap();
        assert_eq!(out, vec![row(vec![7])]);
    }

    // -- vectorized kernel parity ------------------------------------

    fn mixed_schema() -> Schema {
        Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
            ("d", DataType::Date),
            ("b", DataType::Bool),
        ])
    }

    /// NULL-heavy, dict-eligible sample (col `s` repeats 5 distinct values).
    fn mixed_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    if i % 11 == 3 {
                        Value::Null
                    } else {
                        Value::Int(i as i64 % 40 - 20)
                    },
                    if i % 13 == 5 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 * 0.25 - 4.0)
                    },
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("name-{}", i % 5))
                    },
                    Value::Date(9000 + (i as i32 % 50)),
                    Value::Bool(i % 3 == 0),
                ])
            })
            .collect()
    }

    fn parity_filter(src: &str) {
        let schema = mixed_schema();
        let rows = mixed_rows(200);
        let pred = Binder::new(&schema)
            .bind_expr(&parse_expr(src).unwrap())
            .unwrap();
        let compiled =
            compile_predicate(&pred).unwrap_or_else(|| panic!("predicate should compile: {src}"));
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let mut cs = PhaseStats::default();
        let sel = filter_columnar(&batch, &compiled, &mut cs);
        let mut rs = PhaseStats::default();
        let expect = filter_rows(rows.clone(), &pred, &mut rs).unwrap();
        assert_eq!(batch.gather(&sel), expect, "rows differ for {src}");
        assert_eq!(cs, rs, "cpu charge differs for {src}");
    }

    #[test]
    fn vectorized_filter_matches_row_filter() {
        for src in [
            "i > 3",
            "i <= -5",
            "7 > i",
            "f < 2.5",
            "i = 7 OR f >= 40.0",
            "i > 0 AND f < 10.0",
            "s = 'name-2'",
            "s <> 'name-2'",
            "s >= 'name-3'",
            "d BETWEEN 9010 AND 9030",
            "i BETWEEN -3 AND 3",
            "i NOT BETWEEN -3 AND 3",
            "i IN (1, 5, -2)",
            "s IN ('name-1', 'name-4')",
            "s NOT IN ('name-1')",
            "i IS NULL",
            "s IS NOT NULL",
            "NOT (i > 0)",
            "b",
            "b AND i > 0",
            "i > 2 AND (s = 'name-1' OR s IS NULL)",
            "i = 2.5",          // int col vs float literal
            "d > '1994-01-01'", // date col vs string literal
            "s = 3",            // incomparable: always NULL
        ]
        .iter()
        .filter(|src| {
            let schema = mixed_schema();
            let pred = Binder::new(&schema)
                .bind_expr(&parse_expr(src).unwrap())
                .unwrap();
            compile_predicate(&pred).is_some()
        }) {
            parity_filter(src);
        }
    }

    #[test]
    fn fallback_filter_matches_row_filter() {
        let schema = mixed_schema();
        let rows = mixed_rows(150);
        for src in ["i % 2 = 0", "s LIKE 'name-%'", "i + 1 > 3"] {
            let pred = Binder::new(&schema)
                .bind_expr(&parse_expr(src).unwrap())
                .unwrap();
            assert!(
                compile_predicate(&pred).is_none(),
                "{src} must not vectorize (it can raise)"
            );
            let batch = ColumnarBatch::from_rows(&schema, &rows);
            let mut cs = PhaseStats::default();
            let sel = filter_columnar_fallback(&batch, &pred, &mut cs).unwrap();
            let mut rs = PhaseStats::default();
            let expect = filter_rows(rows.clone(), &pred, &mut rs).unwrap();
            assert_eq!(batch.gather(&sel), expect, "{src}");
            assert_eq!(cs, rs, "{src}");
        }
    }

    #[test]
    fn columnar_accumulators_match_row_accumulators() {
        let schema = mixed_schema();
        let rows = mixed_rows(300);
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let sel = full_selection(batch.len());
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            for col in 0..schema.len() {
                let mut row_acc = func.accumulator();
                let mut row_err = None;
                for r in &rows {
                    if let Err(e) = row_acc.update(&r[col]) {
                        row_err = Some(e);
                        break;
                    }
                }
                let mut col_acc = func.accumulator();
                let col_res = update_accumulator_columnar(&mut col_acc, batch.column(col), &sel);
                match row_err {
                    Some(_) => assert!(col_res.is_err(), "{func:?} col {col} should error"),
                    None => {
                        col_res.unwrap();
                        assert_eq!(
                            col_acc.finish(),
                            row_acc.finish(),
                            "{func:?} over column {col}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn columnar_sum_overflow_errors_like_row_path() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Value::Int(i64::MAX)]),
            Row::new(vec![Value::Int(1)]),
        ];
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let mut acc = AggFunc::Sum.accumulator();
        assert!(
            update_accumulator_columnar(&mut acc, batch.column(0), &full_selection(2)).is_err()
        );
    }

    #[test]
    fn columnar_group_by_matches_row_group_by() {
        let schema = mixed_schema();
        let rows = mixed_rows(250);
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let aggs = vec![
            (AggFunc::Sum, Some(0)),
            (AggFunc::Count, None),
            (AggFunc::Min, Some(1)),
            (AggFunc::Max, Some(3)),
        ];
        let mut rs = PhaseStats::default();
        let mut row_gb = GroupByAccumulator::new(vec![2, 4], aggs.clone());
        for chunk in rows.chunks(33) {
            row_gb.update_batch(chunk, &mut rs).unwrap();
        }
        let expect = row_gb.finish(&mut rs);
        let mut cs = PhaseStats::default();
        let mut col_gb = GroupByAccumulator::new(vec![2, 4], aggs);
        for b in batch.clone().chunks(41) {
            let sel = full_selection(b.len());
            col_gb.update_columnar(&b, &sel, &mut cs).unwrap();
        }
        let got = col_gb.finish(&mut cs);
        assert_eq!(got, expect);
        assert_eq!(cs, rs, "group-by charges must be identical");
    }

    #[test]
    fn columnar_top_k_matches_row_top_k() {
        let schema = mixed_schema();
        let rows = mixed_rows(300);
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        for (col, k, asc) in [(0, 10, true), (1, 7, false), (2, 5, true), (3, 12, false)] {
            let mut rs = PhaseStats::default();
            let mut row_tk = TopKAccumulator::new(col, k, asc);
            for chunk in rows.chunks(29) {
                row_tk.push_batch(chunk, &mut rs);
            }
            let expect = row_tk.finish(&mut rs);
            let mut cs = PhaseStats::default();
            let mut col_tk = TopKAccumulator::new(col, k, asc);
            for b in batch.clone().chunks(53) {
                let sel = full_selection(b.len());
                col_tk.push_columnar(&b, &sel, &mut cs);
            }
            let got = col_tk.finish(&mut cs);
            assert_eq!(got, expect, "top-{k} col {col} asc={asc}");
            assert_eq!(cs, rs, "top-K charges must be identical");
        }
    }

    #[test]
    fn selection_vector_feeds_group_by_like_filtered_rows() {
        let schema = mixed_schema();
        let rows = mixed_rows(180);
        let pred = Binder::new(&schema)
            .bind_expr(&parse_expr("i > 0").unwrap())
            .unwrap();
        let compiled = compile_predicate(&pred).unwrap();
        let batch = ColumnarBatch::from_rows(&schema, &rows);
        let mut cs = PhaseStats::default();
        let sel = filter_columnar(&batch, &compiled, &mut cs);
        let mut col_gb = GroupByAccumulator::new(vec![4], vec![(AggFunc::Avg, Some(0))]);
        col_gb.update_columnar(&batch, &sel, &mut cs).unwrap();
        let got = col_gb.finish(&mut cs);

        let mut rs = PhaseStats::default();
        let filtered = filter_rows(rows, &pred, &mut rs).unwrap();
        let mut row_gb = GroupByAccumulator::new(vec![4], vec![(AggFunc::Avg, Some(0))]);
        row_gb.update_batch(&filtered, &mut rs).unwrap();
        let expect = row_gb.finish(&mut rs);
        assert_eq!(got, expect);
        assert_eq!(cs, rs);
    }
}
