//! Server-side (compute-node) operators.
//!
//! PushdownDB is a bare-bones row engine, like the paper's testbed
//! (§III). Operators come in two shapes:
//!
//! * **batch state machines** ([`TopKAccumulator`], [`GroupByAccumulator`],
//!   [`HashJoinBuild`]) that consume the streaming scan's `RowBatch`es
//!   incrementally, so a pipeline holds its *state* (a K-heap, a hash of
//!   group accumulators, a build table) plus one batch — never the whole
//!   table;
//! * thin **whole-input wrappers** ([`top_k`], [`hash_group_by`],
//!   [`hash_join`]) over those state machines for callers that already
//!   hold materialized rows.
//!
//! Each operator reports its work into a [`PhaseStats`] as
//! `server_cpu_units` so the performance model can charge compute time
//! (one unit ≈ one row visited by one non-trivial operator; heap pushes
//! charge `log2(K)`). The wrappers charge exactly what the equivalent
//! batch-wise run charges: accounting is independent of batching.

use pushdown_common::perf::PhaseStats;
use pushdown_common::{Result, Row, Value};
use pushdown_sql::agg::{Accumulator, AggFunc};
use pushdown_sql::bind::BoundExpr;
use pushdown_sql::eval::{eval, eval_predicate};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Keep rows passing the predicate. Call once per batch on the streaming
/// path; per-call CPU charges sum to the whole-input charge.
pub fn filter_rows(rows: Vec<Row>, pred: &BoundExpr, stats: &mut PhaseStats) -> Result<Vec<Row>> {
    stats.server_cpu_units += rows.len() as u64;
    let mut out = Vec::new();
    for r in rows {
        if eval_predicate(pred, &r)? {
            out.push(r);
        }
    }
    Ok(out)
}

/// Project rows onto the given column indices.
pub fn project_rows(rows: Vec<Row>, indices: &[usize], stats: &mut PhaseStats) -> Vec<Row> {
    stats.server_cpu_units += rows.len() as u64;
    rows.into_iter().map(|r| r.project(indices)).collect()
}

/// Evaluate one expression per row (generalized projection).
pub fn map_rows(rows: &[Row], exprs: &[BoundExpr], stats: &mut PhaseStats) -> Result<Vec<Row>> {
    stats.server_cpu_units += rows.len() as u64;
    rows.iter()
        .map(|r| {
            let vals: Result<Vec<Value>> = exprs.iter().map(|e| eval(e, r)).collect();
            Ok(Row::new(vals?))
        })
        .collect()
}

/// The build side of a hash inner join, fed batch-at-a-time. NULL keys
/// never enter the table (SQL semantics).
pub struct HashJoinBuild {
    key: usize,
    table: HashMap<Value, Vec<Row>>,
}

impl HashJoinBuild {
    pub fn new(key: usize) -> Self {
        HashJoinBuild {
            key,
            table: HashMap::new(),
        }
    }

    /// Insert one batch of build-side rows.
    pub fn add_batch(&mut self, rows: Vec<Row>, stats: &mut PhaseStats) {
        stats.server_cpu_units += rows.len() as u64;
        for row in rows {
            let k = &row[self.key];
            if k.is_null() {
                continue;
            }
            self.table.entry(k.clone()).or_default().push(row);
        }
    }

    /// Probe one batch of rows against the finished build table; output
    /// rows are `build ++ probe`. NULL probe keys never match.
    pub fn probe_batch(&self, rows: &[Row], probe_key: usize, stats: &mut PhaseStats) -> Vec<Row> {
        stats.server_cpu_units += rows.len() as u64;
        let mut out = Vec::new();
        for r in rows {
            let k = &r[probe_key];
            if k.is_null() {
                continue;
            }
            if let Some(matches) = self.table.get(k) {
                stats.server_cpu_units += matches.len() as u64;
                for l in matches {
                    out.push(l.concat(r));
                }
            }
        }
        out
    }
}

/// Hash inner join over materialized inputs: build on `left`, probe with
/// `right`. Wrapper over [`HashJoinBuild`].
pub fn hash_join(
    left: Vec<Row>,
    left_key: usize,
    right: Vec<Row>,
    right_key: usize,
    stats: &mut PhaseStats,
) -> Vec<Row> {
    let mut build = HashJoinBuild::new(left_key);
    build.add_batch(left, stats);
    build.probe_batch(&right, right_key, stats)
}

/// Hash aggregation state, fed batch-at-a-time. `aggs` pairs an aggregate
/// function with the input column it consumes (`None` = COUNT(*)).
pub struct GroupByAccumulator {
    group_cols: Vec<usize>,
    aggs: Vec<(AggFunc, Option<usize>)>,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
}

impl GroupByAccumulator {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<(AggFunc, Option<usize>)>) -> Self {
        GroupByAccumulator {
            group_cols,
            aggs,
            groups: HashMap::new(),
        }
    }

    /// Fold one batch of input rows into the group table.
    pub fn update_batch(&mut self, rows: &[Row], stats: &mut PhaseStats) -> Result<()> {
        stats.server_cpu_units += rows.len() as u64;
        for r in rows {
            let key: Vec<Value> = self.group_cols.iter().map(|&c| r[c].clone()).collect();
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|(f, _)| f.accumulator()).collect());
            for (acc, (_, col)) in accs.iter_mut().zip(&self.aggs) {
                match col {
                    Some(c) => acc.update(&r[*c])?,
                    None => acc.update(&Value::Bool(true))?,
                }
            }
        }
        Ok(())
    }

    /// Emit `group values ++ aggregate values`, sorted by group for
    /// determinism.
    pub fn finish(self, stats: &mut PhaseStats) -> Vec<Row> {
        let group_width = self.group_cols.len();
        let mut out: Vec<Row> = self
            .groups
            .into_iter()
            .map(|(key, accs)| {
                let mut vals = key;
                vals.extend(accs.iter().map(Accumulator::finish));
                Row::new(vals)
            })
            .collect();
        out.sort_by(|a, b| cmp_rows(a, b, group_width));
        stats.server_cpu_units += out.len() as u64;
        out
    }
}

/// Hash aggregation over materialized input. Wrapper over
/// [`GroupByAccumulator`].
pub fn hash_group_by(
    rows: &[Row],
    group_cols: &[usize],
    aggs: &[(AggFunc, Option<usize>)],
    stats: &mut PhaseStats,
) -> Result<Vec<Row>> {
    let mut acc = GroupByAccumulator::new(group_cols.to_vec(), aggs.to_vec());
    acc.update_batch(rows, stats)?;
    Ok(acc.finish(stats))
}

fn cmp_rows(a: &Row, b: &Row, prefix: usize) -> Ordering {
    for i in 0..prefix {
        let o = a[i].total_cmp(&b[i]);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Merge pre-aggregated partials (e.g. one per group per source) whose
/// rows are `group values ++ accumulator outputs` from `SUM`-mergeable
/// functions. Used when hybrid group-by combines the S3-side and
/// server-side halves.
pub fn merge_group_rows(
    parts: Vec<Vec<Row>>,
    group_width: usize,
    aggs: &[AggFunc],
    stats: &mut PhaseStats,
) -> Result<Vec<Row>> {
    let mut merged: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    for part in parts {
        stats.server_cpu_units += part.len() as u64;
        for row in part {
            let key: Vec<Value> = row.values()[..group_width].to_vec();
            let accs = merged
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|f| merge_accumulator(*f)).collect());
            for (i, acc) in accs.iter_mut().enumerate() {
                acc.update(&row[group_width + i])?;
            }
        }
    }
    let mut out: Vec<Row> = merged
        .into_iter()
        .map(|(key, accs)| {
            let mut vals = key;
            vals.extend(accs.iter().map(Accumulator::finish));
            Row::new(vals)
        })
        .collect();
    out.sort_by(|a, b| cmp_rows(a, b, group_width));
    Ok(out)
}

/// The accumulator that *merges* partial results of `f`: partial COUNTs
/// merge by summing, partial SUM/MIN/MAX by the same function. (AVG must
/// be decomposed by the caller before partials are formed.)
fn merge_accumulator(f: AggFunc) -> Accumulator {
    match f {
        AggFunc::Count => AggFunc::Sum.accumulator(),
        other => other.accumulator(),
    }
}

/// Max-heap entry ordering by key then full row (ties broken by full-row
/// comparison for determinism).
struct HeapEntry {
    row: Row,
    col: usize,
    asc: bool,
}

impl HeapEntry {
    fn cmp_inner(&self, other: &Self) -> Ordering {
        let o = self.row[self.col]
            .total_cmp(&other.row[self.col])
            .then_with(|| {
                for (a, b) in self.row.values().iter().zip(other.row.values()) {
                    let c = a.total_cmp(b);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                Ordering::Equal
            });
        if self.asc {
            o
        } else {
            o.reverse()
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_inner(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_inner(other)
    }
}

/// Heap-based top-K state, fed batch-at-a-time. `asc = true` keeps the K
/// smallest (the paper's `ORDER BY … ASC LIMIT K`). Rows with NULL keys
/// are skipped (SQL: NULLs sort last and can't enter an ASC top-K unless
/// K exceeds the non-null count; we mirror the paper's numeric
/// workloads). Holds at most K rows no matter how many flow through.
pub struct TopKAccumulator {
    heap: std::collections::BinaryHeap<HeapEntry>,
    order_col: usize,
    k: usize,
    asc: bool,
    log_k: u64,
}

impl TopKAccumulator {
    pub fn new(order_col: usize, k: usize, asc: bool) -> Self {
        TopKAccumulator {
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
            order_col,
            k,
            asc,
            log_k: (k.max(2) as f64).log2().ceil() as u64,
        }
    }

    /// Offer one batch of rows to the heap.
    pub fn push_batch(&mut self, rows: &[Row], stats: &mut PhaseStats) {
        if self.k == 0 {
            return;
        }
        for row in rows {
            if row[self.order_col].is_null() {
                continue;
            }
            stats.server_cpu_units += self.log_k;
            let e = HeapEntry {
                row: row.clone(),
                col: self.order_col,
                asc: self.asc,
            };
            if self.heap.len() < self.k {
                self.heap.push(e);
            } else if let Some(top) = self.heap.peek() {
                if e.cmp_inner(top) == Ordering::Less {
                    self.heap.pop();
                    self.heap.push(e);
                }
            }
        }
    }

    /// The top K rows in order.
    pub fn finish(self, stats: &mut PhaseStats) -> Vec<Row> {
        let mut out: Vec<Row> = self
            .heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.row)
            .collect();
        stats.server_cpu_units += out.len() as u64;
        out.truncate(self.k);
        out
    }
}

/// Top-K over materialized input. Wrapper over [`TopKAccumulator`].
pub fn top_k(
    rows: &[Row],
    order_col: usize,
    k: usize,
    asc: bool,
    stats: &mut PhaseStats,
) -> Vec<Row> {
    if k == 0 {
        return Vec::new();
    }
    let mut acc = TopKAccumulator::new(order_col, k, asc);
    acc.push_batch(rows, stats);
    acc.finish(stats)
}

/// Full sort by one column (used by small final result orderings).
pub fn sort_rows(mut rows: Vec<Row>, col: usize, asc: bool, stats: &mut PhaseStats) -> Vec<Row> {
    let n = rows.len() as u64;
    stats.server_cpu_units += n * (64 - n.leading_zeros() as u64).max(1);
    rows.sort_by(|a, b| {
        let o = a[col].total_cmp(&b[col]);
        if asc {
            o
        } else {
            o.reverse()
        }
    });
    rows
}

/// Full sort by several `(column, ascending)` keys, major key first —
/// the Sort operator of the physical plan (`ORDER BY a DESC, b`). The
/// sort is stable, so rows equal on every key keep their input order;
/// with deterministic upstream operators the output is deterministic.
pub fn sort_rows_by_keys(
    mut rows: Vec<Row>,
    keys: &[(usize, bool)],
    stats: &mut PhaseStats,
) -> Vec<Row> {
    let n = rows.len() as u64;
    stats.server_cpu_units += n * (64 - n.leading_zeros() as u64).max(1);
    rows.sort_by(|a, b| {
        for &(col, asc) in keys {
            let o = a[col].total_cmp(&b[col]);
            if o != Ordering::Equal {
                return if asc { o } else { o.reverse() };
            }
        }
        Ordering::Equal
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushdown_common::{DataType, Schema};
    use pushdown_sql::bind::Binder;
    use pushdown_sql::parse_expr;

    fn row(vals: Vec<i64>) -> Row {
        Row::new(vals.into_iter().map(Value::Int).collect())
    }

    #[test]
    fn filter_and_project() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let pred = Binder::new(&schema)
            .bind_expr(&parse_expr("a > 2").unwrap())
            .unwrap();
        let mut stats = PhaseStats::default();
        let rows = vec![row(vec![1, 10]), row(vec![3, 30]), row(vec![5, 50])];
        let filtered = filter_rows(rows, &pred, &mut stats).unwrap();
        assert_eq!(filtered.len(), 2);
        let projected = project_rows(filtered, &[1], &mut stats);
        assert_eq!(projected, vec![row(vec![30]), row(vec![50])]);
        assert!(stats.server_cpu_units >= 5);
    }

    #[test]
    fn hash_join_inner_semantics() {
        let left = vec![row(vec![1, 100]), row(vec![2, 200]), row(vec![2, 201])];
        let right = vec![row(vec![2, 9]), row(vec![3, 8]), row(vec![2, 7])];
        let mut stats = PhaseStats::default();
        let out = hash_join(left, 0, right, 0, &mut stats);
        // key 2: 2 left x 2 right = 4 rows; keys 1,3 unmatched.
        assert_eq!(out.len(), 4);
        assert!(out
            .iter()
            .all(|r| r[0] == Value::Int(2) && r[2] == Value::Int(2)));
        assert!(out
            .iter()
            .any(|r| r[1] == Value::Int(200) && r[3] == Value::Int(9)));
    }

    #[test]
    fn hash_join_skips_null_keys() {
        let left = vec![Row::new(vec![Value::Null, Value::Int(1)])];
        let right = vec![Row::new(vec![Value::Null, Value::Int(2)])];
        let mut stats = PhaseStats::default();
        assert!(hash_join(left, 0, right, 0, &mut stats).is_empty());
    }

    #[test]
    fn batched_join_equals_whole_input_join() {
        let left: Vec<Row> = (0..200).map(|i| row(vec![i % 40, i])).collect();
        let right: Vec<Row> = (0..300).map(|i| row(vec![i % 55, 1000 + i])).collect();
        let mut s1 = PhaseStats::default();
        let whole = hash_join(left.clone(), 0, right.clone(), 0, &mut s1);

        let mut s2 = PhaseStats::default();
        let mut build = HashJoinBuild::new(0);
        for chunk in left.chunks(33) {
            build.add_batch(chunk.to_vec(), &mut s2);
        }
        let mut probed = Vec::new();
        for chunk in right.chunks(29) {
            probed.extend(build.probe_batch(chunk, 0, &mut s2));
        }
        assert_eq!(whole, probed);
        // Batching must not change the CPU accounting.
        assert_eq!(s1.server_cpu_units, s2.server_cpu_units);
    }

    #[test]
    fn group_by_matches_hand_computation() {
        let rows = vec![
            row(vec![1, 10]),
            row(vec![2, 20]),
            row(vec![1, 30]),
            row(vec![2, 5]),
            row(vec![3, 7]),
        ];
        let mut stats = PhaseStats::default();
        let out = hash_group_by(
            &rows,
            &[0],
            &[
                (AggFunc::Sum, Some(1)),
                (AggFunc::Count, None),
                (AggFunc::Max, Some(1)),
            ],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            out,
            vec![
                Row::new(vec![
                    Value::Int(1),
                    Value::Int(40),
                    Value::Int(2),
                    Value::Int(30)
                ]),
                Row::new(vec![
                    Value::Int(2),
                    Value::Int(25),
                    Value::Int(2),
                    Value::Int(20)
                ]),
                Row::new(vec![
                    Value::Int(3),
                    Value::Int(7),
                    Value::Int(1),
                    Value::Int(7)
                ]),
            ]
        );
    }

    #[test]
    fn group_by_multi_column_keys() {
        let rows = vec![row(vec![1, 1, 5]), row(vec![1, 2, 6]), row(vec![1, 1, 7])];
        let mut stats = PhaseStats::default();
        let out = hash_group_by(&rows, &[0, 1], &[(AggFunc::Sum, Some(2))], &mut stats).unwrap();
        assert_eq!(
            out,
            vec![
                Row::new(vec![Value::Int(1), Value::Int(1), Value::Int(12)]),
                Row::new(vec![Value::Int(1), Value::Int(2), Value::Int(6)]),
            ]
        );
    }

    #[test]
    fn batched_group_by_equals_whole_input() {
        let rows: Vec<Row> = (0..500).map(|i| row(vec![i % 13, i, i % 7])).collect();
        let aggs = [
            (AggFunc::Sum, Some(1)),
            (AggFunc::Count, None),
            (AggFunc::Min, Some(2)),
        ];
        let mut s1 = PhaseStats::default();
        let whole = hash_group_by(&rows, &[0], &aggs, &mut s1).unwrap();

        let mut s2 = PhaseStats::default();
        let mut acc = GroupByAccumulator::new(vec![0], aggs.to_vec());
        for chunk in rows.chunks(37) {
            acc.update_batch(chunk, &mut s2).unwrap();
        }
        assert_eq!(whole, acc.finish(&mut s2));
        assert_eq!(s1.server_cpu_units, s2.server_cpu_units);
    }

    #[test]
    fn merge_group_rows_combines_partials() {
        // Partial 1 says group 1 sum=10 count=2; partial 2 says group 1
        // sum=5 count=1 and group 2 sum=7 count=3.
        let p1 = vec![Row::new(vec![Value::Int(1), Value::Int(10), Value::Int(2)])];
        let p2 = vec![
            Row::new(vec![Value::Int(1), Value::Int(5), Value::Int(1)]),
            Row::new(vec![Value::Int(2), Value::Int(7), Value::Int(3)]),
        ];
        let mut stats = PhaseStats::default();
        let out =
            merge_group_rows(vec![p1, p2], 1, &[AggFunc::Sum, AggFunc::Count], &mut stats).unwrap();
        assert_eq!(
            out,
            vec![
                Row::new(vec![Value::Int(1), Value::Int(15), Value::Int(3)]),
                Row::new(vec![Value::Int(2), Value::Int(7), Value::Int(3)]),
            ]
        );
    }

    #[test]
    fn top_k_smallest_and_largest() {
        let rows: Vec<Row> = [5, 3, 9, 1, 7, 1, 8]
            .iter()
            .map(|&v| row(vec![v]))
            .collect();
        let mut stats = PhaseStats::default();
        let smallest = top_k(&rows, 0, 3, true, &mut stats);
        assert_eq!(smallest, vec![row(vec![1]), row(vec![1]), row(vec![3])]);
        let largest = top_k(&rows, 0, 2, false, &mut stats);
        assert_eq!(largest, vec![row(vec![9]), row(vec![8])]);
    }

    #[test]
    fn top_k_equals_sort_truncate() {
        let rows: Vec<Row> = (0..500).map(|i| row(vec![(i * 7919) % 1000, i])).collect();
        let mut s1 = PhaseStats::default();
        let heap = top_k(&rows, 0, 25, true, &mut s1);
        let mut s2 = PhaseStats::default();
        let mut sorted = sort_rows(rows, 0, true, &mut s2);
        sorted.truncate(25);
        assert_eq!(heap.len(), 25);
        for (a, b) in heap.iter().zip(&sorted) {
            assert_eq!(a[0], b[0]);
        }
    }

    #[test]
    fn batched_top_k_equals_whole_input() {
        let rows: Vec<Row> = (0..400).map(|i| row(vec![(i * 6151) % 977, i])).collect();
        let mut s1 = PhaseStats::default();
        let whole = top_k(&rows, 0, 17, true, &mut s1);

        let mut s2 = PhaseStats::default();
        let mut acc = TopKAccumulator::new(0, 17, true);
        for chunk in rows.chunks(41) {
            acc.push_batch(chunk, &mut s2);
        }
        assert_eq!(whole, acc.finish(&mut s2));
        assert_eq!(s1.server_cpu_units, s2.server_cpu_units);
    }

    #[test]
    fn top_k_edge_cases() {
        let rows: Vec<Row> = vec![row(vec![1]), row(vec![2])];
        let mut stats = PhaseStats::default();
        assert!(top_k(&rows, 0, 0, true, &mut stats).is_empty());
        assert_eq!(top_k(&rows, 0, 10, true, &mut stats).len(), 2);
        // NULL keys are skipped.
        let with_null = vec![Row::new(vec![Value::Null]), row(vec![5])];
        assert_eq!(top_k(&with_null, 0, 2, true, &mut stats).len(), 1);
    }

    #[test]
    fn multi_key_sort_orders_major_then_minor() {
        let rows = vec![
            row(vec![2, 1]),
            row(vec![1, 9]),
            row(vec![2, 3]),
            row(vec![1, 4]),
        ];
        let mut stats = PhaseStats::default();
        // Major: col 0 DESC; minor: col 1 ASC.
        let sorted = sort_rows_by_keys(rows, &[(0, false), (1, true)], &mut stats);
        assert_eq!(
            sorted,
            vec![
                row(vec![2, 1]),
                row(vec![2, 3]),
                row(vec![1, 4]),
                row(vec![1, 9]),
            ]
        );
        assert!(stats.server_cpu_units > 0);
    }

    #[test]
    fn map_rows_evaluates_expressions() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let e = Binder::new(&schema)
            .bind_expr(&parse_expr("a * 2 + 1").unwrap())
            .unwrap();
        let mut stats = PhaseStats::default();
        let out = map_rows(&[row(vec![3])], &[e], &mut stats).unwrap();
        assert_eq!(out, vec![row(vec![7])]);
    }
}
