//! Scatter-gather cluster topology.
//!
//! A [`Cluster`] models an N-node execution tier in front of the one
//! shared object store: a consistent-hash ring assigns every table
//! partition `(bucket, key)` to an owning node, and each node carries its
//! own [`SegmentCache`], its own child [`CostLedger`](pushdown_common::CostLedger)
//! hung off the store's global ledger, and its own [`VirtualClock`].
//! Queries scatter scan
//! leaves to the owning nodes (see `plan::scatter`) and gather the
//! per-partition results back in global partition order, so rows are
//! bit-identical to serial execution at any node count.
//!
//! Conservation extends cluster-wide: every byte a scattered query bills
//! lands jointly on the query's own scoped ledger *and* on exactly one
//! node ledger, so
//!
//! ```text
//! global ledger  ==  Σ node ledgers  ==  Σ per-query ledgers
//! ```
//!
//! holds exactly (node ledgers are plain children of the global ledger;
//! query scopes join them via `CostLedger::joint_child`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pushdown_cache::SegmentCache;
use pushdown_common::mix::{fnv1a, splitmix64};
use pushdown_common::pricing::{Pricing, Usage};
use pushdown_s3::{S3Store, VirtualClock};

/// Virtual points per node on the consistent-hash ring. More points give
/// a smoother partition split at the cost of a longer (still tiny) sorted
/// ring to binary-search.
const VNODES: usize = 64;

/// One execution node: its ledger (a child of the store's global ledger),
/// its virtual clock, its private cache slice, and a counter of bytes it
/// shipped over the interconnect.
#[derive(Debug)]
pub struct ClusterNode {
    pub id: usize,
    /// Child of the store's global ledger — everything the node bills
    /// uplinks to the store total, and `Σ node ledgers == global` because
    /// every scattered request bills exactly one node.
    pub ledger: pushdown_common::ledger::CostLedger,
    /// The node's own virtual clock: advanced only by work this node runs.
    pub clock: VirtualClock,
    /// Per-node cache slice (`mem / n` + `disk / n` of the store-wide
    /// tier budgets at [`Cluster::new`] time, same admission policy), or
    /// `None` when no cache is installed.
    pub cache: Option<SegmentCache>,
    /// Bytes this node shipped to the coordinator or across a
    /// repartition boundary.
    pub exchange_bytes: Arc<AtomicU64>,
}

/// Per-node accounting snapshot, used by EXPLAIN and the bench reports.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    pub node: usize,
    /// Everything the node billed so far.
    pub usage: Usage,
    /// The node's virtual busy time in seconds.
    pub seconds: f64,
    /// Bytes the node shipped over the interconnect.
    pub exchange_bytes: u64,
    /// Cache occupancy, when the node owns a cache slice.
    pub cache_used_bytes: Option<u64>,
}

#[derive(Debug)]
struct ClusterInner {
    nodes: Vec<ClusterNode>,
    /// Sorted `(point, node)` ring; `assign` walks to the first point at
    /// or after the partition hash (wrapping).
    ring: Vec<(u64, usize)>,
}

/// An N-node scatter-gather cluster over one object store. Cheap to
/// clone (shared interior); attach to a query with
/// `QueryContext::with_nodes`.
#[derive(Debug, Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

impl Cluster {
    /// Build an `n`-node cluster over `store`. If the store has a segment
    /// cache installed, each node gets a private slice of **both tier
    /// budgets** — `mem / n` and `disk / n` bytes, under the store
    /// cache's admission policy (install the cache *before* calling
    /// this); otherwise nodes run cacheless and reads fall through to
    /// the store. If the store cache is **persistent**, each node's
    /// slice is rooted at its own `<dir>/nodes/node-<id>` subdirectory
    /// and recovers whatever a previous incarnation of that node left
    /// there (checksum-verified against the live store); a node whose
    /// directory cannot be opened falls back to a RAM-only slice rather
    /// than failing the whole cluster.
    pub fn new(store: &S3Store, n: usize, pricing: Pricing) -> Cluster {
        let n = n.max(1);
        let store_cache = store.cache();
        let node_slice = store_cache
            .as_ref()
            .map(|c| {
                (
                    c.budget_bytes() / n as u64,
                    c.disk_budget_bytes() / n as u64,
                    c.admission(),
                )
            })
            .filter(|&(mem, disk, _)| mem + disk > 0);
        let persist_dir = store_cache.as_ref().and_then(|c| c.persist_dir());
        let probe = {
            let store = store.clone();
            move |b: &str, k: &str, r: (u64, u64)| store.object_range_digest(b, k, r)
        };
        let nodes: Vec<ClusterNode> = (0..n)
            .map(|id| ClusterNode {
                id,
                ledger: store.global_ledger().child(),
                clock: VirtualClock::new(),
                cache: node_slice.map(|(mem, disk, admission)| {
                    persist_dir
                        .as_ref()
                        .and_then(|dir| {
                            SegmentCache::recover_with(
                                dir.join("nodes").join(format!("node-{id}")),
                                mem,
                                disk,
                                pricing,
                                admission,
                                None,
                                Some(&probe),
                            )
                            .ok()
                        })
                        .unwrap_or_else(|| {
                            SegmentCache::tiered_with_admission(mem, disk, pricing, admission)
                        })
                }),
                exchange_bytes: Arc::new(AtomicU64::new(0)),
            })
            .collect();
        let mut ring: Vec<(u64, usize)> = (0..n)
            .flat_map(|id| {
                (0..VNODES).map(move |v| (splitmix64(splitmix64(id as u64 + 1) ^ v as u64), id))
            })
            .collect();
        ring.sort_unstable();
        Cluster {
            inner: Arc::new(ClusterInner { nodes, ring }),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.inner.nodes.len()
    }

    /// The node owning partition `(bucket, key)` under consistent
    /// hashing: first ring point at or after the partition hash, wrapping
    /// to the smallest point.
    pub fn assign(&self, bucket: &str, key: &str) -> usize {
        let h = splitmix64(fnv1a(
            bucket
                .bytes()
                .chain(std::iter::once(b'/'))
                .chain(key.bytes()),
        ));
        let ring = &self.inner.ring;
        let i = ring.partition_point(|&(p, _)| p < h);
        ring[if i == ring.len() { 0 } else { i }].1
    }

    /// Node by id.
    pub fn node(&self, id: usize) -> &ClusterNode {
        &self.inner.nodes[id]
    }

    /// Derive node `id`'s fault-stream salt for a query issued under
    /// `query_salt`. Distinct per (query, node) so node-failure chaos
    /// seeds target one node's traffic deterministically.
    pub fn node_salt(query_salt: u64, id: usize) -> u64 {
        splitmix64(query_salt ^ (id as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// Per-node accounting snapshots, in node-id order.
    pub fn snapshots(&self) -> Vec<NodeSnapshot> {
        self.inner
            .nodes
            .iter()
            .map(|nd| NodeSnapshot {
                node: nd.id,
                usage: nd.ledger.snapshot(),
                seconds: nd.clock.seconds(),
                exchange_bytes: nd.exchange_bytes.load(Ordering::Relaxed),
                cache_used_bytes: nd.cache.as_ref().map(|c| c.stats().used_bytes),
            })
            .collect()
    }

    /// Sum of all node ledgers — equals the store's global ledger when
    /// every request went through a node scope (conservation).
    pub fn total_usage(&self) -> Usage {
        let mut total = Usage::default();
        for nd in &self.inner.nodes {
            let u = nd.ledger.snapshot();
            total.requests += u.requests;
            total.select_scanned_bytes += u.select_scanned_bytes;
            total.select_returned_bytes += u.select_returned_bytes;
            total.plain_bytes += u.plain_bytes;
        }
        total
    }

    /// Total bytes shipped over the interconnect, all nodes.
    pub fn total_exchange_bytes(&self) -> u64 {
        self.inner
            .nodes
            .iter()
            .map(|nd| nd.exchange_bytes.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> S3Store {
        S3Store::new()
    }

    fn pricing() -> Pricing {
        Pricing::us_east()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let s = store();
        let c = Cluster::new(&s, 4, pricing());
        for i in 0..64 {
            let key = format!("t/part-{i:05}.csv");
            let a = c.assign("bucket", &key);
            assert!(a < 4);
            assert_eq!(a, c.assign("bucket", &key), "assignment is stable");
        }
    }

    #[test]
    fn ring_spreads_partitions_across_nodes() {
        let s = store();
        let c = Cluster::new(&s, 4, pricing());
        let mut counts = [0usize; 4];
        for i in 0..256 {
            counts[c.assign("b", &format!("t/part-{i:05}.csv"))] += 1;
        }
        for (id, &n) in counts.iter().enumerate() {
            assert!(n > 0, "node {id} owns no partitions out of 256");
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let s = store();
        let c = Cluster::new(&s, 1, pricing());
        for i in 0..16 {
            assert_eq!(c.assign("b", &format!("k{i}")), 0);
        }
    }

    #[test]
    fn node_salts_differ_per_node_and_query() {
        let a = Cluster::node_salt(7, 0);
        let b = Cluster::node_salt(7, 1);
        let c = Cluster::node_salt(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn node_ledgers_roll_up_to_global() {
        let s = store();
        s.put_object("b", "k", "0123456789");
        let c = Cluster::new(&s, 2, pricing());
        let scoped = s.scoped_with_peer(1, &c.node(0).ledger, &c.node(0).clock);
        scoped.get_object("b", "k").unwrap();
        assert_eq!(c.node(0).ledger.snapshot().plain_bytes, 10);
        assert_eq!(c.total_usage().plain_bytes, 10);
        assert_eq!(s.global_ledger().snapshot().plain_bytes, 10);
    }

    #[test]
    fn per_node_cache_slices_split_the_budget() {
        let s = store();
        s.set_cache(Some(SegmentCache::new(1 << 20, pricing())));
        let c = Cluster::new(&s, 4, pricing());
        for id in 0..4 {
            let stats = c.node(id).cache.as_ref().expect("node cache").stats();
            assert_eq!(stats.budget_bytes, (1 << 20) / 4);
            assert_eq!(stats.disk_budget_bytes, 0);
        }
    }

    #[test]
    fn per_node_cache_slices_split_both_tiers_and_keep_admission() {
        let s = store();
        s.set_cache(Some(SegmentCache::tiered_with_admission(
            1 << 20,
            1 << 22,
            pricing(),
            pushdown_cache::CacheAdmission::ReuseDistance { window: 8 },
        )));
        let c = Cluster::new(&s, 4, pricing());
        for id in 0..4 {
            let cache = c.node(id).cache.as_ref().expect("node cache");
            assert_eq!(cache.budget_bytes(), (1 << 20) / 4);
            assert_eq!(cache.disk_budget_bytes(), (1 << 22) / 4);
            assert_eq!(
                cache.admission(),
                pushdown_cache::CacheAdmission::ReuseDistance { window: 8 }
            );
        }
        // A disk-only store cache still yields per-node slices.
        s.set_cache(Some(SegmentCache::tiered(0, 1 << 21, pricing())));
        let c = Cluster::new(&s, 2, pricing());
        let cache = c.node(1).cache.as_ref().expect("node cache");
        assert_eq!(cache.budget_bytes(), 0);
        assert_eq!(cache.disk_budget_bytes(), (1 << 21) / 2);
    }
}
