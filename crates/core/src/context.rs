//! Query execution context: the store, the Select engine, and the models.

use pushdown_bloom::BloomBuilder;
use pushdown_common::perf::{PerfModel, PerfParams};
use pushdown_common::pricing::Pricing;
use pushdown_s3::S3Store;
use pushdown_select::S3SelectEngine;

/// Everything an algorithm needs to execute and be accounted.
#[derive(Clone)]
pub struct QueryContext {
    pub store: S3Store,
    pub engine: S3SelectEngine,
    pub model: PerfModel,
    pub pricing: Pricing,
    pub bloom: BloomBuilder,
    /// Worker threads for parallel partition scans.
    pub scan_threads: usize,
    /// Rows per [`pushdown_common::row::RowBatch`] on the streaming scan
    /// path. Together with `scan_threads` this bounds peak resident rows:
    /// scans hold `O(scan_threads × batch_rows)` rows in flight instead
    /// of materializing whole tables.
    pub batch_rows: usize,
    /// Retry attempts for transient store faults.
    pub max_attempts: u32,
}

impl QueryContext {
    pub fn new(store: S3Store) -> Self {
        let engine = S3SelectEngine::new(store.clone());
        QueryContext {
            store,
            engine,
            model: PerfModel::default(),
            pricing: Pricing::us_east(),
            bloom: BloomBuilder::default(),
            scan_threads: std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(4),
            batch_rows: 1024,
            max_attempts: 3,
        }
    }

    /// Override the streaming batch capacity (rows per batch, ≥ 1).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    pub fn with_perf(mut self, params: PerfParams) -> Self {
        self.model = PerfModel::new(params);
        self
    }

    pub fn with_pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = pricing;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let ctx = QueryContext::new(S3Store::new());
        assert!(ctx.scan_threads >= 1);
        assert_eq!(ctx.max_attempts, 3);
        assert_eq!(ctx.batch_rows, 1024);
        assert_eq!(ctx.pricing, Pricing::us_east());
        assert_eq!(ctx.with_batch_rows(0).batch_rows, 1);
    }
}
