//! Query execution context: the store, the Select engine, and the models.
//!
//! # Concurrency & scoping
//!
//! One `QueryContext` (and the engine inside it) is safely shared by many
//! concurrent queries. Each query runs against a **scoped** context
//! ([`QueryContext::scoped`]): the scope's store handle bills a
//! [`CostLedger`] *child* that rolls up
//! atomically into the store-global ledger, so per-query accounting is
//! exact under any interleaving — no resets, no snapshot deltas. Every
//! planner entry point and algorithm family scopes itself, so callers get
//! correct per-query bills ([`crate::output::QueryOutput::billed`])
//! without doing anything.

use std::sync::Arc;

use crate::catalog::{Catalog, Table};
use crate::cluster::Cluster;
use pushdown_bloom::BloomBuilder;
use pushdown_cache::{CacheAdmission, SegmentCache};
use pushdown_common::perf::{PerfModel, PerfParams};
use pushdown_common::pricing::{Pricing, Usage};
use pushdown_common::{CostLedger, Error, Result, RetryPolicy};
use pushdown_s3::{S3Store, VirtualClock};
use pushdown_select::S3SelectEngine;

/// Everything an algorithm needs to execute and be accounted.
#[derive(Clone)]
pub struct QueryContext {
    pub store: S3Store,
    pub engine: S3SelectEngine,
    pub model: PerfModel,
    pub pricing: Pricing,
    pub bloom: BloomBuilder,
    /// Name → table registry used to resolve the *join* tables of
    /// multi-table SQL (the primary table is always passed explicitly).
    /// Shared across scopes; empty by default.
    pub catalog: Catalog,
    /// Worker threads for parallel partition scans.
    pub scan_threads: usize,
    /// Rows per [`pushdown_common::row::RowBatch`] on the streaming scan
    /// path. Together with `scan_threads` this bounds peak resident rows:
    /// scans hold `O(scan_threads × batch_rows)` rows in flight instead
    /// of materializing whole tables.
    pub batch_rows: usize,
    /// The uniform bounded-backoff retry policy for transient store
    /// faults — applied identically to whole-object GETs, range GETs,
    /// multi-range GETs and Select requests.
    pub retry: RetryPolicy,
    /// Route plain partition GETs through the store's segment cache
    /// (when one is installed; see [`QueryContext::with_cache`]).
    /// `false` by default so the fixed strategies keep their pure
    /// remote-scan semantics; the planner's `cached-local` candidates
    /// and forced-cached runs flip it per execution.
    pub cache_reads: bool,
    /// Segment size for caching CSV partitions: cached scans split CSV
    /// bytes into fixed blocks of this many bytes, each its own
    /// [`pushdown_cache::SegmentKey`] (ColumnarLite partitions split at
    /// row-group extents instead and ignore this knob). Smaller blocks
    /// mean finer partial hits at more segments; 64 KiB by default.
    pub cache_chunk_bytes: u64,
    /// Execute local scans of ColumnarLite tables through the vectorized
    /// columnar path (typed column vectors + selection-vector kernels,
    /// rows materialized late). On by default; results, metrics and
    /// billing are bit-identical to the row path — the flag exists for
    /// differential testing and as an escape hatch
    /// ([`QueryContext::with_columnar`]). CSV tables always take the row
    /// decode path regardless of this flag.
    pub columnar_exec: bool,
    /// The scatter-gather cluster this context executes on, if any
    /// ([`QueryContext::with_nodes`]). `None` — the default — is the
    /// plain single-node engine; a 1-node cluster behaves identically
    /// but routes through node 0's ledger, clock and cache slice.
    pub cluster: Option<Cluster>,
    /// Set when a cluster scope is active: the query's *base* store
    /// scope, whose ledger carries the whole query's bill (coordinator
    /// and every node). The execution store in `store` is a joint child
    /// of this base and one node's ledger, so Σ node ledgers and
    /// Σ query ledgers decompose the same global total.
    pub(crate) cluster_base: Option<S3Store>,
    /// When set, scans see only these partition keys (global listing
    /// order preserved). The Gather operator uses single-key filters to
    /// execute scattered scans one partition at a time so results merge
    /// back in global partition order.
    pub(crate) partition_filter: Option<Arc<[String]>>,
}

impl QueryContext {
    pub fn new(store: S3Store) -> Self {
        let engine = S3SelectEngine::new(store.clone());
        QueryContext {
            store,
            engine,
            model: PerfModel::default(),
            pricing: Pricing::us_east(),
            bloom: BloomBuilder::default(),
            catalog: Catalog::default(),
            scan_threads: std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(4),
            batch_rows: 1024,
            retry: RetryPolicy::default(),
            cache_reads: false,
            cache_chunk_bytes: 64 * 1024,
            columnar_exec: true,
            cluster: None,
            cluster_base: None,
            partition_filter: None,
        }
    }

    /// A context for one query: same objects, models and engine
    /// configuration, but billing to a fresh child ledger (rolling up into
    /// this context's ledger and the store-global one), with its own
    /// virtual clock and fault stream. Scoping composes — a scope of a
    /// scope rolls up through the chain.
    pub fn scoped(&self) -> QueryContext {
        self.scoped_with_salt(self.store.scope_salt())
    }

    /// [`QueryContext::scoped`] with an explicit chaos salt: a workload
    /// giving query *i* salt *i* gets per-query-independent, reproducible
    /// fault streams from a single [`pushdown_s3::FaultPlan`] seed.
    ///
    /// When a [`Cluster`] is attached and no cluster scope is active yet,
    /// this *activates* one: the query gets a base scope (its per-query
    /// ledger) and executes as the coordinator — jointly billing the base
    /// and node 0 (same salt as serial execution, so the coordinator's
    /// fault stream matches the single-node engine request for request).
    /// Nested scopes inside algorithms then compose plainly underneath.
    pub fn scoped_with_salt(&self, salt: u64) -> QueryContext {
        if let (Some(cluster), None) = (&self.cluster, &self.cluster_base) {
            let base = self.store.scoped_with_salt(salt);
            let n0 = cluster.node(0);
            let exec = base
                .scoped_with_peer(salt, &n0.ledger, &n0.clock)
                .with_cache_override(n0.cache.clone());
            let mut ctx = self.rebound(exec);
            ctx.cluster_base = Some(base);
            return ctx;
        }
        let store = self.store.scoped_with_salt(salt);
        self.rebound(store)
    }

    /// [`QueryContext::scoped_with_salt`] on behalf of a **tenant**: the
    /// query's scope bills jointly to its own fresh child ledger *and*
    /// to `tenant_ledger` (shared ancestors counted once — see
    /// [`CostLedger::joint_child`]), with its virtual time also rolling
    /// up into `tenant_clock`. With the tenant ledger a child of the
    /// store-global one, all three decompositions hold exactly:
    /// global = Σ tenant ledgers = Σ per-query ledgers — the same
    /// machinery `core::cluster` uses for per-node accounting, here
    /// powering per-tenant budget enforcement in the admission layer.
    ///
    /// Composes with an attached [`Cluster`] exactly like
    /// [`QueryContext::scoped_with_salt`]: the tenant-joint scope becomes
    /// the query's base ledger and the coordinator executes as node 0.
    pub fn scoped_with_tenant(
        &self,
        salt: u64,
        tenant_ledger: &CostLedger,
        tenant_clock: &VirtualClock,
    ) -> QueryContext {
        if let (Some(cluster), None) = (&self.cluster, &self.cluster_base) {
            let base = self
                .store
                .scoped_with_peer(salt, tenant_ledger, tenant_clock);
            let n0 = cluster.node(0);
            let exec = base
                .scoped_with_peer(salt, &n0.ledger, &n0.clock)
                .with_cache_override(n0.cache.clone());
            let mut ctx = self.rebound(exec);
            ctx.cluster_base = Some(base);
            return ctx;
        }
        let store = self
            .store
            .scoped_with_peer(salt, tenant_ledger, tenant_clock);
        self.rebound(store)
    }

    /// An execution context for cluster node `node`: bills jointly to the
    /// query's base ledger and the node's own ledger, runs on the node's
    /// virtual clock and cache slice, and draws faults from the node's
    /// per-query salt stream. Falls back to a plain clone outside an
    /// active cluster scope.
    pub(crate) fn node_exec(&self, node: usize) -> QueryContext {
        let (Some(cluster), Some(base)) = (&self.cluster, &self.cluster_base) else {
            return self.clone();
        };
        let nd = cluster.node(node);
        let salt = Cluster::node_salt(base.scope_salt(), node);
        let store = base
            .scoped_with_peer(salt, &nd.ledger, &nd.clock)
            .with_cache_override(nd.cache.clone());
        self.rebound(store)
    }

    /// A copy of this context whose scans see only the given partition
    /// keys (global listing order preserved).
    pub(crate) fn with_partition_filter(&self, keys: Arc<[String]>) -> QueryContext {
        let mut ctx = self.clone();
        ctx.partition_filter = Some(keys);
        ctx
    }

    fn rebound(&self, store: S3Store) -> QueryContext {
        // Re-sync the engine onto the scoped store (so Select billing hits
        // the child ledger) and onto the context's current retry policy.
        let engine = self.engine.rebound(store.clone()).with_retry(self.retry);
        QueryContext {
            store,
            engine,
            ..self.clone()
        }
    }

    /// What this context's scope has billed so far. On a scope made by
    /// [`QueryContext::scoped`] this is exactly the per-query usage —
    /// under a cluster scope, the query's *base* ledger, which covers
    /// the coordinator and every node the query scattered to.
    pub fn billed(&self) -> Usage {
        match &self.cluster_base {
            Some(base) => base.ledger().snapshot(),
            None => self.store.ledger().snapshot(),
        }
    }

    /// Virtual seconds this scope's store traffic has accumulated (zero
    /// unless a [`pushdown_s3::FaultPlan`] is installed). Under a cluster
    /// scope: the query's base clock, advanced by coordinator and node
    /// work alike.
    pub fn virtual_time_s(&self) -> f64 {
        match &self.cluster_base {
            Some(base) => base.virtual_time_s(),
            None => self.store.virtual_time_s(),
        }
    }

    /// Attach an `n`-node scatter-gather [`Cluster`]: partitions get
    /// consistent-hashed across `n` nodes, each with its own ledger,
    /// virtual clock and cache slice (`budget / n` each — install the
    /// cache with [`QueryContext::with_cache`] *before* this call to get
    /// per-node slices). Plans executed under this context scatter scan
    /// leaves to the owning nodes and gather results in global partition
    /// order; `n = 1` reproduces single-node execution through node 0.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.cluster = Some(Cluster::new(&self.store, n, self.pricing));
        self
    }

    /// Register tables in the context's [`Catalog`] so multi-table SQL
    /// can resolve them by name (builder form of [`Catalog::register`]).
    pub fn with_tables(self, tables: impl IntoIterator<Item = Table>) -> Self {
        for t in tables {
            self.catalog.register(t);
        }
        self
    }

    /// Override the streaming batch capacity (rows per batch, ≥ 1).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    pub fn with_perf(mut self, params: PerfParams) -> Self {
        self.model = PerfModel::new(params);
        self
    }

    pub fn with_pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Override the retry policy (engine and GET paths alike).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self.engine = self.engine.clone().with_retry(retry);
        self
    }

    /// Install a cost-aware segment cache of `budget_bytes` on the store
    /// (the caching tier's budget knob), weighted by this context's
    /// current [`Pricing`].
    ///
    /// **Store-wide, not per-copy**: like
    /// [`QueryContext::with_tables`] and the shared [`Catalog`], this
    /// mutates state every context on the same store shares — cloned
    /// and scoped contexts (and concurrently running queries) see the
    /// cache immediately, and dropping the returned context does not
    /// uninstall it (`ctx.store.set_cache(None)` does). The adaptive
    /// planner starts weighing `cached-local` candidates against
    /// pushdown and remote scans as soon as a cache is present. A
    /// budget of 0 effectively disables admission.
    pub fn with_cache(self, budget_bytes: u64) -> Self {
        self.store
            .set_cache(Some(SegmentCache::new(budget_bytes, self.pricing)));
        self
    }

    /// [`QueryContext::with_cache`] with an explicit fill-admission
    /// policy — e.g. [`CacheAdmission::ReuseDistance`] so one-off scans
    /// go read-around instead of churning the hot tail under open-loop
    /// traffic. Store-wide, like [`QueryContext::with_cache`].
    pub fn with_cache_admission(self, budget_bytes: u64, admission: CacheAdmission) -> Self {
        self.store.set_cache(Some(SegmentCache::with_admission(
            budget_bytes,
            self.pricing,
            admission,
        )));
        self
    }

    /// Install a **two-tier** segment cache: `mem_budget_bytes` of
    /// memory (read back at `cache_read_bw`) over `disk_budget_bytes`
    /// of simulated instance storage (read back at the slower
    /// `disk_read_bw`). Segments evicted from memory demote to disk;
    /// disk hits promote back. A disk budget of 0 reproduces
    /// [`QueryContext::with_cache`] exactly. Store-wide, like
    /// [`QueryContext::with_cache`].
    pub fn with_cache_tiers(self, mem_budget_bytes: u64, disk_budget_bytes: u64) -> Self {
        self.store.set_cache(Some(SegmentCache::tiered(
            mem_budget_bytes,
            disk_budget_bytes,
            self.pricing,
        )));
        self
    }

    /// [`QueryContext::with_cache_tiers`] with an explicit fill-admission
    /// policy. Store-wide, like [`QueryContext::with_cache`].
    pub fn with_cache_tiers_admission(
        self,
        mem_budget_bytes: u64,
        disk_budget_bytes: u64,
        admission: CacheAdmission,
    ) -> Self {
        self.store
            .set_cache(Some(SegmentCache::tiered_with_admission(
                mem_budget_bytes,
                disk_budget_bytes,
                self.pricing,
                admission,
            )));
        self
    }

    /// Back the installed segment cache's disk tier with a **persistent
    /// file store** rooted at `dir` — and recover whatever a previous
    /// process left there.
    ///
    /// Composes with [`QueryContext::with_cache_tiers`]: call that (or
    /// any cache installer) first to set the tier budgets and admission
    /// policy, then this to make the disk tier durable. The current
    /// cache is replaced by one recovered from `dir` — the on-disk
    /// manifest is replayed, every surviving segment is checksum-verified
    /// against the live store (so a chunk persisted before a crash is
    /// never served after its object was rewritten, even if the rewrite
    /// happened while the cache was down), recovered segments land
    /// disk-resident (memory starts cold, disk starts warm), and ghost
    /// reuse-distance state is rebuilt for the recovered residents. An
    /// empty or absent `dir` simply starts a fresh persistent cache.
    /// Store-wide, like [`QueryContext::with_cache`].
    ///
    /// # Errors
    ///
    /// Returns an error if no cache is installed, or if the directory
    /// cannot be created/opened.
    pub fn with_cache_dir(self, dir: impl AsRef<std::path::Path>) -> Result<Self> {
        let Some(cur) = self.store.cache() else {
            return Err(Error::Other(
                "with_cache_dir requires a cache: call with_cache_tiers(...) first".into(),
            ));
        };
        let store = self.store.clone();
        let probe = move |b: &str, k: &str, r: (u64, u64)| store.object_range_digest(b, k, r);
        let cache = SegmentCache::recover_with(
            dir,
            cur.budget_bytes(),
            cur.disk_budget_bytes(),
            self.pricing,
            cur.admission(),
            None,
            Some(&probe),
        )?;
        self.store.set_cache(Some(cache));
        Ok(self)
    }

    /// Override the CSV cache-segment size (see
    /// [`QueryContext::cache_chunk_bytes`]; clamped to ≥ 1).
    pub fn with_cache_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        self.cache_chunk_bytes = chunk_bytes.max(1);
        self
    }

    /// Install a pre-built [`SegmentCache`] (for custom pricing or for
    /// observing one cache handle from outside). Store-wide, like
    /// [`QueryContext::with_cache`].
    pub fn with_segment_cache(self, cache: SegmentCache) -> Self {
        self.store.set_cache(Some(cache));
        self
    }

    /// The store's segment cache, if one is installed (cloning shares).
    pub fn cache(&self) -> Option<SegmentCache> {
        self.store.cache()
    }

    /// A copy of this context that routes plain partition GETs through
    /// the segment cache — what `cached-local` plan candidates execute
    /// under, and a way to *force* the cached-local strategy end to end
    /// (e.g. `ctx.with_cache_reads(true)` + `Strategy::Baseline`).
    pub fn with_cache_reads(mut self, cache_reads: bool) -> Self {
        self.cache_reads = cache_reads;
        self
    }

    /// Enable or disable the vectorized columnar execution path for
    /// ColumnarLite tables (see [`QueryContext::columnar_exec`]). Useful
    /// for differential testing: the two paths must produce identical
    /// rows, metrics and bills.
    pub fn with_columnar(mut self, columnar_exec: bool) -> Self {
        self.columnar_exec = columnar_exec;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let ctx = QueryContext::new(S3Store::new());
        assert!(ctx.scan_threads >= 1);
        assert_eq!(ctx.retry, RetryPolicy::default());
        assert_eq!(ctx.batch_rows, 1024);
        assert_eq!(ctx.pricing, Pricing::us_east());
        assert_eq!(ctx.with_batch_rows(0).batch_rows, 1);
    }

    #[test]
    fn scoped_contexts_bill_child_ledgers_that_roll_up() {
        let store = S3Store::new();
        store.put_object("b", "t/x.csv", "a\n1\n");
        let ctx = QueryContext::new(store);
        let q1 = ctx.scoped();
        let q2 = ctx.scoped();
        q1.store.get_object("b", "t/x.csv").unwrap();
        q2.store.get_object("b", "t/x.csv").unwrap();
        q2.store.get_object("b", "t/x.csv").unwrap();
        assert_eq!(q1.billed().requests, 1);
        assert_eq!(q2.billed().requests, 2);
        assert_eq!(ctx.billed().requests, 3, "children roll up to the root");
        // The scoped engine bills the scope too.
        let schema = pushdown_common::Schema::from_pairs(&[("a", pushdown_common::DataType::Int)]);
        let q3 = ctx.scoped();
        q3.engine
            .select(
                "b",
                "t/x.csv",
                "SELECT a FROM S3Object",
                &schema,
                pushdown_select::InputFormat::Csv,
            )
            .unwrap();
        assert_eq!(q3.billed().requests, 1);
        assert!(q3.billed().select_scanned_bytes > 0);
        assert_eq!(q1.billed().requests, 1, "sibling scopes stay isolated");
        assert_eq!(ctx.billed().requests, 4);
    }

    #[test]
    fn tenant_scopes_bill_jointly_and_decompose() {
        let store = S3Store::new();
        store.put_object("b", "t/x.csv", "a\n1\n");
        let ctx = QueryContext::new(store);
        let tenant_a = ctx.store.ledger().child();
        let tenant_b = ctx.store.ledger().child();
        let clock_a = VirtualClock::new();
        let clock_b = VirtualClock::new();
        let q1 = ctx.scoped_with_tenant(1, &tenant_a, &clock_a);
        let q2 = ctx.scoped_with_tenant(2, &tenant_a, &clock_a);
        let q3 = ctx.scoped_with_tenant(3, &tenant_b, &clock_b);
        q1.store.get_object("b", "t/x.csv").unwrap();
        q2.store.get_object("b", "t/x.csv").unwrap();
        q2.store.get_object("b", "t/x.csv").unwrap();
        q3.store.get_object("b", "t/x.csv").unwrap();
        // Per-query ledgers stay exact...
        assert_eq!(q1.billed().requests, 1);
        assert_eq!(q2.billed().requests, 2);
        assert_eq!(q3.billed().requests, 1);
        // ...tenants see exactly the sum of their queries...
        assert_eq!(tenant_a.snapshot().requests, 3);
        assert_eq!(tenant_b.snapshot().requests, 1);
        // ...and the shared global root counts everything exactly once.
        assert_eq!(ctx.billed().requests, 4);
    }

    #[test]
    fn retry_policy_propagates_to_scoped_engines() {
        let ctx = QueryContext::new(S3Store::new());
        let mut custom = ctx.clone();
        custom.retry = RetryPolicy::with_attempts(9);
        let scoped = custom.scoped();
        assert_eq!(scoped.engine.retry().max_attempts, 9);
        assert_eq!(scoped.retry.max_attempts, 9);
    }
}
