//! Query metrics: phase-structured resource accounting.
//!
//! Every algorithm in the paper is naturally *phase-structured* (a Bloom
//! join has a build phase then a probe phase; sampling top-K has a
//! sampling phase then a scanning phase; …). [`QueryMetrics`] records a
//! serial sequence of **phase groups**; the phases *within* a group run
//! concurrently (e.g. a filtered join loading both tables at once), so
//! group time is the max of its members and query time is the sum of the
//! groups (plus fixed query startup).

use pushdown_common::perf::{PerfModel, PhaseStats};
use pushdown_common::pricing::{CostBreakdown, Pricing, Usage};

/// One named phase with its resource footprint.
#[derive(Debug, Clone)]
pub struct Phase {
    pub label: String,
    pub stats: PhaseStats,
}

/// Phases that run concurrently.
#[derive(Debug, Clone)]
pub struct PhaseGroup {
    pub phases: Vec<Phase>,
}

impl PhaseGroup {
    /// Group duration: slowest member.
    pub fn seconds(&self, model: &PerfModel) -> f64 {
        PerfModel::parallel(
            &self
                .phases
                .iter()
                .map(|p| model.phase_seconds(&p.stats))
                .collect::<Vec<_>>(),
        )
    }
}

/// The full, phase-structured footprint of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryMetrics {
    pub groups: Vec<PhaseGroup>,
}

impl QueryMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase that runs by itself.
    pub fn push_serial(&mut self, label: impl Into<String>, stats: PhaseStats) {
        self.groups.push(PhaseGroup {
            phases: vec![Phase {
                label: label.into(),
                stats,
            }],
        });
    }

    /// Append a group of concurrent phases.
    pub fn push_parallel(&mut self, phases: Vec<(String, PhaseStats)>) {
        self.groups.push(PhaseGroup {
            phases: phases
                .into_iter()
                .map(|(label, stats)| Phase { label, stats })
                .collect(),
        });
    }

    /// Append all of `other`'s groups (sub-query composition).
    pub fn extend(&mut self, other: &QueryMetrics) {
        self.groups.extend(other.groups.iter().cloned());
    }

    /// Modeled end-to-end runtime in seconds.
    pub fn runtime(&self, model: &PerfModel) -> f64 {
        let body: f64 = self.groups.iter().map(|g| g.seconds(model)).sum();
        model.query_seconds(body)
    }

    /// Total billable usage across all phases.
    pub fn usage(&self) -> Usage {
        let mut u = Usage::default();
        for g in &self.groups {
            for p in &g.phases {
                u.requests += p.stats.requests + p.stats.point_requests;
                u.select_scanned_bytes += p.stats.s3_scanned_bytes;
                u.select_returned_bytes += p.stats.select_returned_bytes;
                u.plain_bytes += p.stats.plain_bytes;
            }
        }
        u
    }

    /// Dollar cost: compute from the modeled runtime, the rest from usage.
    pub fn cost(&self, model: &PerfModel, pricing: &Pricing) -> CostBreakdown {
        pricing.cost(&self.usage(), self.runtime(model))
    }

    /// Per-phase durations, flattened, for the figure harnesses that plot
    /// phase breakdowns (Fig 6, Fig 8).
    pub fn phase_seconds(&self, model: &PerfModel) -> Vec<(String, f64)> {
        self.groups
            .iter()
            .flat_map(|g| {
                g.phases
                    .iter()
                    .map(|p| (p.label.clone(), model.phase_seconds(&p.stats)))
            })
            .collect()
    }

    /// Duration of all phases whose label contains `needle`.
    pub fn seconds_for(&self, model: &PerfModel, needle: &str) -> f64 {
        self.groups
            .iter()
            .flat_map(|g| g.phases.iter())
            .filter(|p| p.label.contains(needle))
            .map(|p| model.phase_seconds(&p.stats))
            .sum()
    }

    /// Sum of `select_returned + plain` bytes (the "Bytes Returned" series
    /// of Figs 6 and 8).
    pub fn bytes_returned(&self) -> u64 {
        let u = self.usage();
        u.select_returned_bytes + u.plain_bytes
    }

    /// Project the total billable usage by `factor`, rounding **once** at
    /// the aggregate level. This is the accounting-correct projection for
    /// multi-phase plans: `self.scaled(factor).usage()` rounds every phase
    /// independently and drifts by up to half a unit per phase, so
    /// `scaled(a).usage() + scaled(b).usage() != scaled_usage` in general
    /// (see `Usage::scaled`). Use [`QueryMetrics::scaled`] for the runtime
    /// model (which needs the per-phase structure) and this for dollars.
    pub fn scaled_usage(&self, factor: f64) -> Usage {
        self.usage().scaled(factor)
    }

    /// Dollar cost of the projection by `factor`: runtime from the
    /// per-phase scaled footprint, billable bytes scaled once at the
    /// aggregate level.
    pub fn scaled_cost(&self, factor: f64, model: &PerfModel, pricing: &Pricing) -> CostBreakdown {
        pricing.cost(
            &self.scaled_usage(factor),
            self.scaled(factor).runtime(model),
        )
    }

    /// Project all extensive quantities by `factor` (measurement at small
    /// scale factor → paper's SF 10; see DESIGN.md §2).
    pub fn scaled(&self, factor: f64) -> QueryMetrics {
        QueryMetrics {
            groups: self
                .groups
                .iter()
                .map(|g| PhaseGroup {
                    phases: g
                        .phases
                        .iter()
                        .map(|p| Phase {
                            label: p.label.clone(),
                            stats: p.stats.scaled(factor),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(plain: u64) -> PhaseStats {
        PhaseStats {
            plain_bytes: plain,
            requests: 1,
            ..Default::default()
        }
    }

    #[test]
    fn serial_groups_add_parallel_groups_max() {
        let model = PerfModel::default();
        let mut serial = QueryMetrics::new();
        serial.push_serial("a", stats(1_000_000_000));
        serial.push_serial("b", stats(2_000_000_000));
        let mut parallel = QueryMetrics::new();
        parallel.push_parallel(vec![
            ("a".into(), stats(1_000_000_000)),
            ("b".into(), stats(2_000_000_000)),
        ]);
        let t_serial = serial.runtime(&model);
        let t_parallel = parallel.runtime(&model);
        assert!(t_parallel < t_serial);
        // Parallel = startup + max; serial = startup + sum.
        let a = model.phase_seconds(&stats(1_000_000_000));
        let b = model.phase_seconds(&stats(2_000_000_000));
        assert!((t_serial - (model.params.query_startup + a + b)).abs() < 1e-9);
        assert!((t_parallel - (model.params.query_startup + b)).abs() < 1e-9);
    }

    #[test]
    fn usage_sums_phases() {
        let mut m = QueryMetrics::new();
        m.push_serial(
            "x",
            PhaseStats {
                requests: 2,
                s3_scanned_bytes: 10,
                select_returned_bytes: 5,
                plain_bytes: 3,
                ..Default::default()
            },
        );
        m.push_serial(
            "y",
            PhaseStats {
                requests: 1,
                plain_bytes: 7,
                ..Default::default()
            },
        );
        let u = m.usage();
        assert_eq!(u.requests, 3);
        assert_eq!(u.select_scanned_bytes, 10);
        assert_eq!(u.plain_bytes, 10);
        assert_eq!(m.bytes_returned(), 15);
    }

    #[test]
    fn cost_splits_components() {
        let model = PerfModel::default();
        let pricing = Pricing::us_east();
        let mut m = QueryMetrics::new();
        m.push_serial(
            "scan",
            PhaseStats {
                requests: 1000,
                s3_scanned_bytes: 10_000_000_000,
                select_returned_bytes: 1_000_000_000,
                ..Default::default()
            },
        );
        let c = m.cost(&model, &pricing);
        assert!(c.scan > 0.0 && c.transfer > 0.0 && c.request > 0.0 && c.compute > 0.0);
        assert!((c.scan - 0.02).abs() < 1e-9);
    }

    #[test]
    fn phase_labels_and_filters() {
        let model = PerfModel::default();
        let mut m = QueryMetrics::new();
        m.push_serial("sampling", stats(1_000_000));
        m.push_serial("scanning", stats(2_000_000));
        let all = m.phase_seconds(&model);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "sampling");
        assert!(m.seconds_for(&model, "sampling") > 0.0);
        assert!(m.seconds_for(&model, "nope") == 0.0);
    }

    #[test]
    fn scaled_usage_rounds_once_across_phases() {
        // 9 phases of 5 bytes each, factor 1.15: per-phase rounding gives
        // 9 × round(5.75) = 54; the aggregate path gives round(45 × 1.15)
        // = round(51.75) = 52, within half a unit of exact.
        let mut m = QueryMetrics::new();
        for i in 0..9 {
            m.push_serial(
                format!("p{i}"),
                PhaseStats {
                    select_returned_bytes: 5,
                    ..Default::default()
                },
            );
        }
        let per_phase = m.scaled(1.15).usage().select_returned_bytes;
        let once = m.scaled_usage(1.15).select_returned_bytes;
        assert_eq!(per_phase, 54);
        assert_eq!(once, 52);
        assert!((once as f64 - 45.0 * 1.15).abs() <= 0.5);
        // And the invariant the adaptive projections rely on: the single
        // rounding equals scaling the summed usage.
        assert_eq!(m.scaled_usage(1.15), m.usage().scaled(1.15));
    }

    #[test]
    fn scaling_projects_linearly() {
        let mut m = QueryMetrics::new();
        m.push_serial(
            "x",
            PhaseStats {
                plain_bytes: 100,
                requests: 1,
                point_requests: 2,
                ..Default::default()
            },
        );
        let s = m.scaled(100.0);
        assert_eq!(s.usage().plain_bytes, 10_000);
        // Bulk requests stay (layout constant); point requests scale.
        assert_eq!(s.usage().requests, 1 + 200);
    }
}
