//! Tables: partitioned objects in the store, loaders, and the catalog's
//! statistics layer.
//!
//! Paper §III: "To facilitate parallel processing, each table is
//! partitioned into multiple objects in S3. The techniques discussed in
//! this paper do not make any assumptions about how the data is
//! partitioned." Tables here are a key prefix plus numbered partition
//! objects (`<prefix>/part-00000.csv`, ...).
//!
//! ## Statistics
//!
//! The cost-based optimizer ([`crate::cost`], `Strategy::Adaptive`)
//! needs table statistics to predict what each candidate algorithm will
//! scan, return and compute. [`TableStats`] carries row count plus
//! per-column min/max, distinct-value count, null fraction and mean CSV
//! width ([`ColumnStats`]). Loaders gather exact statistics for free at
//! load time (one pass over the rows being uploaded, unmetered like the
//! load itself); for tables whose data changed since load — or that were
//! registered without statistics — [`probe_stats`] refreshes them with a
//! cheap `LIMIT`-bounded Select probe striped across partitions, which
//! *is* metered like any other query traffic.

use crate::context::QueryContext;
use pushdown_common::{Result, Row, Schema, Value};
use pushdown_format::columnar::{encode_columnar, WriterOptions};
use pushdown_format::csv::CsvWriter;
use pushdown_s3::S3Store;
use pushdown_select::InputFormat;
use pushdown_sql::{Expr, SelectItem, SelectStmt};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-column statistics: the inputs to selectivity and width estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value (NULL when the column is all-NULL).
    pub min: Value,
    /// Largest non-null value (NULL when the column is all-NULL).
    pub max: Value,
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Fraction of rows that are NULL.
    pub null_fraction: f64,
    /// Mean width of the CSV-rendered field, bytes.
    pub avg_width: f64,
}

/// Table-level statistics: row count plus one [`ColumnStats`] per column.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Rows in the table (exact — tracked by the catalog).
    pub row_count: u64,
    /// Rows actually examined to build the column statistics. Equals
    /// `row_count` for load-time statistics; smaller for probe refreshes.
    pub sample_rows: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Exact statistics from a full pass over `rows` (the load-time path).
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> TableStats {
        let mut stats = Self::from_sample(schema, rows);
        stats.row_count = rows.len() as u64;
        stats
    }

    /// Statistics from a sample, leaving `row_count` at the sample size;
    /// callers that know the true row count fix it up (see [`probe_stats`]).
    fn from_sample(schema: &Schema, rows: &[Row]) -> TableStats {
        let n = rows.len() as u64;
        let columns = (0..schema.len())
            .map(|c| {
                let mut min = Value::Null;
                let mut max = Value::Null;
                let mut nulls = 0u64;
                let mut width = 0usize;
                let mut distinct: HashSet<String> = HashSet::new();
                for r in rows {
                    let v = &r[c];
                    let field = v.to_csv_field();
                    width += field.len();
                    if v.is_null() {
                        nulls += 1;
                        continue;
                    }
                    distinct.insert(field);
                    if min.is_null() || v.total_cmp(&min) == std::cmp::Ordering::Less {
                        min = v.clone();
                    }
                    if max.is_null() || v.total_cmp(&max) == std::cmp::Ordering::Greater {
                        max = v.clone();
                    }
                }
                ColumnStats {
                    min,
                    max,
                    ndv: distinct.len() as u64,
                    null_fraction: if n == 0 { 0.0 } else { nulls as f64 / n as f64 },
                    avg_width: if n == 0 { 0.0 } else { width as f64 / n as f64 },
                }
            })
            .collect();
        TableStats {
            row_count: n,
            sample_rows: n,
            columns,
        }
    }

    /// Mean CSV row width in bytes: field widths plus separators and the
    /// line terminator — the unit every byte prediction multiplies by.
    pub fn avg_row_bytes(&self) -> f64 {
        let widths: f64 = self.columns.iter().map(|c| c.avg_width).sum();
        widths + self.columns.len().saturating_sub(1) as f64 + 1.0
    }

    /// Statistics for column `i`, if tracked.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }
}

/// A table registered in the catalog: schema + location + format.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub bucket: String,
    /// Partitions live at `<prefix>/part-NNNNN.<ext>`.
    pub prefix: String,
    pub schema: Schema,
    pub format: InputFormat,
    /// Total row count, known at load time (used by sampling phases to
    /// size LIMITs; a real system would keep this statistic in a catalog).
    pub row_count: u64,
    /// Column statistics for the cost-based optimizer. Loaders fill these
    /// in; `None` (a table registered by hand) makes the estimator fall
    /// back to schema-derived defaults. Shared — cloning a `Table` does
    /// not copy the statistics.
    pub stats: Option<Arc<TableStats>>,
}

/// A name → [`Table`] registry shared by every scope of a
/// [`QueryContext`].
///
/// Multi-table SQL (`FROM a JOIN b ON ...`) resolves its join tables
/// here: the planner's `execute_sql*` entry points take the *primary*
/// table as an argument (their signatures predate joins and ignore the
/// FROM name, like the paper's testbed), and every additional table in
/// the statement is looked up by name. Loaders don't register
/// automatically — populate it with [`Catalog::register`] or
/// [`QueryContext::with_tables`](crate::context::QueryContext::with_tables);
/// `pushdown_tpch::tpch_context` registers all eight TPC-H tables.
///
/// Lookup is case-insensitive. Cloning shares the registry (scoped
/// contexts see later registrations).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<std::sync::RwLock<std::collections::HashMap<String, Table>>>,
}

impl Catalog {
    /// Register (or replace) a table under its own name.
    pub fn register(&self, table: Table) {
        self.tables
            .write()
            .expect("catalog lock")
            .insert(table.name.to_ascii_lowercase(), table);
    }

    /// Case-insensitive lookup.
    pub fn resolve(&self, name: &str) -> Option<Table> {
        self.tables
            .read()
            .expect("catalog lock")
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Registered table names, sorted (for error messages).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

impl Table {
    /// Keys of all partitions, in order.
    pub fn partitions(&self, store: &S3Store) -> Vec<String> {
        store.list_objects(&self.bucket, &format!("{}/", self.prefix))
    }

    /// Total stored bytes.
    pub fn total_bytes(&self, store: &S3Store) -> u64 {
        store.total_size(&self.bucket, &format!("{}/", self.prefix))
    }

    /// Replace the attached statistics (e.g. after a [`probe_stats`]
    /// refresh).
    pub fn with_stats(mut self, stats: TableStats) -> Table {
        self.stats = Some(Arc::new(stats));
        self
    }
}

/// Refresh a table's statistics with a cheap `LIMIT`-bounded Select
/// probe: `SELECT * LIMIT probe_rows`, striped across partitions so the
/// sample is not a storage-order prefix. Unlike load-time statistics
/// this runs at query time and is metered (requests + scanned +
/// returned bytes land on the ledger). Distinct counts are extrapolated:
/// a column that looks unique in the sample is assumed unique in the
/// table; low-cardinality columns keep their sampled count.
pub fn probe_stats(ctx: &QueryContext, table: &Table, probe_rows: u64) -> Result<TableStats> {
    // Explicit columns rather than `*`, so the response schema matches
    // the table schema exactly.
    let stmt = SelectStmt {
        items: table
            .schema
            .fields()
            .iter()
            .map(|f| SelectItem::Expr {
                expr: Expr::col(f.name.clone()),
                alias: None,
            })
            .collect(),
        alias: None,
        where_clause: None,
        limit: None,
    };
    let (schema, rows) = match probe_sample_from_cache(ctx, table, probe_rows)? {
        Some(rows) => (table.schema.clone(), rows),
        None => {
            let scan =
                crate::scan::select_scan_striped_limit(ctx, table, &stmt, probe_rows as usize)?;
            (scan.schema, scan.rows)
        }
    };
    let mut stats = TableStats::from_sample(&schema, &rows);
    let sampled = stats.sample_rows.max(1);
    for col in &mut stats.columns {
        let non_null = ((sampled as f64) * (1.0 - col.null_fraction)).max(1.0);
        if (col.ndv as f64) >= 0.8 * non_null {
            // Looks unique (or near): extrapolate to the full table.
            let full_non_null = (table.row_count as f64) * (1.0 - col.null_fraction);
            col.ndv = full_non_null.round().max(col.ndv as f64) as u64;
        }
    }
    stats.row_count = table.row_count;
    Ok(stats)
}

/// Serve a statistics probe from the segment cache when **every**
/// partition is resident: decode the striped per-partition share of each
/// partition locally instead of issuing remote striped-LIMIT Selects —
/// the data is already on this node, so a warm probe bills $0. Returns
/// `None` (fall through to the remote probe) when no cache is installed,
/// the table has no partitions, or any partition is cold.
fn probe_sample_from_cache(
    ctx: &QueryContext,
    table: &Table,
    probe_rows: u64,
) -> Result<Option<Vec<Row>>> {
    let Some(cache) = ctx.store.cache() else {
        return Ok(None);
    };
    let keys = table.partitions(&ctx.store);
    if keys.is_empty() {
        return Ok(None);
    }
    // Warm means zero gap bytes across every partition's chunk layout
    // (either tier counts — a disk-resident probe still bills $0).
    for k in &keys {
        let size = ctx.store.object_size(&table.bucket, k)?;
        if cache.occupancy(&table.bucket, k, size).gap_bytes > 0 {
            return Ok(None);
        }
    }
    let parts = keys.len();
    let limit = (probe_rows as usize).max(1);
    let mut rows = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        // Same striping as `select_scan_striped_limit`: partition i
        // contributes its share of the LIMIT, and a Select with LIMIT s
        // returns the partition's first s rows.
        let share = (i + 1) * limit / parts - i * limit / parts;
        if share == 0 {
            continue;
        }
        let fetched =
            ctx.store
                .get_object_chunked_cached_with(&table.bucket, key, &ctx.retry, |data| {
                    crate::scan::chunk_layout(table, ctx.cache_chunk_bytes, data)
                })?;
        let mut part_rows = Vec::with_capacity(share);
        crate::scan::decode_partition_batches(
            fetched.data,
            &table.schema,
            table.format,
            share,
            |batch| {
                for row in batch.rows {
                    if part_rows.len() < share {
                        part_rows.push(row);
                    }
                }
                Ok(())
            },
        )?;
        rows.extend(part_rows);
    }
    Ok(Some(rows))
}

fn partition_key(prefix: &str, i: usize, ext: &str) -> String {
    format!("{prefix}/part-{i:05}.{ext}")
}

/// Write rows as a partitioned CSV table (with header rows) and register
/// it. Not metered: loading happens outside query execution (§II-B).
pub fn upload_csv_table(
    store: &S3Store,
    bucket: &str,
    name: &str,
    schema: &Schema,
    rows: &[Row],
    rows_per_partition: usize,
) -> Result<Table> {
    store.create_bucket(bucket);
    let per = rows_per_partition.max(1);
    let mut i = 0;
    for (p, chunk) in rows.chunks(per).enumerate() {
        let mut w = CsvWriter::with_header(schema);
        for r in chunk {
            w.write_row(r);
        }
        store.put_object(bucket, &partition_key(name, p, "csv"), w.finish());
        i = p + 1;
    }
    if i == 0 {
        // Empty tables still get one (header-only) partition so scans see
        // a well-formed object.
        let w = CsvWriter::with_header(schema);
        store.put_object(bucket, &partition_key(name, 0, "csv"), w.finish());
    }
    Ok(Table {
        name: name.to_string(),
        bucket: bucket.to_string(),
        prefix: name.to_string(),
        schema: schema.clone(),
        format: InputFormat::Csv,
        row_count: rows.len() as u64,
        stats: Some(Arc::new(TableStats::from_rows(schema, rows))),
    })
}

/// Write rows as a partitioned ColumnarLite table and register it.
pub fn upload_columnar_table(
    store: &S3Store,
    bucket: &str,
    name: &str,
    schema: &Schema,
    rows: &[Row],
    rows_per_partition: usize,
    options: WriterOptions,
) -> Result<Table> {
    store.create_bucket(bucket);
    let per = rows_per_partition.max(1);
    let mut wrote = false;
    for (p, chunk) in rows.chunks(per).enumerate() {
        let bytes = encode_columnar(schema, chunk, options);
        store.put_object(bucket, &partition_key(name, p, "clt"), bytes);
        wrote = true;
    }
    if !wrote {
        let bytes = encode_columnar(schema, &[], options);
        store.put_object(bucket, &partition_key(name, 0, "clt"), bytes);
    }
    Ok(Table {
        name: name.to_string(),
        bucket: bucket.to_string(),
        prefix: name.to_string(),
        schema: schema.clone(),
        format: InputFormat::Columnar,
        row_count: rows.len() as u64,
        stats: Some(Arc::new(TableStats::from_rows(schema, rows))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushdown_common::{DataType, Value};

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64), Value::Str(format!("r{i}"))]))
            .collect()
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)])
    }

    #[test]
    fn csv_upload_partitions_and_lists() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(250), 100).unwrap();
        assert_eq!(t.partitions(&store).len(), 3);
        assert_eq!(t.row_count, 250);
        assert!(t.total_bytes(&store) > 0);
        assert_eq!(t.partitions(&store)[0], "t/part-00000.csv");
    }

    #[test]
    fn empty_table_gets_one_partition() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "empty", &schema(), &[], 100).unwrap();
        assert_eq!(t.partitions(&store).len(), 1);
        let u = upload_columnar_table(
            &store,
            "b",
            "empty2",
            &schema(),
            &[],
            100,
            WriterOptions::default(),
        )
        .unwrap();
        assert_eq!(u.partitions(&store).len(), 1);
    }

    #[test]
    fn columnar_upload() {
        let store = S3Store::new();
        let t = upload_columnar_table(
            &store,
            "b",
            "t",
            &schema(),
            &rows(100),
            40,
            WriterOptions::default(),
        )
        .unwrap();
        assert_eq!(t.partitions(&store).len(), 3);
        assert_eq!(t.format, InputFormat::Columnar);
    }

    #[test]
    fn load_time_statistics_are_exact() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(100), 40).unwrap();
        let s = t.stats.as_ref().expect("loader attaches stats");
        assert_eq!(s.row_count, 100);
        assert_eq!(s.sample_rows, 100);
        let k = s.column(0).unwrap();
        assert_eq!(k.min, Value::Int(0));
        assert_eq!(k.max, Value::Int(99));
        assert_eq!(k.ndv, 100);
        assert_eq!(k.null_fraction, 0.0);
        let name = s.column(1).unwrap();
        assert_eq!(name.ndv, 100);
        assert!(name.avg_width > 2.0);
        // Row-width estimate tracks the real object size closely.
        let est = s.avg_row_bytes() * 100.0;
        let header = 4.0; // "k,s\n" per partition ≈ noise
        let actual = t.total_bytes(&store) as f64 - 3.0 * header;
        assert!((est - actual).abs() / actual < 0.05, "{est} vs {actual}");
    }

    #[test]
    fn empty_and_null_columns_have_null_stats() {
        let s = TableStats::from_rows(
            &schema(),
            &[
                Row::new(vec![Value::Null, Value::Null]),
                Row::new(vec![Value::Int(3), Value::Null]),
            ],
        );
        assert_eq!(s.column(0).unwrap().null_fraction, 0.5);
        assert_eq!(s.column(0).unwrap().min, Value::Int(3));
        assert!(s.column(1).unwrap().min.is_null());
        assert_eq!(s.column(1).unwrap().ndv, 0);
        assert_eq!(s.column(1).unwrap().null_fraction, 1.0);
        let empty = TableStats::from_rows(&schema(), &[]);
        assert_eq!(empty.row_count, 0);
        assert!(empty.column(0).unwrap().min.is_null());
    }

    #[test]
    fn probe_refresh_approximates_load_time_stats_and_is_metered() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(1000), 100).unwrap();
        let ctx = crate::context::QueryContext::new(store).scoped();
        let probed = probe_stats(&ctx, &t, 200).unwrap();
        // The probe is billed like any query.
        let billed = ctx.billed();
        assert!(billed.requests > 0 && billed.select_returned_bytes > 0);
        // Row count comes from the catalog, not the sample.
        assert_eq!(probed.row_count, 1000);
        assert_eq!(probed.sample_rows, 200);
        // The unique key column extrapolates to ~the full table.
        let exact = t.stats.as_ref().unwrap();
        let k = probed.column(0).unwrap();
        assert!(k.ndv >= 900, "extrapolated ndv {}", k.ndv);
        // Width estimates land near the exact ones.
        let we = exact.avg_row_bytes();
        let wp = probed.avg_row_bytes();
        assert!((we - wp).abs() / we < 0.15, "{we} vs {wp}");
    }

    #[test]
    fn warm_cache_probe_bills_zero_and_matches_remote_sample() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(1000), 100).unwrap();
        let base = crate::context::QueryContext::new(store).with_cache(1 << 30);

        // Remote probe first (cold cache): billed, and the reference
        // sample statistics.
        let cold = base.scoped();
        let reference = probe_stats(&cold, &t, 200).unwrap();
        assert!(cold.billed().requests > 0);

        // Warm the cache with a full cached read of every partition.
        let warm_up = base.scoped().with_cache_reads(true);
        crate::scan::cached_scan_streamed(&warm_up, &t, |_| Ok(())).unwrap();

        // Warm probe: served from the segment cache, zero billed
        // requests and bytes.
        let warm = base.scoped();
        let probed = probe_stats(&warm, &t, 200).unwrap();
        let billed = warm.billed();
        assert_eq!(billed.requests, 0, "warm probe must not issue requests");
        assert_eq!(billed.select_scanned_bytes, 0);
        assert_eq!(billed.select_returned_bytes, 0);
        assert_eq!(billed.plain_bytes, 0);

        // Same striped sample, so identical statistics.
        assert_eq!(probed.sample_rows, reference.sample_rows);
        assert_eq!(probed.row_count, reference.row_count);
        for (a, b) in probed.columns.iter().zip(&reference.columns) {
            assert_eq!(a.ndv, b.ndv);
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
        }
    }

    #[test]
    fn uploads_are_not_metered() {
        let store = S3Store::new();
        upload_csv_table(&store, "b", "t", &schema(), &rows(50), 10).unwrap();
        assert_eq!(store.ledger().snapshot().requests, 0);
    }
}
