//! Tables: partitioned objects in the store, plus loaders.
//!
//! Paper §III: "To facilitate parallel processing, each table is
//! partitioned into multiple objects in S3. The techniques discussed in
//! this paper do not make any assumptions about how the data is
//! partitioned." Tables here are a key prefix plus numbered partition
//! objects (`<prefix>/part-00000.csv`, ...).

use pushdown_common::{Result, Row, Schema};
use pushdown_format::columnar::{encode_columnar, WriterOptions};
use pushdown_format::csv::CsvWriter;
use pushdown_s3::S3Store;
use pushdown_select::InputFormat;

/// A table registered in the catalog: schema + location + format.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub bucket: String,
    /// Partitions live at `<prefix>/part-NNNNN.<ext>`.
    pub prefix: String,
    pub schema: Schema,
    pub format: InputFormat,
    /// Total row count, known at load time (used by sampling phases to
    /// size LIMITs; a real system would keep this statistic in a catalog).
    pub row_count: u64,
}

impl Table {
    /// Keys of all partitions, in order.
    pub fn partitions(&self, store: &S3Store) -> Vec<String> {
        store.list_objects(&self.bucket, &format!("{}/", self.prefix))
    }

    /// Total stored bytes.
    pub fn total_bytes(&self, store: &S3Store) -> u64 {
        store.total_size(&self.bucket, &format!("{}/", self.prefix))
    }
}

fn partition_key(prefix: &str, i: usize, ext: &str) -> String {
    format!("{prefix}/part-{i:05}.{ext}")
}

/// Write rows as a partitioned CSV table (with header rows) and register
/// it. Not metered: loading happens outside query execution (§II-B).
pub fn upload_csv_table(
    store: &S3Store,
    bucket: &str,
    name: &str,
    schema: &Schema,
    rows: &[Row],
    rows_per_partition: usize,
) -> Result<Table> {
    store.create_bucket(bucket);
    let per = rows_per_partition.max(1);
    let mut i = 0;
    for (p, chunk) in rows.chunks(per).enumerate() {
        let mut w = CsvWriter::with_header(schema);
        for r in chunk {
            w.write_row(r);
        }
        store.put_object(bucket, &partition_key(name, p, "csv"), w.finish());
        i = p + 1;
    }
    if i == 0 {
        // Empty tables still get one (header-only) partition so scans see
        // a well-formed object.
        let w = CsvWriter::with_header(schema);
        store.put_object(bucket, &partition_key(name, 0, "csv"), w.finish());
    }
    Ok(Table {
        name: name.to_string(),
        bucket: bucket.to_string(),
        prefix: name.to_string(),
        schema: schema.clone(),
        format: InputFormat::Csv,
        row_count: rows.len() as u64,
    })
}

/// Write rows as a partitioned ColumnarLite table and register it.
pub fn upload_columnar_table(
    store: &S3Store,
    bucket: &str,
    name: &str,
    schema: &Schema,
    rows: &[Row],
    rows_per_partition: usize,
    options: WriterOptions,
) -> Result<Table> {
    store.create_bucket(bucket);
    let per = rows_per_partition.max(1);
    let mut wrote = false;
    for (p, chunk) in rows.chunks(per).enumerate() {
        let bytes = encode_columnar(schema, chunk, options);
        store.put_object(bucket, &partition_key(name, p, "clt"), bytes);
        wrote = true;
    }
    if !wrote {
        let bytes = encode_columnar(schema, &[], options);
        store.put_object(bucket, &partition_key(name, 0, "clt"), bytes);
    }
    Ok(Table {
        name: name.to_string(),
        bucket: bucket.to_string(),
        prefix: name.to_string(),
        schema: schema.clone(),
        format: InputFormat::Columnar,
        row_count: rows.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushdown_common::{DataType, Value};

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64), Value::Str(format!("r{i}"))]))
            .collect()
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)])
    }

    #[test]
    fn csv_upload_partitions_and_lists() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(250), 100).unwrap();
        assert_eq!(t.partitions(&store).len(), 3);
        assert_eq!(t.row_count, 250);
        assert!(t.total_bytes(&store) > 0);
        assert_eq!(
            t.partitions(&store)[0],
            "t/part-00000.csv"
        );
    }

    #[test]
    fn empty_table_gets_one_partition() {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "empty", &schema(), &[], 100).unwrap();
        assert_eq!(t.partitions(&store).len(), 1);
        let u = upload_columnar_table(
            &store,
            "b",
            "empty2",
            &schema(),
            &[],
            100,
            WriterOptions::default(),
        )
        .unwrap();
        assert_eq!(u.partitions(&store).len(), 1);
    }

    #[test]
    fn columnar_upload() {
        let store = S3Store::new();
        let t = upload_columnar_table(
            &store,
            "b",
            "t",
            &schema(),
            &rows(100),
            40,
            WriterOptions::default(),
        )
        .unwrap();
        assert_eq!(t.partitions(&store).len(), 3);
        assert_eq!(t.format, InputFormat::Columnar);
    }

    #[test]
    fn uploads_are_not_metered() {
        let store = S3Store::new();
        upload_csv_table(&store, "b", "t", &schema(), &rows(50), 10).unwrap();
        assert_eq!(store.ledger().snapshot().requests, 0);
    }
}
