//! The "minimal optimizer" (paper §III).
//!
//! PushdownDB's testbed exposes a single-table SQL front-end and decides
//! *which algorithm family* evaluates each query; "dynamically
//! determining which optimization to use is orthogonal to and beyond the
//! scope of this paper" (§VIII), so the strategy is an explicit input:
//! [`Strategy::Baseline`] never pushes computation, [`Strategy::Pushdown`]
//! always uses the paper's pushdown variant of the matching operator.
//!
//! Shapes handled (one table, as in the paper's testbed):
//!
//! * plain filter/projection → §IV filter strategies;
//! * aggregates without GROUP BY → local vs S3-side aggregation (§VIII Q6);
//! * GROUP BY → §VI group-by algorithms (hybrid when single-column);
//! * ORDER BY … LIMIT k → §VII top-K algorithms.

use crate::algos::{filter, groupby, topk};
use crate::catalog::Table;
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{self, select_scan};
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::QuerySpec;
use pushdown_sql::bind::Binder;
use pushdown_sql::parser::parse_query;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// Whether the planner may push computation into S3 Select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Load whole tables with plain GETs; compute everything locally.
    Baseline,
    /// Use the paper's pushdown algorithm for the query's operator family.
    Pushdown,
}

/// What the planner decided (for EXPLAIN-style output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanKind {
    Filter { pushdown: bool },
    Aggregate { pushdown: bool },
    GroupBy { algorithm: &'static str },
    TopK { sampling: bool },
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanKind::Filter { pushdown } => {
                write!(f, "Filter[{}]", if *pushdown { "s3-side" } else { "server-side" })
            }
            PlanKind::Aggregate { pushdown } => {
                write!(f, "Aggregate[{}]", if *pushdown { "s3-side" } else { "server-side" })
            }
            PlanKind::GroupBy { algorithm } => write!(f, "GroupBy[{algorithm}]"),
            PlanKind::TopK { sampling } => {
                write!(f, "TopK[{}]", if *sampling { "sampling" } else { "server-side" })
            }
        }
    }
}

/// Parse and execute a client-dialect SQL query against one table.
pub fn execute_sql(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<QueryOutput> {
    let (out, _) = execute_sql_explained(ctx, table, sql, strategy)?;
    Ok(out)
}

/// Like [`execute_sql`], also reporting which plan the optimizer chose.
pub fn execute_sql_explained(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<(QueryOutput, PlanKind)> {
    let spec = parse_query(sql)?;
    plan_and_run(ctx, table, &spec, strategy)
}

fn plan_and_run(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, PlanKind)> {
    let push = strategy == Strategy::Pushdown;

    // ---- ORDER BY ... LIMIT k → top-K (§VII).
    if let Some(order) = &spec.order_by {
        if !spec.group_by.is_empty() {
            return Err(Error::Bind(
                "ORDER BY over GROUP BY results is not supported by this planner".into(),
            ));
        }
        let Some(k) = spec.select.limit else {
            return Err(Error::Bind(
                "ORDER BY requires a LIMIT (top-K is the supported shape)".into(),
            ));
        };
        if !matches!(spec.select.items.as_slice(), [SelectItem::Wildcard]) {
            return Err(Error::Bind(
                "top-K queries must project `*` in this planner".into(),
            ));
        }
        if spec.select.where_clause.is_some() {
            return Err(Error::Bind(
                "top-K with a WHERE clause is not supported by this planner".into(),
            ));
        }
        let q = topk::TopKQuery {
            table: table.clone(),
            order_col: order.column.clone(),
            k: k as usize,
            asc: order.asc,
        };
        let out = if push {
            topk::sampling(ctx, &q, None)?
        } else {
            topk::server_side(ctx, &q)?
        };
        return Ok((out, PlanKind::TopK { sampling: push }));
    }

    // ---- GROUP BY → §VI.
    if !spec.group_by.is_empty() {
        let q = groupby_query(table, spec)?;
        let (out, algorithm) = if push {
            if q.group_cols.len() == 1 {
                (
                    groupby::hybrid(ctx, &q, groupby::HybridOptions::default())?,
                    "hybrid",
                )
            } else {
                (groupby::s3_side(ctx, &q)?, "s3-side")
            }
        } else {
            (groupby::server_side(ctx, &q)?, "server-side")
        };
        return Ok((apply_limit(out, spec.select.limit), PlanKind::GroupBy { algorithm }));
    }

    // ---- Aggregates without GROUP BY.
    if spec.select.is_aggregate() {
        let out = if push {
            let scan = select_scan(ctx, table, &spec.select)?;
            let mut metrics = QueryMetrics::new();
            metrics.push_serial("s3-side aggregation", scan.stats);
            QueryOutput { schema: scan.schema, rows: scan.rows, metrics }
        } else {
            local_aggregate(ctx, table, &spec.select)?
        };
        return Ok((out, PlanKind::Aggregate { pushdown: push }));
    }

    // ---- Plain filter/projection → §IV.
    let projection = projection_columns(&spec.select)?;
    let q = filter::FilterQuery {
        table: table.clone(),
        predicate: spec
            .select
            .where_clause
            .clone()
            .unwrap_or_else(|| Expr::lit(Value::Bool(true))),
        projection,
    };
    let out = if push {
        filter::s3_side(ctx, &q)?
    } else {
        filter::server_side(ctx, &q)?
    };
    Ok((apply_limit(out, spec.select.limit), PlanKind::Filter { pushdown: push }))
}

/// Extract a plain-column projection list (None for `*`).
fn projection_columns(stmt: &SelectStmt) -> Result<Option<Vec<String>>> {
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard]) {
        return Ok(None);
    }
    let mut cols = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Expr { expr: Expr::Column(name), .. } => cols.push(name.clone()),
            other => {
                return Err(Error::Bind(format!(
                    "this planner projects plain columns only, found `{other}`"
                )))
            }
        }
    }
    Ok(Some(cols))
}

/// Convert a GROUP BY spec into a [`groupby::GroupByQuery`]: scalar items
/// must be the grouping columns; aggregate arguments must be plain
/// columns.
fn groupby_query(table: &Table, spec: &QuerySpec) -> Result<groupby::GroupByQuery> {
    let mut aggs: Vec<(AggFunc, String)> = Vec::new();
    for item in &spec.select.items {
        match item {
            SelectItem::Expr { expr: Expr::Column(name), .. } => {
                if !spec.group_by.iter().any(|g| g.eq_ignore_ascii_case(name)) {
                    return Err(Error::Bind(format!(
                        "column `{name}` must appear in GROUP BY"
                    )));
                }
            }
            SelectItem::Agg { func, arg, .. } => match arg {
                Some(Expr::Column(c)) => aggs.push((*func, c.clone())),
                None if *func == AggFunc::Count => {
                    // COUNT(*) counts any non-null column; the grouping
                    // column itself works (groups have non-null keys here).
                    aggs.push((AggFunc::Count, spec.group_by[0].clone()));
                }
                other => {
                    return Err(Error::Bind(format!(
                        "aggregate arguments must be plain columns, found {other:?}"
                    )))
                }
            },
            other => {
                return Err(Error::Bind(format!(
                    "GROUP BY select items must be grouping columns or aggregates, \
                     found `{other}`"
                )))
            }
        }
    }
    Ok(groupby::GroupByQuery {
        table: table.clone(),
        group_cols: spec.group_by.clone(),
        aggs,
        predicate: spec.select.where_clause.clone(),
    })
}

/// Baseline scalar aggregation: full load, evaluate aggregate items
/// locally — streamed. Scan batches fold straight into the accumulators;
/// only the accumulators are resident.
fn local_aggregate(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<QueryOutput> {
    let binder = Binder::new(&table.schema);
    let pred = match &stmt.where_clause {
        Some(w) => Some(binder.bind_expr(w)?),
        None => None,
    };
    let mut accs = Vec::new();
    let mut fields = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Agg { func, arg, alias } = item else {
            return Err(Error::Bind("aggregate query cannot contain scalar items".into()));
        };
        let bound = match arg {
            Some(e) => Some(binder.bind_expr(e)?),
            None => None,
        };
        let dtype = match func {
            AggFunc::Count => pushdown_common::DataType::Int,
            AggFunc::Avg => pushdown_common::DataType::Float,
            _ => bound
                .as_ref()
                .map(|e| e.infer_type())
                .unwrap_or(pushdown_common::DataType::Float),
        };
        fields.push(pushdown_common::Field::new(
            alias.clone().unwrap_or_else(|| format!("_{}", i + 1)),
            dtype,
        ));
        accs.push((func.accumulator(), bound));
    }
    let mut op_stats = pushdown_common::perf::PhaseStats::default();
    let summary = scan::plain_scan_streamed(ctx, table, |batch| {
        let rows = match &pred {
            Some(p) => ops::filter_rows(batch.rows, p, &mut op_stats)?,
            None => batch.rows,
        };
        op_stats.server_cpu_units += rows.len() as u64 * accs.len() as u64;
        for r in &rows {
            for (acc, arg) in accs.iter_mut() {
                match arg {
                    Some(e) => acc.update(&pushdown_sql::eval::eval(e, r)?)?,
                    None => acc.update(&Value::Bool(true))?,
                }
            }
        }
        Ok(())
    })?;
    let row = Row::new(accs.iter().map(|(a, _)| a.finish()).collect());
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side aggregation", stats);
    Ok(QueryOutput { schema: Schema::new(fields), rows: vec![row], metrics })
}

fn apply_limit(mut out: QueryOutput, limit: Option<u64>) -> QueryOutput {
    if let Some(l) = limit {
        out.rows.truncate(l as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::DataType;
    use pushdown_s3::S3Store;

    fn setup() -> (QueryContext, Table) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("v", DataType::Float),
            ("s", DataType::Str),
        ]);
        let rows: Vec<Row> = (0..1_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i % 7) as i64),
                    Value::Float((i as f64 * 3.7) % 101.0),
                    Value::Str(format!("name-{i}")),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 300).unwrap();
        (QueryContext::new(store), t)
    }

    fn both(ctx: &QueryContext, t: &Table, sql: &str) -> (QueryOutput, QueryOutput) {
        (
            execute_sql(ctx, t, sql, Strategy::Baseline).unwrap(),
            execute_sql(ctx, t, sql, Strategy::Pushdown).unwrap(),
        )
    }

    fn assert_close(a: &QueryOutput, b: &QueryOutput, what: &str) {
        assert_eq!(a.rows.len(), b.rows.len(), "{what}");
        for (x, y) in a.rows.iter().zip(&b.rows) {
            for (vx, vy) in x.values().iter().zip(y.values()) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() < 1e-6 * (1.0 + fx.abs()), "{what}")
                    }
                    _ => assert_eq!(vx, vy, "{what}"),
                }
            }
        }
    }

    #[test]
    fn filter_queries_route_to_filter_algorithms() {
        let (ctx, t) = setup();
        let sql = "SELECT g, v FROM t WHERE v < 10 AND g = 3";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::Filter { pushdown: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::Filter { pushdown: true });
        assert_close(&base, &push, sql);
        assert!(!base.rows.is_empty());
        assert_eq!(base.schema.names(), vec!["g", "v"]);
    }

    #[test]
    fn select_star_and_limit() {
        let (ctx, t) = setup();
        let (base, push) = both(&ctx, &t, "SELECT * FROM t WHERE g = 1 LIMIT 5");
        assert_eq!(base.rows.len(), 5);
        assert_close(&base, &push, "limit");
    }

    #[test]
    fn no_where_clause_means_full_scan() {
        let (ctx, t) = setup();
        let (base, push) = both(&ctx, &t, "SELECT s FROM t");
        assert_eq!(base.rows.len(), 1_000);
        assert_close(&base, &push, "full scan");
    }

    #[test]
    fn aggregates_route_to_aggregation() {
        let (ctx, t) = setup();
        let sql = "SELECT SUM(v), COUNT(*), AVG(v), MIN(g), MAX(g) FROM t WHERE g <> 2";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::Aggregate { pushdown: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::Aggregate { pushdown: true });
        assert_close(&base, &push, sql);
        // Pushdown ships almost nothing back.
        assert!(push.metrics.bytes_returned() < base.metrics.bytes_returned() / 100);
    }

    #[test]
    fn group_by_routes_to_groupby_algorithms() {
        let (ctx, t) = setup();
        let sql = "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::GroupBy { algorithm: "server-side" });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::GroupBy { algorithm: "hybrid" });
        assert_eq!(base.rows.len(), 7);
        assert_close(&base, &push, sql);
    }

    #[test]
    fn order_by_limit_routes_to_topk() {
        let (ctx, t) = setup();
        let sql = "SELECT * FROM t ORDER BY v DESC LIMIT 12";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::TopK { sampling: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::TopK { sampling: true });
        assert_eq!(base.rows.len(), 12);
        for (a, b) in base.rows.iter().zip(&push.rows) {
            assert_eq!(a[1], b[1]);
        }
        // Descending.
        assert!(base.rows[0][1].total_cmp(&base.rows[11][1]).is_ge());
    }

    #[test]
    fn unsupported_shapes_are_rejected_cleanly() {
        let (ctx, t) = setup();
        for sql in [
            "SELECT * FROM t ORDER BY v",                    // top-K needs LIMIT
            "SELECT v FROM t ORDER BY v LIMIT 5",            // top-K projects *
            "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g LIMIT 5",
            "SELECT v + 1 FROM t",                           // computed projection
            "SELECT s, SUM(v) FROM t GROUP BY g",            // non-grouped column
        ] {
            let err = execute_sql(&ctx, &t, sql, Strategy::Pushdown);
            assert!(err.is_err(), "{sql} should be rejected");
        }
    }

    #[test]
    fn plan_kind_display() {
        assert_eq!(PlanKind::Filter { pushdown: true }.to_string(), "Filter[s3-side]");
        assert_eq!(
            PlanKind::GroupBy { algorithm: "hybrid" }.to_string(),
            "GroupBy[hybrid]"
        );
        assert_eq!(PlanKind::TopK { sampling: true }.to_string(), "TopK[sampling]");
    }
}
