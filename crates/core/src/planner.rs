//! The optimizer (paper §III, grown a cost-based mode).
//!
//! PushdownDB's testbed exposes a single-table SQL front-end and decides
//! *which algorithm family* evaluates each query. The paper takes that
//! choice as an explicit input — "dynamically determining which
//! optimization to use is orthogonal to and beyond the scope of this
//! paper" (§VIII): [`Strategy::Baseline`] never pushes computation,
//! [`Strategy::Pushdown`] always uses the paper's pushdown variant of
//! the matching operator. [`Strategy::Adaptive`] goes beyond the paper:
//! it enumerates *every* applicable algorithm family, predicts each
//! candidate's [`Usage`] and runtime analytically from catalog
//! statistics ([`crate::cost`]), and executes the cheapest by predicted
//! dollars. [`execute_sql_verbose`] returns the [`Explain`] surface —
//! the candidates considered, the prediction for the chosen plan, and a
//! predicted-vs-actual report per phase.
//!
//! Every query lowers to a **physical plan** ([`crate::plan`]) run by
//! one executor. Shapes handled:
//!
//! * plain filter/projection → §IV filter strategies;
//! * aggregates without GROUP BY → local vs S3-side aggregation (§VIII Q6);
//! * GROUP BY → §VI group-by algorithms (adaptive additionally considers
//!   the filtered variant, and §X's native group-by when the extended
//!   engine is enabled);
//! * `ORDER BY col LIMIT k` over `*` → §VII top-K algorithms; every
//!   other ordered shape (multi-key ORDER BY, ordering over GROUP BY
//!   results or projections) stacks a Sort operator on the matching
//!   choice;
//! * multi-table `JOIN ... ON` → a left-deep join DAG (the `joinplan`
//!   lowering) whose join strategy and per-scan pushdown modes are
//!   chosen **jointly**, priced whole-plan by [`cost::predict_plan`].

use crate::algos::{filter, groupby, topk};
use crate::catalog::Table;
use crate::context::QueryContext;
use crate::cost::{self, Estimator, PlanEstimate};
use crate::metrics::QueryMetrics;
use crate::output::QueryOutput;
use crate::plan::{self, AlgoOp, OpReport, PlanNode, PlanOp};
use pushdown_common::pricing::Usage;
use pushdown_common::{Error, Result};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::QuerySpec;
use pushdown_sql::parser::parse_query;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// Whether the planner may push computation into S3 Select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Load whole tables with plain GETs; compute everything locally.
    Baseline,
    /// Use the paper's pushdown algorithm for the query's operator family.
    Pushdown,
    /// Cost-based: predict every candidate's footprint from catalog
    /// statistics and execute the argmin-dollar plan.
    Adaptive,
}

/// What the planner decided (for EXPLAIN-style output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanKind {
    Filter {
        pushdown: bool,
    },
    Aggregate {
        pushdown: bool,
    },
    GroupBy {
        algorithm: &'static str,
    },
    TopK {
        sampling: bool,
    },
    /// A multi-table join plan; `algorithm` names the joint join ×
    /// per-scan-pushdown candidate (`"baseline"`, `"filtered"`,
    /// `"bloom"`, `"build-push"`, `"probe-push"`).
    Join {
        algorithm: &'static str,
    },
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanKind::Filter { pushdown } => {
                write!(
                    f,
                    "Filter[{}]",
                    if *pushdown { "s3-side" } else { "server-side" }
                )
            }
            PlanKind::Aggregate { pushdown } => {
                write!(
                    f,
                    "Aggregate[{}]",
                    if *pushdown { "s3-side" } else { "server-side" }
                )
            }
            PlanKind::GroupBy { algorithm } => write!(f, "GroupBy[{algorithm}]"),
            PlanKind::TopK { sampling } => {
                write!(
                    f,
                    "TopK[{}]",
                    if *sampling { "sampling" } else { "server-side" }
                )
            }
            PlanKind::Join { algorithm } => write!(f, "Join[{algorithm}]"),
        }
    }
}

/// Cost prediction for one candidate the optimizer considered
/// (Adaptive only).
#[derive(Debug, Clone)]
pub struct CandidateCost {
    pub algorithm: &'static str,
    /// Predicted billable usage.
    pub usage: Usage,
    /// Predicted runtime, seconds.
    pub runtime: f64,
    /// Predicted total dollars (the selection objective).
    pub dollars: f64,
    pub chosen: bool,
}

/// The planner's EXPLAIN surface: what was chosen, and — under
/// [`Strategy::Adaptive`] — every candidate's predicted cost plus the
/// phase-structured prediction for the executed plan.
#[derive(Debug, Clone)]
pub struct Explain {
    pub kind: PlanKind,
    pub strategy: Strategy,
    /// Candidates considered, cheapest marked (empty for the fixed
    /// strategies, which consider nothing).
    pub candidates: Vec<CandidateCost>,
    /// Predicted metrics of the executed plan (Adaptive only).
    pub predicted: Option<QueryMetrics>,
    /// The executed physical-plan tree, one entry per operator, with
    /// each node's measured footprint and — where the planner had one —
    /// its prediction.
    pub operators: Option<OpReport>,
}

impl Explain {
    /// EXPLAIN ANALYZE-style text: the chosen plan, each candidate's
    /// predicted cost, and predicted-vs-actual resource use per phase.
    pub fn report(&self, out: &QueryOutput, ctx: &QueryContext) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "plan: {}  (strategy: {:?})", self.kind, self.strategy);
        if !self.candidates.is_empty() {
            let _ = writeln!(s, "candidates:");
            for c in &self.candidates {
                let _ = writeln!(
                    s,
                    "  {} {:<12} predicted ${:.6}  {:.2}s  ({} req, {} scanned, {} returned, {} plain)",
                    if c.chosen { "*" } else { " " },
                    c.algorithm,
                    c.dollars,
                    c.runtime,
                    c.usage.requests,
                    c.usage.select_scanned_bytes,
                    c.usage.select_returned_bytes,
                    c.usage.plain_bytes,
                );
            }
        }
        if let Some(predicted) = &self.predicted {
            let _ = writeln!(s, "phases (predicted vs actual):");
            for (i, actual) in out.metrics.groups.iter().enumerate() {
                let label = actual
                    .phases
                    .first()
                    .map(|p| p.label.as_str())
                    .unwrap_or("?");
                let a_secs = actual.seconds(&ctx.model);
                match predicted.groups.get(i) {
                    Some(pred) => {
                        let _ = writeln!(
                            s,
                            "  {label}: predicted {:.2}s vs actual {a_secs:.2}s",
                            pred.seconds(&ctx.model),
                        );
                    }
                    None => {
                        let _ = writeln!(s, "  {label}: (unpredicted) actual {a_secs:.2}s");
                    }
                }
            }
            let pu = predicted.usage();
            let au = out.metrics.usage();
            let _ = writeln!(
                s,
                "usage: predicted {} req / {} scanned / {} returned / {} plain\n\
                 usage: actual    {} req / {} scanned / {} returned / {} plain",
                pu.requests,
                pu.select_scanned_bytes,
                pu.select_returned_bytes,
                pu.plain_bytes,
                au.requests,
                au.select_scanned_bytes,
                au.select_returned_bytes,
                au.plain_bytes,
            );
            let _ = writeln!(
                s,
                "cost: predicted ${:.6} vs actual ${:.6}",
                predicted.cost(&ctx.model, &ctx.pricing).total(),
                out.metrics.cost(&ctx.model, &ctx.pricing).total(),
            );
        }
        if let Some(ops) = &self.operators {
            let _ = writeln!(s, "operators (predicted vs actual):");
            s.push_str(&ops.render(&ctx.model));
        }
        // The per-query child ledger — what AWS would bill this query,
        // exact even with other queries running concurrently.
        let b = out.billed;
        let _ = writeln!(
            s,
            "ledger: billed   {} req / {} scanned / {} returned / {} plain (${:.6})",
            b.requests,
            b.select_scanned_bytes,
            b.select_returned_bytes,
            b.plain_bytes,
            out.billed_cost(ctx).total(),
        );
        // Cluster-wide decomposition of the same totals: one line per
        // node with everything it billed (across all queries so far),
        // its interconnect volume, and its virtual busy time.
        if let Some(cluster) = &ctx.cluster {
            for ns in cluster.snapshots() {
                let _ = writeln!(
                    s,
                    "  node {}: billed {} req / {} scanned / {} returned / {} plain  exchange {} B  busy {:.2}s",
                    ns.node,
                    ns.usage.requests,
                    ns.usage.select_scanned_bytes,
                    ns.usage.select_returned_bytes,
                    ns.usage.plain_bytes,
                    ns.exchange_bytes,
                    ns.seconds,
                );
            }
        }
        // The hybrid tier's store-wide cache counters (cross-query, so a
        // fleet of reports shows the cache heating up).
        if let Some(cache) = ctx.store.cache() {
            let cs = cache.stats();
            let _ = writeln!(
                s,
                "cache:  {} hits / {} misses, {} B hit, {} B filled, {} evicted; \
                 {} B of {} B budget used",
                cs.hits,
                cs.misses,
                cs.hit_bytes,
                cs.fill_bytes,
                cs.evictions,
                cs.used_bytes,
                cs.budget_bytes,
            );
        }
        s
    }
}

/// How one operator family resolved: which algorithm runs, and (under
/// Adaptive) the full candidate list backing the decision.
struct Choice {
    algorithm: &'static str,
    candidates: Vec<PlanEstimate>,
    chosen: Option<usize>,
}

impl Choice {
    /// A fixed strategy: no candidates were weighed.
    fn fixed(algorithm: &'static str) -> Choice {
        Choice {
            algorithm,
            candidates: Vec::new(),
            chosen: None,
        }
    }

    /// Adaptive: pick the cheapest predicted candidate.
    fn adaptive(ctx: &QueryContext, candidates: Vec<PlanEstimate>) -> Choice {
        let i = cost::cheapest(&candidates, ctx);
        Choice {
            algorithm: candidates[i].algorithm,
            candidates,
            chosen: Some(i),
        }
    }

    fn explain(&self, ctx: &QueryContext, kind: PlanKind, strategy: Strategy) -> Explain {
        Explain {
            kind,
            strategy,
            candidates: self
                .candidates
                .iter()
                .enumerate()
                .map(|(i, c)| CandidateCost {
                    algorithm: c.algorithm,
                    usage: c.usage(),
                    runtime: c.runtime(ctx),
                    dollars: c.dollars(ctx),
                    chosen: Some(i) == self.chosen,
                })
                .collect(),
            predicted: self.chosen.map(|i| self.candidates[i].predicted.clone()),
            operators: None,
        }
    }

    /// The chosen candidate's predicted footprint, folded to one
    /// [`pushdown_common::perf::PhaseStats`] (attached to algorithm-family
    /// leaf operators in the report tree).
    fn leaf_prediction(&self) -> Option<pushdown_common::perf::PhaseStats> {
        self.chosen
            .map(|i| plan::merged_stats(&self.candidates[i].predicted))
    }
}

/// Execute a plan and split the result into output + report tree.
fn run_plan(ctx: &QueryContext, node: &PlanNode) -> Result<(QueryOutput, OpReport)> {
    let executed = plan::execute(ctx, node)?;
    let report = executed.report.clone();
    Ok((executed.into_output(), report))
}

/// Parse and execute a client-dialect SQL query against one table.
pub fn execute_sql(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<QueryOutput> {
    let (out, _) = execute_sql_verbose(ctx, table, sql, strategy)?;
    Ok(out)
}

/// Like [`execute_sql`], also reporting which plan the optimizer chose.
pub fn execute_sql_explained(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<(QueryOutput, PlanKind)> {
    let (out, explain) = execute_sql_verbose(ctx, table, sql, strategy)?;
    Ok((out, explain.kind))
}

/// Like [`execute_sql`], returning the full [`Explain`] surface —
/// candidate predictions and the predicted-vs-actual breakdown under
/// [`Strategy::Adaptive`].
pub fn execute_sql_verbose(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    let spec = parse_query(sql)?;
    plan_and_run(ctx, table, &spec, strategy)
}

fn plan_and_run(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    // One scope per query: everything below — estimator probes, the
    // chosen algorithm, planner-level scans — bills a child ledger that
    // rolls up into the store-global one, so `QueryOutput::billed` is
    // exact even when many queries share this context concurrently.
    let ctx = &ctx.scoped();
    let (mut out, explain) = plan_and_run_scoped(ctx, table, spec, strategy)?;
    out.billed = ctx.billed();
    Ok((out, explain))
}

fn plan_and_run_scoped(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    // ---- Multi-table FROM → join DAG over the plan IR.
    if !spec.joins.is_empty() {
        return joined_plan_and_run(ctx, table, spec, strategy);
    }

    if !spec.order_by.is_empty() {
        // ---- `ORDER BY col LIMIT k` over `*` → top-K (§VII), exactly
        // the paper's shape. Every other ordered shape stacks a Sort
        // operator over the matching scan/aggregation choice.
        let topk_shape = spec.group_by.is_empty()
            && spec.order_by.len() == 1
            && spec.select.limit.is_some()
            && spec.select.where_clause.is_none()
            && matches!(spec.select.items.as_slice(), [SelectItem::Wildcard]);
        if topk_shape {
            let order = &spec.order_by[0];
            let q = topk::TopKQuery {
                table: table.clone(),
                order_col: order.column.clone(),
                k: spec.select.limit.expect("top-K shape has a LIMIT") as usize,
                asc: order.asc,
            };
            // Unknown order columns are bind errors, not runtime errors.
            q.table.schema.resolve(&q.order_col)?;
            let choice = match strategy {
                Strategy::Baseline => Choice::fixed("server-side"),
                Strategy::Pushdown => Choice::fixed("sampling"),
                Strategy::Adaptive => Choice::adaptive(ctx, Estimator::new(ctx, table).topk(&q)?),
            };
            let node = PlanNode::new(
                PlanOp::Algo(AlgoOp::TopK(q.clone(), choice.algorithm)),
                Vec::new(),
                q.table.schema.clone(),
            );
            let (out, mut report) = run_plan(ctx, &node)?;
            report.predicted = choice.leaf_prediction();
            let kind = PlanKind::TopK {
                sampling: choice.algorithm == "sampling",
            };
            let mut explain = choice.explain(ctx, kind, strategy);
            explain.operators = Some(report);
            return Ok((out, explain));
        }
        return sorted_plan_and_run(ctx, table, spec, strategy);
    }

    // ---- GROUP BY → §VI.
    if !spec.group_by.is_empty() {
        let q = groupby_query(table, spec)?;
        let choice = groupby_choice(ctx, table, &q, strategy)?;
        let node = PlanNode::new(
            PlanOp::Algo(AlgoOp::GroupBy(q.clone(), choice.algorithm)),
            Vec::new(),
            q.output_schema()?,
        );
        let (out, mut report) = run_plan(ctx, &node)?;
        report.predicted = choice.leaf_prediction();
        let kind = PlanKind::GroupBy {
            algorithm: choice.algorithm,
        };
        let mut explain = choice.explain(ctx, kind, strategy);
        explain.operators = Some(report);
        return Ok((apply_limit(out, spec.select.limit), explain));
    }

    // ---- Aggregates without GROUP BY.
    if spec.select.is_aggregate() {
        let choice = match strategy {
            Strategy::Baseline => Choice::fixed("server-side"),
            Strategy::Pushdown => Choice::fixed("s3-side"),
            Strategy::Adaptive => {
                Choice::adaptive(ctx, Estimator::new(ctx, table).aggregate(&spec.select)?)
            }
        };
        let node = PlanNode::new(
            PlanOp::Algo(AlgoOp::Aggregate(
                table.clone(),
                spec.select.clone(),
                choice.algorithm,
            )),
            Vec::new(),
            table.schema.clone(),
        );
        let (out, mut report) = run_plan(ctx, &node)?;
        report.predicted = choice.leaf_prediction();
        let kind = PlanKind::Aggregate {
            pushdown: choice.algorithm == "s3-side",
        };
        let mut explain = choice.explain(ctx, kind, strategy);
        explain.operators = Some(report);
        return Ok((out, explain));
    }

    // ---- Plain filter/projection → §IV.
    let (q, choice) = filter_choice(ctx, table, spec, strategy)?;
    let node = PlanNode::new(
        PlanOp::Algo(AlgoOp::Filter(q.clone(), choice.algorithm)),
        Vec::new(),
        q.output_schema()?,
    );
    let (out, mut report) = run_plan(ctx, &node)?;
    report.predicted = choice.leaf_prediction();
    let kind = PlanKind::Filter {
        pushdown: choice.algorithm == "s3-side",
    };
    let mut explain = choice.explain(ctx, kind, strategy);
    explain.operators = Some(report);
    Ok((apply_limit(out, spec.select.limit), explain))
}

fn groupby_choice(
    ctx: &QueryContext,
    table: &Table,
    q: &groupby::GroupByQuery,
    strategy: Strategy,
) -> Result<Choice> {
    Ok(match strategy {
        Strategy::Baseline => Choice::fixed("server-side"),
        Strategy::Pushdown => {
            if q.group_cols.len() == 1 {
                Choice::fixed("hybrid")
            } else {
                Choice::fixed("s3-side")
            }
        }
        Strategy::Adaptive => Choice::adaptive(ctx, Estimator::new(ctx, table).groupby(q)?),
    })
}

fn filter_choice(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(filter::FilterQuery, Choice)> {
    let projection = projection_columns(&spec.select)?;
    let q = filter::FilterQuery {
        table: table.clone(),
        predicate: spec
            .select
            .where_clause
            .clone()
            .unwrap_or_else(|| Expr::lit(pushdown_common::Value::Bool(true))),
        projection,
    };
    let choice = match strategy {
        Strategy::Baseline => Choice::fixed("server-side"),
        Strategy::Pushdown => Choice::fixed("s3-side"),
        Strategy::Adaptive => Choice::adaptive(ctx, Estimator::new(ctx, table).filter(&q)?),
    };
    Ok((q, choice))
}

/// Ordered shapes beyond the §VII fast path: GROUP BY + ORDER BY (keys
/// may name grouping columns, aggregate output aliases, or default
/// aggregate names) and multi-key / filtered / projected ORDER BY —
/// lowered to a Sort operator over the matching algorithm-family leaf.
fn sorted_plan_and_run(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    if spec.select.is_aggregate() && spec.group_by.is_empty() {
        return Err(Error::Bind(
            "ORDER BY over a scalar aggregate is not supported".into(),
        ));
    }
    let limit = spec.select.limit.map(|l| l as usize);

    // Alias → output position (aggregate aliases over GROUP BY results,
    // column aliases over projections).
    let mut aliases: Vec<(String, usize)> = Vec::new();
    let (leaf, choice, kind, sort_schema) = if !spec.group_by.is_empty() {
        let q = groupby_query(table, spec)?;
        let choice = groupby_choice(ctx, table, &q, strategy)?;
        let schema = q.output_schema()?;
        let mut agg_idx = 0;
        for item in &spec.select.items {
            if let SelectItem::Agg { alias, .. } = item {
                if let Some(a) = alias {
                    aliases.push((a.clone(), q.group_cols.len() + agg_idx));
                }
                agg_idx += 1;
            }
        }
        let kind = PlanKind::GroupBy {
            algorithm: choice.algorithm,
        };
        let node = PlanNode::new(
            PlanOp::Algo(AlgoOp::GroupBy(q, choice.algorithm)),
            Vec::new(),
            schema.clone(),
        );
        (node, choice, kind, schema)
    } else {
        let (q, choice) = filter_choice(ctx, table, spec, strategy)?;
        let schema = q.output_schema()?;
        for (i, item) in spec.select.items.iter().enumerate() {
            if let SelectItem::Expr { alias: Some(a), .. } = item {
                aliases.push((a.clone(), i));
            }
        }
        let kind = PlanKind::Filter {
            pushdown: choice.algorithm == "s3-side",
        };
        let node = PlanNode::new(
            PlanOp::Algo(AlgoOp::Filter(q, choice.algorithm)),
            Vec::new(),
            schema.clone(),
        );
        (node, choice, kind, schema)
    };

    let mut keys = Vec::new();
    for o in &spec.order_by {
        let idx = aliases
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(&o.column))
            .map(|(_, i)| *i)
            .or_else(|| sort_schema.index_of(&o.column));
        let Some(idx) = idx else {
            return Err(Error::Bind(format!(
                "unknown ORDER BY key `{}` (output columns: {}{})",
                o.column,
                sort_schema.names().join(", "),
                if aliases.is_empty() {
                    String::new()
                } else {
                    format!(
                        "; aliases: {}",
                        aliases
                            .iter()
                            .map(|(a, _)| a.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            )));
        };
        keys.push((idx, o.asc));
    }

    let plan = PlanNode::new(PlanOp::Sort { keys, limit }, vec![leaf], sort_schema);
    let (out, mut report) = run_plan(ctx, &plan)?;
    report.children[0].predicted = choice.leaf_prediction();
    let mut explain = choice.explain(ctx, kind, strategy);
    explain.operators = Some(report);
    Ok((out, explain))
}

/// Multi-table queries: lower to candidate plans (join strategy ×
/// per-scan pushdown chosen jointly), price each whole plan with
/// [`cost::predict_plan`], execute the pick, and report the operator
/// tree with per-node predicted-vs-actual.
fn joined_plan_and_run(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    let candidates = crate::joinplan::lower_join_candidates(ctx, table, spec)?;
    let position = |name: &str| candidates.iter().position(|(n, _)| *n == name);
    // Fixed strategies pick by name and only price the plan they run;
    // Adaptive prices every candidate tree and takes the argmin.
    let (pick, mut predictions) = match strategy {
        Strategy::Baseline => (
            position("baseline").expect("baseline candidate always exists"),
            Vec::new(),
        ),
        Strategy::Pushdown => (
            position("bloom")
                .or_else(|| position("filtered"))
                .expect("filtered candidate always exists"),
            Vec::new(),
        ),
        Strategy::Adaptive => {
            let predictions: Vec<cost::PlanPrediction> = candidates
                .iter()
                .map(|(_, plan)| cost::predict_plan(ctx, plan))
                .collect();
            let estimates: Vec<PlanEstimate> = candidates
                .iter()
                .zip(&predictions)
                .map(|((name, _), p)| PlanEstimate {
                    algorithm: name,
                    predicted: p.metrics.clone(),
                })
                .collect();
            (cost::cheapest(&estimates, ctx), predictions)
        }
    };
    let (algorithm, plan) = &candidates[pick];
    let adaptive = !predictions.is_empty();
    let mut candidate_costs: Vec<CandidateCost> = candidates
        .iter()
        .zip(&predictions)
        .enumerate()
        .map(|(i, ((name, _), p))| {
            let est = PlanEstimate {
                algorithm: name,
                predicted: p.metrics.clone(),
            };
            CandidateCost {
                algorithm: name,
                usage: est.usage(),
                runtime: est.runtime(ctx),
                dollars: est.dollars(ctx),
                chosen: i == pick,
            }
        })
        .collect();
    let mut prediction = if adaptive {
        predictions.swap_remove(pick)
    } else {
        cost::predict_plan(ctx, plan)
    };
    // Cluster lowering: rewrite the picked plan's scan leaves into
    // Gather/Exchange fan-outs across the nodes owning their partitions.
    // Fixed strategies always use the cluster they were given; Adaptive
    // prices the scattered plan the way a reserved cluster bills
    // (compute on every node for the query's wall time, scans against
    // each node's own cache slice) and scatters only when that beats
    // the serial pick in dollars.
    let mut scattered: Option<PlanNode> = None;
    if let Some(cluster) = ctx.cluster.as_ref().filter(|c| c.n() > 1) {
        let cand = plan::scatter(ctx, plan);
        let scat_pred = cost::predict_plan(ctx, &cand);
        let scat_dollars = cost::scatter_dollars(ctx, &scat_pred, cluster.n());
        let use_scatter = match strategy {
            Strategy::Baseline | Strategy::Pushdown => true,
            Strategy::Adaptive => {
                let serial = PlanEstimate {
                    algorithm,
                    predicted: prediction.metrics.clone(),
                }
                .dollars(ctx);
                scat_dollars < serial
            }
        };
        if adaptive {
            if use_scatter {
                for c in candidate_costs.iter_mut() {
                    c.chosen = false;
                }
            }
            candidate_costs.push(CandidateCost {
                algorithm: "scattered",
                usage: scat_pred.metrics.usage(),
                runtime: scat_pred.metrics.runtime(&ctx.model),
                dollars: scat_dollars,
                chosen: use_scatter,
            });
        }
        if use_scatter {
            prediction = scat_pred;
            scattered = Some(cand);
        }
    }
    let plan = scattered.as_ref().unwrap_or(plan);
    let executed = plan::execute(ctx, plan)?;
    let mut report = executed.report.clone();
    plan::annotate(&mut report, &prediction.root);
    let explain = Explain {
        kind: PlanKind::Join { algorithm },
        strategy,
        candidates: candidate_costs,
        // Scattered runs always carry the prediction (whatever the
        // strategy) so cluster calibration can compare it to the ledger.
        predicted: (adaptive || scattered.is_some()).then(|| prediction.metrics.clone()),
        operators: Some(report),
    };
    Ok((executed.into_output(), explain))
}

/// Extract a plain-column projection list (None for `*`).
fn projection_columns(stmt: &SelectStmt) -> Result<Option<Vec<String>>> {
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard]) {
        return Ok(None);
    }
    let mut cols = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Expr {
                expr: Expr::Column(name),
                ..
            } => cols.push(name.clone()),
            other => {
                return Err(Error::Bind(format!(
                    "this planner projects plain columns only, found `{other}`"
                )))
            }
        }
    }
    Ok(Some(cols))
}

/// Convert a GROUP BY spec into a [`groupby::GroupByQuery`]: scalar items
/// must be the grouping columns; aggregate arguments must be plain
/// columns.
fn groupby_query(table: &Table, spec: &QuerySpec) -> Result<groupby::GroupByQuery> {
    let mut aggs: Vec<(AggFunc, String)> = Vec::new();
    for item in &spec.select.items {
        match item {
            SelectItem::Expr {
                expr: Expr::Column(name),
                ..
            } => {
                if !spec.group_by.iter().any(|g| g.eq_ignore_ascii_case(name)) {
                    return Err(Error::Bind(format!(
                        "column `{name}` must appear in GROUP BY"
                    )));
                }
            }
            SelectItem::Agg { func, arg, .. } => match arg {
                Some(Expr::Column(c)) => aggs.push((*func, c.clone())),
                None if *func == AggFunc::Count => {
                    // COUNT(*) counts any non-null column; the grouping
                    // column itself works (groups have non-null keys here).
                    aggs.push((AggFunc::Count, spec.group_by[0].clone()));
                }
                other => {
                    return Err(Error::Bind(format!(
                        "aggregate arguments must be plain columns, found {other:?}"
                    )))
                }
            },
            other => {
                return Err(Error::Bind(format!(
                    "GROUP BY select items must be grouping columns or aggregates, \
                     found `{other}`"
                )))
            }
        }
    }
    Ok(groupby::GroupByQuery {
        table: table.clone(),
        group_cols: spec.group_by.clone(),
        aggs,
        predicate: spec.select.where_clause.clone(),
    })
}

fn apply_limit(mut out: QueryOutput, limit: Option<u64>) -> QueryOutput {
    if let Some(l) = limit {
        out.rows.truncate(l as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::{DataType, Row, Schema, Value};
    use pushdown_s3::S3Store;

    fn setup() -> (QueryContext, Table) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("v", DataType::Float),
            ("s", DataType::Str),
        ]);
        let rows: Vec<Row> = (0..1_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i % 7) as i64),
                    Value::Float((i as f64 * 3.7) % 101.0),
                    Value::Str(format!("name-{i}")),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 300).unwrap();
        (QueryContext::new(store), t)
    }

    fn both(ctx: &QueryContext, t: &Table, sql: &str) -> (QueryOutput, QueryOutput) {
        (
            execute_sql(ctx, t, sql, Strategy::Baseline).unwrap(),
            execute_sql(ctx, t, sql, Strategy::Pushdown).unwrap(),
        )
    }

    fn assert_close(a: &QueryOutput, b: &QueryOutput, what: &str) {
        assert_eq!(a.rows.len(), b.rows.len(), "{what}");
        for (x, y) in a.rows.iter().zip(&b.rows) {
            for (vx, vy) in x.values().iter().zip(y.values()) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() < 1e-6 * (1.0 + fx.abs()), "{what}")
                    }
                    _ => assert_eq!(vx, vy, "{what}"),
                }
            }
        }
    }

    #[test]
    fn filter_queries_route_to_filter_algorithms() {
        let (ctx, t) = setup();
        let sql = "SELECT g, v FROM t WHERE v < 10 AND g = 3";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::Filter { pushdown: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::Filter { pushdown: true });
        assert_close(&base, &push, sql);
        assert!(!base.rows.is_empty());
        assert_eq!(base.schema.names(), vec!["g", "v"]);
    }

    #[test]
    fn select_star_and_limit() {
        let (ctx, t) = setup();
        let (base, push) = both(&ctx, &t, "SELECT * FROM t WHERE g = 1 LIMIT 5");
        assert_eq!(base.rows.len(), 5);
        assert_close(&base, &push, "limit");
    }

    #[test]
    fn no_where_clause_means_full_scan() {
        let (ctx, t) = setup();
        let (base, push) = both(&ctx, &t, "SELECT s FROM t");
        assert_eq!(base.rows.len(), 1_000);
        assert_close(&base, &push, "full scan");
    }

    #[test]
    fn aggregates_route_to_aggregation() {
        let (ctx, t) = setup();
        let sql = "SELECT SUM(v), COUNT(*), AVG(v), MIN(g), MAX(g) FROM t WHERE g <> 2";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::Aggregate { pushdown: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::Aggregate { pushdown: true });
        assert_close(&base, &push, sql);
        // Pushdown ships almost nothing back.
        assert!(push.metrics.bytes_returned() < base.metrics.bytes_returned() / 100);
    }

    #[test]
    fn group_by_routes_to_groupby_algorithms() {
        let (ctx, t) = setup();
        let sql = "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(
            kind,
            PlanKind::GroupBy {
                algorithm: "server-side"
            }
        );
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(
            kind,
            PlanKind::GroupBy {
                algorithm: "hybrid"
            }
        );
        assert_eq!(base.rows.len(), 7);
        assert_close(&base, &push, sql);
    }

    #[test]
    fn order_by_limit_routes_to_topk() {
        let (ctx, t) = setup();
        let sql = "SELECT * FROM t ORDER BY v DESC LIMIT 12";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::TopK { sampling: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::TopK { sampling: true });
        assert_eq!(base.rows.len(), 12);
        for (a, b) in base.rows.iter().zip(&push.rows) {
            assert_eq!(a[1], b[1]);
        }
        // Descending.
        assert!(base.rows[0][1].total_cmp(&base.rows[11][1]).is_ge());
    }

    #[test]
    fn unsupported_shapes_are_rejected_cleanly() {
        let (ctx, t) = setup();
        for sql in [
            "SELECT v + 1 FROM t",                      // computed projection
            "SELECT s, SUM(v) FROM t GROUP BY g",       // non-grouped column
            "SELECT SUM(v) FROM t ORDER BY v LIMIT 1",  // ordering one scalar row
            "SELECT * FROM t ORDER BY nope LIMIT 5",    // unknown sort key
            "SELECT g FROM t ORDER BY v, nope LIMIT 5", // unknown second key
            "SELECT * FROM t JOIN u ON g = g",          // unknown join table
        ] {
            let err = execute_sql(&ctx, &t, sql, Strategy::Pushdown);
            assert!(err.is_err(), "{sql} should be rejected");
        }
    }

    #[test]
    fn sorted_shapes_beyond_topk_are_planned() {
        let (ctx, t) = setup();
        // ORDER BY without LIMIT: full sort.
        for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
            let out = execute_sql(&ctx, &t, "SELECT * FROM t ORDER BY v", strategy).unwrap();
            assert_eq!(out.rows.len(), 1_000);
            for w in out.rows.windows(2) {
                assert!(w[0][1].total_cmp(&w[1][1]).is_le());
            }
        }
        // Projected + filtered multi-key ORDER BY with LIMIT.
        let sql = "SELECT g, v FROM t WHERE v < 50 ORDER BY g DESC, v ASC LIMIT 9";
        let base = execute_sql(&ctx, &t, sql, Strategy::Baseline).unwrap();
        let push = execute_sql(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(base.rows.len(), 9);
        assert_close(&base, &push, sql);
        for w in base.rows.windows(2) {
            let major = w[0][0].total_cmp(&w[1][0]);
            assert!(major.is_ge());
            if major == std::cmp::Ordering::Equal {
                assert!(w[0][1].total_cmp(&w[1][1]).is_le());
            }
        }
    }

    #[test]
    fn group_by_with_order_by_alias_sorts_results() {
        let (ctx, t) = setup();
        let sql = "SELECT g, SUM(v) AS total FROM t GROUP BY g ORDER BY total DESC LIMIT 3";
        for strategy in [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive] {
            let (out, ex) = execute_sql_verbose(&ctx, &t, sql, strategy).unwrap();
            assert!(matches!(ex.kind, PlanKind::GroupBy { .. }));
            assert_eq!(out.rows.len(), 3);
            for w in out.rows.windows(2) {
                assert!(w[0][1].total_cmp(&w[1][1]).is_ge(), "{strategy:?}");
            }
            // The operator tree shows the Sort over the group-by leaf.
            let report = ex.report(&out, &ctx);
            assert!(report.contains("TopK[1 keys, limit 3]"), "{report}");
            assert!(report.contains("GroupBy["), "{report}");
        }
        // Ordering by the group column also works (name, not alias).
        let by_g = execute_sql(
            &ctx,
            &t,
            "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g DESC LIMIT 2",
            Strategy::Adaptive,
        )
        .unwrap();
        assert!(by_g.rows[0][0].total_cmp(&by_g.rows[1][0]).is_ge());
    }

    const ALL_SHAPES: [&str; 5] = [
        "SELECT g, v FROM t WHERE v < 10 AND g = 3",
        "SELECT s FROM t",
        "SELECT SUM(v), COUNT(*), AVG(v) FROM t WHERE g <> 2",
        "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g",
        "SELECT * FROM t ORDER BY v DESC LIMIT 12",
    ];

    #[test]
    fn adaptive_agrees_with_baseline_on_every_shape() {
        let (ctx, t) = setup();
        for sql in ALL_SHAPES {
            let base = execute_sql(&ctx, &t, sql, Strategy::Baseline).unwrap();
            let adapt = execute_sql(&ctx, &t, sql, Strategy::Adaptive).unwrap();
            assert_close(&base, &adapt, sql);
        }
    }

    #[test]
    fn adaptive_never_costs_measurably_more_than_either_fixed_strategy() {
        let (ctx, t) = setup();
        for sql in ALL_SHAPES {
            let costs: Vec<f64> = [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive]
                .into_iter()
                .map(|s| {
                    execute_sql(&ctx, &t, sql, s)
                        .unwrap()
                        .metrics
                        .cost(&ctx.model, &ctx.pricing)
                        .total()
                })
                .collect();
            let min_fixed = costs[0].min(costs[1]);
            assert!(
                costs[2] <= min_fixed * 1.10,
                "{sql}: adaptive ${:.6} vs min(fixed) ${min_fixed:.6}",
                costs[2]
            );
        }
    }

    #[test]
    fn adaptive_explain_reports_candidates_and_prediction() {
        let (ctx, t) = setup();
        let sql = "SELECT g, v FROM t WHERE v < 10";
        let (out, ex) = execute_sql_verbose(&ctx, &t, sql, Strategy::Adaptive).unwrap();
        assert!(matches!(ex.kind, PlanKind::Filter { .. }));
        assert_eq!(ex.strategy, Strategy::Adaptive);
        assert_eq!(ex.candidates.len(), 2);
        assert_eq!(ex.candidates.iter().filter(|c| c.chosen).count(), 1);
        let chosen = ex.candidates.iter().find(|c| c.chosen).unwrap();
        for c in &ex.candidates {
            assert!(chosen.dollars <= c.dollars, "chosen plan is the argmin");
            assert!(c.dollars > 0.0 && c.runtime > 0.0);
        }
        let predicted = ex
            .predicted
            .as_ref()
            .expect("adaptive carries a prediction");
        assert!(!predicted.groups.is_empty());
        // The report renders candidates and the predicted-vs-actual table.
        let report = ex.report(&out, &ctx);
        assert!(report.contains("candidates:"), "{report}");
        assert!(report.contains("predicted"), "{report}");
        assert!(report.contains("actual"), "{report}");
        // Fixed strategies consider nothing and predict nothing.
        let (_, fixed) = execute_sql_verbose(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert!(fixed.candidates.is_empty());
        assert!(fixed.predicted.is_none());
        assert!(!fixed.report(&out, &ctx).contains("candidates:"));
    }

    #[test]
    fn adaptive_groupby_may_choose_beyond_the_paper_lineup() {
        // The adaptive planner considers `filtered` — a variant the fixed
        // Pushdown strategy never picks. Whatever it chooses must agree
        // with the baseline answer.
        let (ctx, t) = setup();
        let sql = "SELECT g, SUM(v) FROM t WHERE v < 50 GROUP BY g";
        let (out, ex) = execute_sql_verbose(&ctx, &t, sql, Strategy::Adaptive).unwrap();
        let PlanKind::GroupBy { algorithm } = ex.kind else {
            panic!("expected a group-by plan")
        };
        assert!(
            ["server-side", "filtered", "s3-side", "hybrid"].contains(&algorithm),
            "{algorithm}"
        );
        assert_eq!(ex.candidates.len(), 4, "all four §VI families considered");
        let base = execute_sql(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_close(&base, &out, sql);
    }

    fn join_setup() -> (QueryContext, Table) {
        let store = S3Store::new();
        let dim_schema = Schema::from_pairs(&[("k", DataType::Int), ("tag", DataType::Str)]);
        let dims: Vec<Row> = (0..20)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("tag-{}", i % 4))]))
            .collect();
        let fact_schema = Schema::from_pairs(&[("fk", DataType::Int), ("val", DataType::Float)]);
        let facts: Vec<Row> = (0..600)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i % 25) as i64), // some fks have no dim row
                    Value::Float((i as f64 * 7.3) % 90.0),
                ])
            })
            .collect();
        let dim = upload_csv_table(&store, "b", "dim", &dim_schema, &dims, 8).unwrap();
        let fact = upload_csv_table(&store, "b", "fact", &fact_schema, &facts, 150).unwrap();
        let ctx = QueryContext::new(store).with_tables([dim]);
        (ctx, fact)
    }

    #[test]
    fn joined_queries_plan_and_execute_under_every_strategy() {
        let (ctx, fact) = join_setup();
        let sql = "SELECT tag, COUNT(*) AS n, SUM(val) AS total FROM fact \
                   JOIN dim ON fk = k WHERE val < 60 GROUP BY tag \
                   ORDER BY total DESC, tag LIMIT 3";
        let base = execute_sql(&ctx, &fact, sql, Strategy::Baseline).unwrap();
        assert_eq!(base.rows.len(), 3);
        assert_eq!(base.schema.names(), vec!["tag", "n", "total"]);
        for strategy in [Strategy::Pushdown, Strategy::Adaptive] {
            let (out, ex) = execute_sql_verbose(&ctx, &fact, sql, strategy).unwrap();
            assert_close(&base, &out, sql);
            assert!(matches!(ex.kind, PlanKind::Join { .. }), "{:?}", ex.kind);
            // The operator tree renders scans, the join and the sort,
            // with predictions attached.
            let report = ex.report(&out, &ctx);
            assert!(report.contains("operators"), "{report}");
            assert!(report.contains("Join["), "{report}");
            assert!(report.contains("Scan["), "{report}");
            assert!(report.contains("predicted"), "{report}");
        }
        // Adaptive weighs the joint join × scan-mode candidate space.
        let (_, ex) = execute_sql_verbose(&ctx, &fact, sql, Strategy::Adaptive).unwrap();
        let names: Vec<&str> = ex.candidates.iter().map(|c| c.algorithm).collect();
        assert!(names.contains(&"baseline"), "{names:?}");
        assert!(names.contains(&"filtered"), "{names:?}");
        assert!(names.contains(&"bloom"), "{names:?}");
        assert!(names.contains(&"build-push"), "{names:?}");
        assert!(names.contains(&"probe-push"), "{names:?}");
        assert_eq!(ex.candidates.iter().filter(|c| c.chosen).count(), 1);
    }

    #[test]
    fn joined_scalar_aggregate_and_projection_shapes() {
        let (ctx, fact) = join_setup();
        // Scalar aggregate over the join (the paper's Listing 2 shape).
        let sum = execute_sql(
            &ctx,
            &fact,
            "SELECT SUM(val) FROM fact JOIN dim ON fk = k",
            Strategy::Adaptive,
        )
        .unwrap();
        assert_eq!(sum.rows.len(), 1);
        let base = execute_sql(
            &ctx,
            &fact,
            "SELECT SUM(val) FROM fact JOIN dim ON fk = k",
            Strategy::Baseline,
        )
        .unwrap();
        assert_close(&base, &sum, "join sum");
        // Plain projection with LIMIT.
        let rows = execute_sql(
            &ctx,
            &fact,
            "SELECT tag, val FROM fact JOIN dim ON fk = k LIMIT 7",
            Strategy::Pushdown,
        )
        .unwrap();
        assert_eq!(rows.rows.len(), 7);
        assert_eq!(rows.schema.names(), vec!["tag", "val"]);
    }

    #[test]
    fn joined_queries_bind_errors() {
        let (ctx, fact) = join_setup();
        for (sql, needle) in [
            (
                "SELECT * FROM fact JOIN ghost ON fk = k",
                "unknown table `ghost`",
            ),
            (
                "SELECT * FROM fact JOIN dim ON fk = nope",
                "unknown column `nope`",
            ),
            (
                "SELECT * FROM fact JOIN dim ON fk = val",
                "must compare a column",
            ),
            (
                "SELECT tag, SUM(val) FROM fact JOIN dim ON fk = k \
                 GROUP BY tag ORDER BY missing",
                "unknown ORDER BY key",
            ),
        ] {
            let err = execute_sql(&ctx, &fact, sql, Strategy::Baseline).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{sql}: expected `{needle}` in `{err}`"
            );
        }
    }

    #[test]
    fn plan_kind_display() {
        assert_eq!(
            PlanKind::Filter { pushdown: true }.to_string(),
            "Filter[s3-side]"
        );
        assert_eq!(
            PlanKind::GroupBy {
                algorithm: "hybrid"
            }
            .to_string(),
            "GroupBy[hybrid]"
        );
        assert_eq!(
            PlanKind::TopK { sampling: true }.to_string(),
            "TopK[sampling]"
        );
    }
}
