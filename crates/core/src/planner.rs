//! The optimizer (paper §III, grown a cost-based mode).
//!
//! PushdownDB's testbed exposes a single-table SQL front-end and decides
//! *which algorithm family* evaluates each query. The paper takes that
//! choice as an explicit input — "dynamically determining which
//! optimization to use is orthogonal to and beyond the scope of this
//! paper" (§VIII): [`Strategy::Baseline`] never pushes computation,
//! [`Strategy::Pushdown`] always uses the paper's pushdown variant of
//! the matching operator. [`Strategy::Adaptive`] goes beyond the paper:
//! it enumerates *every* applicable algorithm family, predicts each
//! candidate's [`Usage`] and runtime analytically from catalog
//! statistics ([`crate::cost`]), and executes the cheapest by predicted
//! dollars. [`execute_sql_verbose`] returns the [`Explain`] surface —
//! the candidates considered, the prediction for the chosen plan, and a
//! predicted-vs-actual report per phase.
//!
//! Shapes handled (one table, as in the paper's testbed):
//!
//! * plain filter/projection → §IV filter strategies;
//! * aggregates without GROUP BY → local vs S3-side aggregation (§VIII Q6);
//! * GROUP BY → §VI group-by algorithms (adaptive additionally considers
//!   the filtered variant, and §X's native group-by when the extended
//!   engine is enabled);
//! * ORDER BY … LIMIT k → §VII top-K algorithms.

use crate::algos::{filter, groupby, topk, whatif};
use crate::catalog::Table;
use crate::context::QueryContext;
use crate::cost::{self, Estimator, PlanEstimate};
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{self, select_scan};
use pushdown_common::pricing::Usage;
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::QuerySpec;
use pushdown_sql::bind::Binder;
use pushdown_sql::parser::parse_query;
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// Whether the planner may push computation into S3 Select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Load whole tables with plain GETs; compute everything locally.
    Baseline,
    /// Use the paper's pushdown algorithm for the query's operator family.
    Pushdown,
    /// Cost-based: predict every candidate's footprint from catalog
    /// statistics and execute the argmin-dollar plan.
    Adaptive,
}

/// What the planner decided (for EXPLAIN-style output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanKind {
    Filter { pushdown: bool },
    Aggregate { pushdown: bool },
    GroupBy { algorithm: &'static str },
    TopK { sampling: bool },
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanKind::Filter { pushdown } => {
                write!(
                    f,
                    "Filter[{}]",
                    if *pushdown { "s3-side" } else { "server-side" }
                )
            }
            PlanKind::Aggregate { pushdown } => {
                write!(
                    f,
                    "Aggregate[{}]",
                    if *pushdown { "s3-side" } else { "server-side" }
                )
            }
            PlanKind::GroupBy { algorithm } => write!(f, "GroupBy[{algorithm}]"),
            PlanKind::TopK { sampling } => {
                write!(
                    f,
                    "TopK[{}]",
                    if *sampling { "sampling" } else { "server-side" }
                )
            }
        }
    }
}

/// Cost prediction for one candidate the optimizer considered
/// (Adaptive only).
#[derive(Debug, Clone)]
pub struct CandidateCost {
    pub algorithm: &'static str,
    /// Predicted billable usage.
    pub usage: Usage,
    /// Predicted runtime, seconds.
    pub runtime: f64,
    /// Predicted total dollars (the selection objective).
    pub dollars: f64,
    pub chosen: bool,
}

/// The planner's EXPLAIN surface: what was chosen, and — under
/// [`Strategy::Adaptive`] — every candidate's predicted cost plus the
/// phase-structured prediction for the executed plan.
#[derive(Debug, Clone)]
pub struct Explain {
    pub kind: PlanKind,
    pub strategy: Strategy,
    /// Candidates considered, cheapest marked (empty for the fixed
    /// strategies, which consider nothing).
    pub candidates: Vec<CandidateCost>,
    /// Predicted metrics of the executed plan (Adaptive only).
    pub predicted: Option<QueryMetrics>,
}

impl Explain {
    /// EXPLAIN ANALYZE-style text: the chosen plan, each candidate's
    /// predicted cost, and predicted-vs-actual resource use per phase.
    pub fn report(&self, out: &QueryOutput, ctx: &QueryContext) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "plan: {}  (strategy: {:?})", self.kind, self.strategy);
        if !self.candidates.is_empty() {
            let _ = writeln!(s, "candidates:");
            for c in &self.candidates {
                let _ = writeln!(
                    s,
                    "  {} {:<12} predicted ${:.6}  {:.2}s  ({} req, {} scanned, {} returned, {} plain)",
                    if c.chosen { "*" } else { " " },
                    c.algorithm,
                    c.dollars,
                    c.runtime,
                    c.usage.requests,
                    c.usage.select_scanned_bytes,
                    c.usage.select_returned_bytes,
                    c.usage.plain_bytes,
                );
            }
        }
        if let Some(predicted) = &self.predicted {
            let _ = writeln!(s, "phases (predicted vs actual):");
            for (i, actual) in out.metrics.groups.iter().enumerate() {
                let label = actual
                    .phases
                    .first()
                    .map(|p| p.label.as_str())
                    .unwrap_or("?");
                let a_secs = actual.seconds(&ctx.model);
                match predicted.groups.get(i) {
                    Some(pred) => {
                        let _ = writeln!(
                            s,
                            "  {label}: predicted {:.2}s vs actual {a_secs:.2}s",
                            pred.seconds(&ctx.model),
                        );
                    }
                    None => {
                        let _ = writeln!(s, "  {label}: (unpredicted) actual {a_secs:.2}s");
                    }
                }
            }
            let pu = predicted.usage();
            let au = out.metrics.usage();
            let _ = writeln!(
                s,
                "usage: predicted {} req / {} scanned / {} returned / {} plain\n\
                 usage: actual    {} req / {} scanned / {} returned / {} plain",
                pu.requests,
                pu.select_scanned_bytes,
                pu.select_returned_bytes,
                pu.plain_bytes,
                au.requests,
                au.select_scanned_bytes,
                au.select_returned_bytes,
                au.plain_bytes,
            );
            let _ = writeln!(
                s,
                "cost: predicted ${:.6} vs actual ${:.6}",
                predicted.cost(&ctx.model, &ctx.pricing).total(),
                out.metrics.cost(&ctx.model, &ctx.pricing).total(),
            );
        }
        // The per-query child ledger — what AWS would bill this query,
        // exact even with other queries running concurrently.
        let b = out.billed;
        let _ = writeln!(
            s,
            "ledger: billed   {} req / {} scanned / {} returned / {} plain (${:.6})",
            b.requests,
            b.select_scanned_bytes,
            b.select_returned_bytes,
            b.plain_bytes,
            out.billed_cost(ctx).total(),
        );
        s
    }
}

/// How one operator family resolved: which algorithm runs, and (under
/// Adaptive) the full candidate list backing the decision.
struct Choice {
    algorithm: &'static str,
    candidates: Vec<PlanEstimate>,
    chosen: Option<usize>,
}

impl Choice {
    /// A fixed strategy: no candidates were weighed.
    fn fixed(algorithm: &'static str) -> Choice {
        Choice {
            algorithm,
            candidates: Vec::new(),
            chosen: None,
        }
    }

    /// Adaptive: pick the cheapest predicted candidate.
    fn adaptive(ctx: &QueryContext, candidates: Vec<PlanEstimate>) -> Choice {
        let i = cost::cheapest(&candidates, ctx);
        Choice {
            algorithm: candidates[i].algorithm,
            candidates,
            chosen: Some(i),
        }
    }

    fn explain(&self, ctx: &QueryContext, kind: PlanKind, strategy: Strategy) -> Explain {
        Explain {
            kind,
            strategy,
            candidates: self
                .candidates
                .iter()
                .enumerate()
                .map(|(i, c)| CandidateCost {
                    algorithm: c.algorithm,
                    usage: c.usage(),
                    runtime: c.runtime(ctx),
                    dollars: c.dollars(ctx),
                    chosen: Some(i) == self.chosen,
                })
                .collect(),
            predicted: self.chosen.map(|i| self.candidates[i].predicted.clone()),
        }
    }
}

/// Parse and execute a client-dialect SQL query against one table.
pub fn execute_sql(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<QueryOutput> {
    let (out, _) = execute_sql_verbose(ctx, table, sql, strategy)?;
    Ok(out)
}

/// Like [`execute_sql`], also reporting which plan the optimizer chose.
pub fn execute_sql_explained(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<(QueryOutput, PlanKind)> {
    let (out, explain) = execute_sql_verbose(ctx, table, sql, strategy)?;
    Ok((out, explain.kind))
}

/// Like [`execute_sql`], returning the full [`Explain`] surface —
/// candidate predictions and the predicted-vs-actual breakdown under
/// [`Strategy::Adaptive`].
pub fn execute_sql_verbose(
    ctx: &QueryContext,
    table: &Table,
    sql: &str,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    let spec = parse_query(sql)?;
    plan_and_run(ctx, table, &spec, strategy)
}

fn plan_and_run(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    // One scope per query: everything below — estimator probes, the
    // chosen algorithm, planner-level scans — bills a child ledger that
    // rolls up into the store-global one, so `QueryOutput::billed` is
    // exact even when many queries share this context concurrently.
    let ctx = &ctx.scoped();
    let (mut out, explain) = plan_and_run_scoped(ctx, table, spec, strategy)?;
    out.billed = ctx.billed();
    Ok((out, explain))
}

fn plan_and_run_scoped(
    ctx: &QueryContext,
    table: &Table,
    spec: &QuerySpec,
    strategy: Strategy,
) -> Result<(QueryOutput, Explain)> {
    // ---- ORDER BY ... LIMIT k → top-K (§VII).
    if let Some(order) = &spec.order_by {
        if !spec.group_by.is_empty() {
            return Err(Error::Bind(
                "ORDER BY over GROUP BY results is not supported by this planner".into(),
            ));
        }
        let Some(k) = spec.select.limit else {
            return Err(Error::Bind(
                "ORDER BY requires a LIMIT (top-K is the supported shape)".into(),
            ));
        };
        if !matches!(spec.select.items.as_slice(), [SelectItem::Wildcard]) {
            return Err(Error::Bind(
                "top-K queries must project `*` in this planner".into(),
            ));
        }
        if spec.select.where_clause.is_some() {
            return Err(Error::Bind(
                "top-K with a WHERE clause is not supported by this planner".into(),
            ));
        }
        let q = topk::TopKQuery {
            table: table.clone(),
            order_col: order.column.clone(),
            k: k as usize,
            asc: order.asc,
        };
        let choice = match strategy {
            Strategy::Baseline => Choice::fixed("server-side"),
            Strategy::Pushdown => Choice::fixed("sampling"),
            Strategy::Adaptive => Choice::adaptive(ctx, Estimator::new(ctx, table).topk(&q)),
        };
        let out = match choice.algorithm {
            "sampling" => topk::sampling(ctx, &q, None)?,
            _ => topk::server_side(ctx, &q)?,
        };
        let kind = PlanKind::TopK {
            sampling: choice.algorithm == "sampling",
        };
        let explain = choice.explain(ctx, kind.clone(), strategy);
        return Ok((out, explain));
    }

    // ---- GROUP BY → §VI.
    if !spec.group_by.is_empty() {
        let q = groupby_query(table, spec)?;
        let choice = match strategy {
            Strategy::Baseline => Choice::fixed("server-side"),
            Strategy::Pushdown => {
                if q.group_cols.len() == 1 {
                    Choice::fixed("hybrid")
                } else {
                    Choice::fixed("s3-side")
                }
            }
            Strategy::Adaptive => Choice::adaptive(ctx, Estimator::new(ctx, table).groupby(&q)),
        };
        let out = match choice.algorithm {
            "filtered" => groupby::filtered(ctx, &q)?,
            "s3-side" => groupby::s3_side(ctx, &q)?,
            "hybrid" => groupby::hybrid(ctx, &q, groupby::HybridOptions::default())?,
            "s3-native" => whatif::s3_native_groupby(ctx, &q)?,
            _ => groupby::server_side(ctx, &q)?,
        };
        let kind = PlanKind::GroupBy {
            algorithm: choice.algorithm,
        };
        let explain = choice.explain(ctx, kind.clone(), strategy);
        return Ok((apply_limit(out, spec.select.limit), explain));
    }

    // ---- Aggregates without GROUP BY.
    if spec.select.is_aggregate() {
        let choice = match strategy {
            Strategy::Baseline => Choice::fixed("server-side"),
            Strategy::Pushdown => Choice::fixed("s3-side"),
            Strategy::Adaptive => {
                Choice::adaptive(ctx, Estimator::new(ctx, table).aggregate(&spec.select))
            }
        };
        let out = match choice.algorithm {
            "s3-side" => {
                let ctx = &ctx.scoped();
                let scan = select_scan(ctx, table, &spec.select)?;
                let mut metrics = QueryMetrics::new();
                metrics.push_serial("s3-side aggregation", scan.stats);
                QueryOutput {
                    schema: scan.schema,
                    rows: scan.rows,
                    metrics,
                    billed: ctx.billed(),
                }
            }
            _ => local_aggregate(ctx, table, &spec.select)?,
        };
        let kind = PlanKind::Aggregate {
            pushdown: choice.algorithm == "s3-side",
        };
        let explain = choice.explain(ctx, kind.clone(), strategy);
        return Ok((out, explain));
    }

    // ---- Plain filter/projection → §IV.
    let projection = projection_columns(&spec.select)?;
    let q = filter::FilterQuery {
        table: table.clone(),
        predicate: spec
            .select
            .where_clause
            .clone()
            .unwrap_or_else(|| Expr::lit(Value::Bool(true))),
        projection,
    };
    let choice = match strategy {
        Strategy::Baseline => Choice::fixed("server-side"),
        Strategy::Pushdown => Choice::fixed("s3-side"),
        Strategy::Adaptive => Choice::adaptive(ctx, Estimator::new(ctx, table).filter(&q)),
    };
    let out = match choice.algorithm {
        "s3-side" => filter::s3_side(ctx, &q)?,
        _ => filter::server_side(ctx, &q)?,
    };
    let kind = PlanKind::Filter {
        pushdown: choice.algorithm == "s3-side",
    };
    let explain = choice.explain(ctx, kind.clone(), strategy);
    Ok((apply_limit(out, spec.select.limit), explain))
}

/// Extract a plain-column projection list (None for `*`).
fn projection_columns(stmt: &SelectStmt) -> Result<Option<Vec<String>>> {
    if matches!(stmt.items.as_slice(), [SelectItem::Wildcard]) {
        return Ok(None);
    }
    let mut cols = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Expr {
                expr: Expr::Column(name),
                ..
            } => cols.push(name.clone()),
            other => {
                return Err(Error::Bind(format!(
                    "this planner projects plain columns only, found `{other}`"
                )))
            }
        }
    }
    Ok(Some(cols))
}

/// Convert a GROUP BY spec into a [`groupby::GroupByQuery`]: scalar items
/// must be the grouping columns; aggregate arguments must be plain
/// columns.
fn groupby_query(table: &Table, spec: &QuerySpec) -> Result<groupby::GroupByQuery> {
    let mut aggs: Vec<(AggFunc, String)> = Vec::new();
    for item in &spec.select.items {
        match item {
            SelectItem::Expr {
                expr: Expr::Column(name),
                ..
            } => {
                if !spec.group_by.iter().any(|g| g.eq_ignore_ascii_case(name)) {
                    return Err(Error::Bind(format!(
                        "column `{name}` must appear in GROUP BY"
                    )));
                }
            }
            SelectItem::Agg { func, arg, .. } => match arg {
                Some(Expr::Column(c)) => aggs.push((*func, c.clone())),
                None if *func == AggFunc::Count => {
                    // COUNT(*) counts any non-null column; the grouping
                    // column itself works (groups have non-null keys here).
                    aggs.push((AggFunc::Count, spec.group_by[0].clone()));
                }
                other => {
                    return Err(Error::Bind(format!(
                        "aggregate arguments must be plain columns, found {other:?}"
                    )))
                }
            },
            other => {
                return Err(Error::Bind(format!(
                    "GROUP BY select items must be grouping columns or aggregates, \
                     found `{other}`"
                )))
            }
        }
    }
    Ok(groupby::GroupByQuery {
        table: table.clone(),
        group_cols: spec.group_by.clone(),
        aggs,
        predicate: spec.select.where_clause.clone(),
    })
}

/// Baseline scalar aggregation: full load, evaluate aggregate items
/// locally — streamed. Scan batches fold straight into the accumulators;
/// only the accumulators are resident.
fn local_aggregate(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<QueryOutput> {
    let ctx = &ctx.scoped();
    let binder = Binder::new(&table.schema);
    let pred = match &stmt.where_clause {
        Some(w) => Some(binder.bind_expr(w)?),
        None => None,
    };
    let mut accs = Vec::new();
    let mut fields = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Agg { func, arg, alias } = item else {
            return Err(Error::Bind(
                "aggregate query cannot contain scalar items".into(),
            ));
        };
        let bound = match arg {
            Some(e) => Some(binder.bind_expr(e)?),
            None => None,
        };
        let dtype = match func {
            AggFunc::Count => pushdown_common::DataType::Int,
            AggFunc::Avg => pushdown_common::DataType::Float,
            _ => bound
                .as_ref()
                .map(|e| e.infer_type())
                .unwrap_or(pushdown_common::DataType::Float),
        };
        fields.push(pushdown_common::Field::new(
            alias.clone().unwrap_or_else(|| format!("_{}", i + 1)),
            dtype,
        ));
        accs.push((func.accumulator(), bound));
    }
    let mut op_stats = pushdown_common::perf::PhaseStats::default();
    let summary = scan::plain_scan_streamed(ctx, table, |batch| {
        let rows = match &pred {
            Some(p) => ops::filter_rows(batch.rows, p, &mut op_stats)?,
            None => batch.rows,
        };
        op_stats.server_cpu_units += rows.len() as u64 * accs.len() as u64;
        for r in &rows {
            for (acc, arg) in accs.iter_mut() {
                match arg {
                    Some(e) => acc.update(&pushdown_sql::eval::eval(e, r)?)?,
                    None => acc.update(&Value::Bool(true))?,
                }
            }
        }
        Ok(())
    })?;
    let row = Row::new(accs.iter().map(|(a, _)| a.finish()).collect());
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side aggregation", stats);
    Ok(QueryOutput {
        schema: Schema::new(fields),
        rows: vec![row],
        metrics,
        billed: ctx.billed(),
    })
}

fn apply_limit(mut out: QueryOutput, limit: Option<u64>) -> QueryOutput {
    if let Some(l) = limit {
        out.rows.truncate(l as usize);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::DataType;
    use pushdown_s3::S3Store;

    fn setup() -> (QueryContext, Table) {
        let store = S3Store::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("v", DataType::Float),
            ("s", DataType::Str),
        ]);
        let rows: Vec<Row> = (0..1_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i % 7) as i64),
                    Value::Float((i as f64 * 3.7) % 101.0),
                    Value::Str(format!("name-{i}")),
                ])
            })
            .collect();
        let t = upload_csv_table(&store, "b", "t", &schema, &rows, 300).unwrap();
        (QueryContext::new(store), t)
    }

    fn both(ctx: &QueryContext, t: &Table, sql: &str) -> (QueryOutput, QueryOutput) {
        (
            execute_sql(ctx, t, sql, Strategy::Baseline).unwrap(),
            execute_sql(ctx, t, sql, Strategy::Pushdown).unwrap(),
        )
    }

    fn assert_close(a: &QueryOutput, b: &QueryOutput, what: &str) {
        assert_eq!(a.rows.len(), b.rows.len(), "{what}");
        for (x, y) in a.rows.iter().zip(&b.rows) {
            for (vx, vy) in x.values().iter().zip(y.values()) {
                match (vx, vy) {
                    (Value::Float(fx), Value::Float(fy)) => {
                        assert!((fx - fy).abs() < 1e-6 * (1.0 + fx.abs()), "{what}")
                    }
                    _ => assert_eq!(vx, vy, "{what}"),
                }
            }
        }
    }

    #[test]
    fn filter_queries_route_to_filter_algorithms() {
        let (ctx, t) = setup();
        let sql = "SELECT g, v FROM t WHERE v < 10 AND g = 3";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::Filter { pushdown: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::Filter { pushdown: true });
        assert_close(&base, &push, sql);
        assert!(!base.rows.is_empty());
        assert_eq!(base.schema.names(), vec!["g", "v"]);
    }

    #[test]
    fn select_star_and_limit() {
        let (ctx, t) = setup();
        let (base, push) = both(&ctx, &t, "SELECT * FROM t WHERE g = 1 LIMIT 5");
        assert_eq!(base.rows.len(), 5);
        assert_close(&base, &push, "limit");
    }

    #[test]
    fn no_where_clause_means_full_scan() {
        let (ctx, t) = setup();
        let (base, push) = both(&ctx, &t, "SELECT s FROM t");
        assert_eq!(base.rows.len(), 1_000);
        assert_close(&base, &push, "full scan");
    }

    #[test]
    fn aggregates_route_to_aggregation() {
        let (ctx, t) = setup();
        let sql = "SELECT SUM(v), COUNT(*), AVG(v), MIN(g), MAX(g) FROM t WHERE g <> 2";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::Aggregate { pushdown: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::Aggregate { pushdown: true });
        assert_close(&base, &push, sql);
        // Pushdown ships almost nothing back.
        assert!(push.metrics.bytes_returned() < base.metrics.bytes_returned() / 100);
    }

    #[test]
    fn group_by_routes_to_groupby_algorithms() {
        let (ctx, t) = setup();
        let sql = "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(
            kind,
            PlanKind::GroupBy {
                algorithm: "server-side"
            }
        );
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(
            kind,
            PlanKind::GroupBy {
                algorithm: "hybrid"
            }
        );
        assert_eq!(base.rows.len(), 7);
        assert_close(&base, &push, sql);
    }

    #[test]
    fn order_by_limit_routes_to_topk() {
        let (ctx, t) = setup();
        let sql = "SELECT * FROM t ORDER BY v DESC LIMIT 12";
        let (base, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_eq!(kind, PlanKind::TopK { sampling: false });
        let (push, kind) = execute_sql_explained(&ctx, &t, sql, Strategy::Pushdown).unwrap();
        assert_eq!(kind, PlanKind::TopK { sampling: true });
        assert_eq!(base.rows.len(), 12);
        for (a, b) in base.rows.iter().zip(&push.rows) {
            assert_eq!(a[1], b[1]);
        }
        // Descending.
        assert!(base.rows[0][1].total_cmp(&base.rows[11][1]).is_ge());
    }

    #[test]
    fn unsupported_shapes_are_rejected_cleanly() {
        let (ctx, t) = setup();
        for sql in [
            "SELECT * FROM t ORDER BY v",         // top-K needs LIMIT
            "SELECT v FROM t ORDER BY v LIMIT 5", // top-K projects *
            "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g LIMIT 5",
            "SELECT v + 1 FROM t",                // computed projection
            "SELECT s, SUM(v) FROM t GROUP BY g", // non-grouped column
        ] {
            let err = execute_sql(&ctx, &t, sql, Strategy::Pushdown);
            assert!(err.is_err(), "{sql} should be rejected");
        }
    }

    const ALL_SHAPES: [&str; 5] = [
        "SELECT g, v FROM t WHERE v < 10 AND g = 3",
        "SELECT s FROM t",
        "SELECT SUM(v), COUNT(*), AVG(v) FROM t WHERE g <> 2",
        "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g",
        "SELECT * FROM t ORDER BY v DESC LIMIT 12",
    ];

    #[test]
    fn adaptive_agrees_with_baseline_on_every_shape() {
        let (ctx, t) = setup();
        for sql in ALL_SHAPES {
            let base = execute_sql(&ctx, &t, sql, Strategy::Baseline).unwrap();
            let adapt = execute_sql(&ctx, &t, sql, Strategy::Adaptive).unwrap();
            assert_close(&base, &adapt, sql);
        }
    }

    #[test]
    fn adaptive_never_costs_measurably_more_than_either_fixed_strategy() {
        let (ctx, t) = setup();
        for sql in ALL_SHAPES {
            let costs: Vec<f64> = [Strategy::Baseline, Strategy::Pushdown, Strategy::Adaptive]
                .into_iter()
                .map(|s| {
                    execute_sql(&ctx, &t, sql, s)
                        .unwrap()
                        .metrics
                        .cost(&ctx.model, &ctx.pricing)
                        .total()
                })
                .collect();
            let min_fixed = costs[0].min(costs[1]);
            assert!(
                costs[2] <= min_fixed * 1.10,
                "{sql}: adaptive ${:.6} vs min(fixed) ${min_fixed:.6}",
                costs[2]
            );
        }
    }

    #[test]
    fn adaptive_explain_reports_candidates_and_prediction() {
        let (ctx, t) = setup();
        let sql = "SELECT g, v FROM t WHERE v < 10";
        let (out, ex) = execute_sql_verbose(&ctx, &t, sql, Strategy::Adaptive).unwrap();
        assert!(matches!(ex.kind, PlanKind::Filter { .. }));
        assert_eq!(ex.strategy, Strategy::Adaptive);
        assert_eq!(ex.candidates.len(), 2);
        assert_eq!(ex.candidates.iter().filter(|c| c.chosen).count(), 1);
        let chosen = ex.candidates.iter().find(|c| c.chosen).unwrap();
        for c in &ex.candidates {
            assert!(chosen.dollars <= c.dollars, "chosen plan is the argmin");
            assert!(c.dollars > 0.0 && c.runtime > 0.0);
        }
        let predicted = ex
            .predicted
            .as_ref()
            .expect("adaptive carries a prediction");
        assert!(!predicted.groups.is_empty());
        // The report renders candidates and the predicted-vs-actual table.
        let report = ex.report(&out, &ctx);
        assert!(report.contains("candidates:"), "{report}");
        assert!(report.contains("predicted"), "{report}");
        assert!(report.contains("actual"), "{report}");
        // Fixed strategies consider nothing and predict nothing.
        let (_, fixed) = execute_sql_verbose(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert!(fixed.candidates.is_empty());
        assert!(fixed.predicted.is_none());
        assert!(!fixed.report(&out, &ctx).contains("candidates:"));
    }

    #[test]
    fn adaptive_groupby_may_choose_beyond_the_paper_lineup() {
        // The adaptive planner considers `filtered` — a variant the fixed
        // Pushdown strategy never picks. Whatever it chooses must agree
        // with the baseline answer.
        let (ctx, t) = setup();
        let sql = "SELECT g, SUM(v) FROM t WHERE v < 50 GROUP BY g";
        let (out, ex) = execute_sql_verbose(&ctx, &t, sql, Strategy::Adaptive).unwrap();
        let PlanKind::GroupBy { algorithm } = ex.kind else {
            panic!("expected a group-by plan")
        };
        assert!(
            ["server-side", "filtered", "s3-side", "hybrid"].contains(&algorithm),
            "{algorithm}"
        );
        assert_eq!(ex.candidates.len(), 4, "all four §VI families considered");
        let base = execute_sql(&ctx, &t, sql, Strategy::Baseline).unwrap();
        assert_close(&base, &out, sql);
    }

    #[test]
    fn plan_kind_display() {
        assert_eq!(
            PlanKind::Filter { pushdown: true }.to_string(),
            "Filter[s3-side]"
        );
        assert_eq!(
            PlanKind::GroupBy {
                algorithm: "hybrid"
            }
            .to_string(),
            "GroupBy[hybrid]"
        );
        assert_eq!(
            PlanKind::TopK { sampling: true }.to_string(),
            "TopK[sampling]"
        );
    }
}
