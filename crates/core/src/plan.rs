//! The physical-plan IR: a small tree of vectorized operators over
//! [`Row`]s, built by the planner ([`crate::planner`]) and driven by the
//! one executor in this module ([`execute`]).
//!
//! Leaves are per-table scans — [`PlanOp::PushdownScan`] ships the
//! predicate and projection to the storage engine, [`PlanOp::LocalScan`]
//! GETs whole partitions and filters on the compute node. Interior operators
//! compose them into multi-table queries: hash equi-joins (with an
//! optional Bloom runtime filter injected into the probe scan, paper
//! §V-A2), residual filters, projections, hash aggregation, multi-key
//! sort and limit. The paper's single-table algorithm families (§IV
//! filter, §VI group-by, §VII top-K, scalar aggregation) participate as
//! leaf operators ([`PlanOp::Algo`]), so *every* query — single-table
//! fast path or composed TPC-H Q3 shape — runs through the same
//! executor.
//!
//! Execution reports per-operator [`PhaseStats`] in an [`OpReport`]
//! tree; [`crate::cost::predict_plan`] produces the same tree shape from
//! catalog statistics, and the planner zips the two so `EXPLAIN` can
//! show predicted-vs-actual per node.

use crate::algos::{filter, groupby, topk, whatif};
use crate::catalog::Table;
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{
    cached_scan_columnar_streamed, cached_scan_streamed, plain_scan_columnar_streamed,
    plain_scan_streamed, select_scan,
};
use pushdown_common::columnar::ColumnarBatch;
use pushdown_common::perf::{PerfModel, PhaseStats};
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::bind::{Binder, BoundExpr};
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// One node of a physical plan: an operator, its inputs, and the output
/// schema the planner computed while lowering.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub op: PlanOp,
    pub children: Vec<PlanNode>,
    /// Output schema (lowering-time; execution re-derives and agrees).
    pub schema: Schema,
}

/// The operator vocabulary of the plan IR.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Leaf: GET every partition of `table`, decode locally, apply
    /// `predicate` batch-by-batch (baseline side — all bytes cross the
    /// wire as free plain transfer).
    LocalScan {
        table: Table,
        predicate: Option<Expr>,
    },
    /// Leaf: `predicate` + `projection` pushed into S3 Select
    /// (`None` projection = `*`).
    PushdownScan {
        table: Table,
        predicate: Option<Expr>,
        projection: Option<Vec<String>>,
    },
    /// Leaf: read every partition **through the local segment cache**
    /// (hybrid tier): hits bill zero bytes/requests and pay local scan +
    /// parse time; misses are read-through fills billed exactly once.
    /// `predicate` is applied locally, like [`PlanOp::LocalScan`].
    CachedScan {
        table: Table,
        predicate: Option<Expr>,
    },
    /// Hash inner equi-join: children `[build, probe]`, output rows are
    /// `build ++ probe`. Independent subtrees scan concurrently.
    HashJoin {
        build_key: String,
        probe_key: String,
    },
    /// Hash join whose probe child (a [`PlanOp::PushdownScan`]) is
    /// additionally filtered by a Bloom filter built from the build
    /// side's keys and shipped inside the probe's Select predicate
    /// (paper §V-A2). Build and probe are serial by construction; falls
    /// back to an unfiltered probe when no filter fits the SQL limit
    /// (§V-B1).
    BloomJoin {
        build_key: String,
        probe_key: String,
        fpr: f64,
    },
    /// Residual predicate spanning tables, evaluated locally.
    LocalFilter { predicate: Expr },
    /// Compute one expression per output column (names carried by the
    /// node schema).
    Project { exprs: Vec<Expr> },
    /// Hash aggregation: input columns `0..group_width` are the group
    /// key; aggregate *i* consumes input column `aggs[i].1` (`None` =
    /// `COUNT(*)`). Output sorted by group key (deterministic).
    GroupBy {
        group_width: usize,
        aggs: Vec<(AggFunc, Option<usize>)>,
    },
    /// Scalar aggregation: one output row, even over empty input.
    Aggregate { aggs: Vec<(AggFunc, Option<usize>)> },
    /// Stable multi-key sort (`(column, ascending)`, major first),
    /// optionally truncating to `limit` rows (ORDER BY … LIMIT k).
    Sort {
        keys: Vec<(usize, bool)>,
        limit: Option<usize>,
    },
    /// Plain truncation (LIMIT without ORDER BY).
    Limit { n: usize },
    /// One of the paper's single-table algorithm families, as a leaf
    /// operator: the planner's strategy choice picks the variant, the
    /// executor drives it like any other operator.
    Algo(AlgoOp),
}

/// A single-table algorithm family with its chosen variant.
#[derive(Debug, Clone)]
pub enum AlgoOp {
    /// §IV filter: `"server-side"` or `"s3-side"`.
    Filter(filter::FilterQuery, &'static str),
    /// Scalar aggregation (§VIII Q6 shape): `"server-side"`/`"s3-side"`.
    Aggregate(Table, SelectStmt, &'static str),
    /// §VI group-by: `"server-side"`/`"filtered"`/`"s3-side"`/`"hybrid"`
    /// /`"s3-native"`.
    GroupBy(groupby::GroupByQuery, &'static str),
    /// §VII top-K: `"server-side"` or `"sampling"`.
    TopK(topk::TopKQuery, &'static str),
}

impl AlgoOp {
    /// The chosen variant's name (`"server-side"`, `"s3-side"`,
    /// `"cached-local"`, ...).
    pub fn algorithm(&self) -> &'static str {
        match self {
            AlgoOp::Filter(_, a) => a,
            AlgoOp::Aggregate(_, _, a) => a,
            AlgoOp::GroupBy(_, a) => a,
            AlgoOp::TopK(_, a) => a,
        }
    }
}

impl PlanNode {
    pub fn new(op: PlanOp, children: Vec<PlanNode>, schema: Schema) -> PlanNode {
        PlanNode {
            op,
            children,
            schema,
        }
    }

    /// Display label of this operator (used by `Explain::report`).
    pub fn label(&self) -> String {
        match &self.op {
            PlanOp::LocalScan { table, .. } => format!("LocalScan[{}]", table.name),
            PlanOp::PushdownScan { table, .. } => format!("PushdownScan[{}]", table.name),
            PlanOp::CachedScan { table, .. } => format!("CachedScan[{}]", table.name),
            PlanOp::HashJoin {
                build_key,
                probe_key,
            } => {
                let name = if self.children.iter().all(PlanNode::scans_pushed) {
                    "FilteredJoin"
                } else {
                    "HashJoin"
                };
                format!("{name}[{build_key} = {probe_key}]")
            }
            PlanOp::BloomJoin {
                build_key,
                probe_key,
                fpr,
            } => format!("BloomJoin[{build_key} = {probe_key}, fpr {fpr}]"),
            PlanOp::LocalFilter { predicate } => format!("Filter[{predicate}]"),
            PlanOp::Project { exprs } => format!("Project[{} exprs]", exprs.len()),
            PlanOp::GroupBy {
                group_width, aggs, ..
            } => format!("GroupBy[{group_width} keys, {} aggs]", aggs.len()),
            PlanOp::Aggregate { aggs } => format!("Aggregate[{} aggs]", aggs.len()),
            PlanOp::Sort { keys, limit } => match limit {
                Some(k) => format!("TopK[{} keys, limit {k}]", keys.len()),
                None => format!("Sort[{} keys]", keys.len()),
            },
            PlanOp::Limit { n } => format!("Limit[{n}]"),
            PlanOp::Algo(a) => match a {
                AlgoOp::Filter(q, algo) => format!("Filter[{algo}, {}]", q.table.name),
                AlgoOp::Aggregate(t, _, algo) => format!("Aggregate[{algo}, {}]", t.name),
                AlgoOp::GroupBy(q, algo) => format!("GroupBy[{algo}, {}]", q.table.name),
                AlgoOp::TopK(q, algo) => format!("TopK[{algo}, {}]", q.table.name),
            },
        }
    }

    /// True when every scan leaf below (and including) this node pushes
    /// into S3 Select.
    fn scans_pushed(&self) -> bool {
        match &self.op {
            PlanOp::LocalScan { .. } | PlanOp::CachedScan { .. } => false,
            PlanOp::PushdownScan { .. } => true,
            _ => self.children.iter().all(PlanNode::scans_pushed),
        }
    }
}

/// Per-operator execution record: what one node actually cost, with the
/// planner's prediction attached when available.
#[derive(Debug, Clone)]
pub struct OpReport {
    pub label: String,
    /// Predicted footprint of this operator (from
    /// [`crate::cost::predict_plan`]); `None` when the planner had no
    /// per-node prediction.
    pub predicted: Option<PhaseStats>,
    /// Measured footprint of this operator alone (children excluded).
    pub actual: PhaseStats,
    pub children: Vec<OpReport>,
}

impl OpReport {
    fn leaf(label: String, actual: PhaseStats) -> OpReport {
        OpReport {
            label,
            predicted: None,
            actual,
            children: Vec::new(),
        }
    }

    /// Indented operator tree with predicted-vs-actual seconds per node.
    pub fn render(&self, model: &PerfModel) -> String {
        let mut out = String::new();
        self.render_into(model, 1, &mut out);
        out
    }

    fn render_into(&self, model: &PerfModel, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let indent = "  ".repeat(depth);
        let actual = model.phase_seconds(&self.actual);
        // Cache-serving nodes show their local-vs-remote byte split
        // (hit bytes come from the segment cache; on a cached scan, the
        // plain bytes are the billed read-through fills).
        let cache = if self.actual.cache_bytes > 0 || self.label.starts_with("CachedScan") {
            format!(
                "  [cache: {} B hit, {} B filled]",
                self.actual.cache_bytes, self.actual.plain_bytes
            )
        } else {
            String::new()
        };
        match &self.predicted {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "{indent}{}  predicted {:.2}s vs actual {actual:.2}s{cache}",
                    self.label,
                    model.phase_seconds(p),
                );
            }
            None => {
                let _ = writeln!(out, "{indent}{}  actual {actual:.2}s{cache}", self.label);
            }
        }
        for c in &self.children {
            c.render_into(model, depth + 1, out);
        }
    }
}

/// What executing a plan produced: rows, schema, the phase-structured
/// metrics (identical in shape to the prediction's), and the per-node
/// report tree.
#[derive(Debug, Clone)]
pub struct Executed {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub metrics: QueryMetrics,
    pub report: OpReport,
}

impl Executed {
    /// Convert into a [`QueryOutput`] (the caller's scope fills `billed`).
    pub fn into_output(self) -> QueryOutput {
        QueryOutput {
            schema: self.schema,
            rows: self.rows,
            metrics: self.metrics,
            billed: Default::default(),
        }
    }
}

/// Build the Select statement a scan leaf ships: projection columns (or
/// `*`) plus the pushed predicate.
pub(crate) fn scan_stmt(projection: &Option<Vec<String>>, predicate: &Option<Expr>) -> SelectStmt {
    let items = match projection {
        None => vec![SelectItem::Wildcard],
        Some(cols) => cols
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.clone()),
                alias: None,
            })
            .collect(),
    };
    SelectStmt {
        items,
        alias: None,
        where_clause: predicate.clone(),
        limit: None,
    }
}

/// Compose two concurrently-executed children's metrics: two single
/// groups merge into one parallel group (group time = max); anything
/// deeper concatenates serially (conservative).
pub(crate) fn merge_concurrent(a: QueryMetrics, b: QueryMetrics) -> QueryMetrics {
    let mut out = QueryMetrics::new();
    if a.groups.len() == 1 && b.groups.len() == 1 {
        let mut phases = Vec::new();
        for g in a.groups.into_iter().chain(b.groups) {
            for p in g.phases {
                phases.push((p.label, p.stats));
            }
        }
        out.push_parallel(phases);
    } else {
        out.groups.extend(a.groups);
        out.groups.extend(b.groups);
    }
    out
}

/// Sum every phase of `metrics` into one [`PhaseStats`] (leaf reports).
pub(crate) fn merged_stats(metrics: &QueryMetrics) -> PhaseStats {
    let mut stats = PhaseStats::default();
    for g in &metrics.groups {
        for p in &g.phases {
            stats.merge(&p.stats);
        }
    }
    stats
}

/// Attach the prediction tree's per-node stats to the execution report.
/// The two trees have the same shape by construction (same plan).
pub fn annotate(report: &mut OpReport, predicted: &crate::cost::PredNode) {
    report.predicted = Some(predicted.stats);
    for (r, p) in report.children.iter_mut().zip(&predicted.children) {
        annotate(r, p);
    }
}

/// Whether a leaf scan of `table` should take the vectorized columnar
/// path. Only ColumnarLite tables qualify — CSV always row-decodes — and
/// [`QueryContext::columnar_exec`] is the escape hatch.
fn use_columnar(ctx: &QueryContext, table: &Table) -> bool {
    ctx.columnar_exec && table.format == pushdown_select::InputFormat::Columnar
}

/// Filtering batch sink shared by the columnar leaf scans: compile the
/// bound predicate to a vectorized [`ops::ColumnarPred`] once, evaluate
/// it per batch on column vectors, and gather (late-materialize) only
/// the surviving rows. Charges the same CPU units as the row twin.
fn columnar_filter_sink<'a>(
    bound: &'a Option<BoundExpr>,
    rows: &'a mut Vec<Row>,
    op_stats: &'a mut PhaseStats,
) -> impl FnMut(ColumnarBatch) -> Result<()> + 'a {
    let compiled = bound.as_ref().and_then(ops::compile_predicate);
    move |batch| {
        match bound {
            None => rows.extend(batch.to_rows()),
            Some(b) => {
                let sel = match &compiled {
                    Some(p) => ops::filter_columnar(&batch, p, op_stats),
                    None => ops::filter_columnar_fallback(&batch, b, op_stats)?,
                };
                rows.extend(batch.gather(&sel));
            }
        }
        Ok(())
    }
}

/// Execute a physical plan against the context's store. Every operator
/// reports its own [`PhaseStats`]; billable traffic comes only from the
/// scan leaves, so the summed metrics agree exactly with the scope's
/// cost ledger.
pub fn execute(ctx: &QueryContext, node: &PlanNode) -> Result<Executed> {
    match &node.op {
        PlanOp::LocalScan { table, predicate } => {
            let bound = match predicate {
                Some(p) => Some(Binder::new(&table.schema).bind_expr(p)?),
                None => None,
            };
            let mut op_stats = PhaseStats::default();
            let mut rows = Vec::new();
            let summary = if use_columnar(ctx, table) {
                plain_scan_columnar_streamed(
                    ctx,
                    table,
                    columnar_filter_sink(&bound, &mut rows, &mut op_stats),
                )?
            } else {
                plain_scan_streamed(ctx, table, |batch| {
                    match &bound {
                        Some(b) => rows.extend(ops::filter_rows(batch.rows, b, &mut op_stats)?),
                        None => rows.extend(batch.rows),
                    }
                    Ok(())
                })?
            };
            let mut stats = summary.stats;
            stats.merge(&op_stats);
            let mut metrics = QueryMetrics::new();
            metrics.push_serial(format!("load {}", table.name), stats);
            Ok(Executed {
                schema: summary.schema,
                rows,
                metrics,
                report: OpReport::leaf(node.label(), stats),
            })
        }
        PlanOp::CachedScan { table, predicate } => {
            let bound = match predicate {
                Some(p) => Some(Binder::new(&table.schema).bind_expr(p)?),
                None => None,
            };
            let mut op_stats = PhaseStats::default();
            let mut rows = Vec::new();
            let summary = if use_columnar(ctx, table) {
                cached_scan_columnar_streamed(
                    ctx,
                    table,
                    columnar_filter_sink(&bound, &mut rows, &mut op_stats),
                )?
            } else {
                cached_scan_streamed(ctx, table, |batch| {
                    match &bound {
                        Some(b) => rows.extend(ops::filter_rows(batch.rows, b, &mut op_stats)?),
                        None => rows.extend(batch.rows),
                    }
                    Ok(())
                })?
            };
            let mut stats = summary.stats;
            stats.merge(&op_stats);
            let mut metrics = QueryMetrics::new();
            metrics.push_serial(format!("cached load {}", table.name), stats);
            // The EXPLAIN tree reports the hit/miss/fill split per node.
            let label = format!(
                "{} ({}/{} partitions hit)",
                node.label(),
                summary.hit_parts,
                summary.hit_parts + summary.fill_parts,
            );
            Ok(Executed {
                schema: summary.schema,
                rows,
                metrics,
                report: OpReport::leaf(label, stats),
            })
        }
        PlanOp::PushdownScan {
            table,
            predicate,
            projection,
        } => {
            let scan = select_scan(ctx, table, &scan_stmt(projection, predicate))?;
            let mut metrics = QueryMetrics::new();
            metrics.push_serial(format!("select {}", table.name), scan.stats);
            Ok(Executed {
                schema: scan.schema,
                rows: scan.rows,
                metrics,
                report: OpReport::leaf(node.label(), scan.stats),
            })
        }
        PlanOp::HashJoin {
            build_key,
            probe_key,
        } => {
            let (build, probe) = execute_pair(ctx, &node.children[0], &node.children[1])?;
            let metrics = merge_concurrent(build.metrics.clone(), probe.metrics.clone());
            finish_join(
                node,
                build,
                probe,
                metrics,
                build_key,
                probe_key,
                "hash join",
            )
        }
        PlanOp::BloomJoin {
            build_key,
            probe_key,
            fpr,
        } => {
            let build = execute(ctx, &node.children[0])?;
            let bk = build.schema.resolve(build_key)?;
            if build.schema.dtype_of(bk) != pushdown_common::DataType::Int {
                return Err(Error::Bind(format!(
                    "Bloom join requires an integer join key, `{build_key}` is {}",
                    build.schema.dtype_of(bk)
                )));
            }
            let mut keys = Vec::with_capacity(build.rows.len());
            for r in &build.rows {
                match &r[bk] {
                    Value::Null => {}
                    v => keys.push(v.as_i64()?),
                }
            }
            let probe_node = &node.children[1];
            let PlanOp::PushdownScan {
                table,
                predicate,
                projection,
            } = &probe_node.op
            else {
                return Err(Error::Other(
                    "BloomJoin probe child must be a PushdownScan".into(),
                ));
            };
            // §V-B1: degrade or fall back when the filter cannot fit the
            // SQL size limit; either way the build side already loaded,
            // so the two scans stay serial.
            let (stmt, probe_label) = match ctx.bloom.build(&keys, *fpr, probe_key) {
                Some((bloom_filter, _plan)) => {
                    let bloom_pred = bloom_filter.sql_predicate(probe_key);
                    let pred = match predicate {
                        Some(p) => Expr::and(p.clone(), bloom_pred),
                        None => bloom_pred,
                    };
                    (scan_stmt(projection, &Some(pred)), "bloom probe")
                }
                None => (
                    scan_stmt(projection, predicate),
                    "fallback probe (no bloom)",
                ),
            };
            let scan = select_scan(ctx, table, &stmt)?;
            let mut probe_metrics = QueryMetrics::new();
            probe_metrics.push_serial(format!("{probe_label} {}", table.name), scan.stats);
            let probe = Executed {
                schema: scan.schema,
                rows: scan.rows,
                metrics: probe_metrics,
                report: OpReport::leaf(probe_node.label(), scan.stats),
            };
            let mut metrics = build.metrics.clone();
            metrics.extend(&probe.metrics);
            finish_join(
                node,
                build,
                probe,
                metrics,
                build_key,
                probe_key,
                "hash join (bloom)",
            )
        }
        PlanOp::LocalFilter { predicate } => {
            let child = execute(ctx, &node.children[0])?;
            let bound = Binder::new(&child.schema).bind_expr(predicate)?;
            let mut local = PhaseStats::default();
            let rows = ops::filter_rows(child.rows, &bound, &mut local)?;
            let mut metrics = child.metrics;
            metrics.push_serial("residual filter", local);
            Ok(Executed {
                schema: child.schema,
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Project { exprs } => {
            let child = execute(ctx, &node.children[0])?;
            let binder = Binder::new(&child.schema);
            let bound: Vec<_> = exprs
                .iter()
                .map(|e| binder.bind_expr(e))
                .collect::<Result<_>>()?;
            let mut local = PhaseStats::default();
            let rows = ops::map_rows(&child.rows, &bound, &mut local)?;
            let mut metrics = child.metrics;
            metrics.push_serial("project", local);
            Ok(Executed {
                schema: node.schema.clone(),
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::GroupBy { group_width, aggs } => {
            let child = execute(ctx, &node.children[0])?;
            let group_cols: Vec<usize> = (0..*group_width).collect();
            let mut local = PhaseStats::default();
            let rows = ops::hash_group_by(&child.rows, &group_cols, aggs, &mut local)?;
            let mut metrics = child.metrics;
            metrics.push_serial("group-by", local);
            Ok(Executed {
                schema: node.schema.clone(),
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Aggregate { aggs } => {
            let child = execute(ctx, &node.children[0])?;
            let mut local = PhaseStats::default();
            local.server_cpu_units += child.rows.len() as u64 * aggs.len().max(1) as u64;
            let mut accs: Vec<_> = aggs.iter().map(|(f, c)| (f.accumulator(), *c)).collect();
            for r in &child.rows {
                for (acc, col) in accs.iter_mut() {
                    match col {
                        Some(c) => acc.update(&r[*c])?,
                        None => acc.update(&Value::Bool(true))?,
                    }
                }
            }
            let rows = vec![Row::new(accs.iter().map(|(a, _)| a.finish()).collect())];
            let mut metrics = child.metrics;
            metrics.push_serial("aggregate", local);
            Ok(Executed {
                schema: node.schema.clone(),
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Sort { keys, limit } => {
            let child = execute(ctx, &node.children[0])?;
            let mut local = PhaseStats::default();
            let mut rows = ops::sort_rows_by_keys(child.rows, keys, &mut local);
            if let Some(k) = limit {
                rows.truncate(*k);
            }
            let mut metrics = child.metrics;
            metrics.push_serial("sort", local);
            Ok(Executed {
                schema: child.schema,
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Limit { n } => {
            let mut child = execute(ctx, &node.children[0])?;
            child.rows.truncate(*n);
            Ok(Executed {
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: PhaseStats::default(),
                    children: vec![child.report],
                },
                ..child
            })
        }
        PlanOp::Algo(algo) => {
            // `cached-local` variants are the server-side algorithms with
            // plain partition GETs routed through the segment cache — the
            // match arms below fall through to their server-side branch
            // under a cache-reading context.
            let cached_ctx;
            let ctx = if algo.algorithm() == "cached-local" {
                cached_ctx = ctx.clone().with_cache_reads(true);
                &cached_ctx
            } else {
                ctx
            };
            let out = match algo {
                AlgoOp::Filter(q, algorithm) => match *algorithm {
                    "s3-side" => filter::s3_side(ctx, q)?,
                    _ => filter::server_side(ctx, q)?,
                },
                AlgoOp::Aggregate(table, stmt, algorithm) => match *algorithm {
                    "s3-side" => {
                        let scan = select_scan(ctx, table, stmt)?;
                        let mut metrics = QueryMetrics::new();
                        metrics.push_serial("s3-side aggregation", scan.stats);
                        QueryOutput {
                            schema: scan.schema,
                            rows: scan.rows,
                            metrics,
                            billed: Default::default(),
                        }
                    }
                    _ => local_aggregate(ctx, table, stmt)?,
                },
                AlgoOp::GroupBy(q, algorithm) => match *algorithm {
                    "filtered" => groupby::filtered(ctx, q)?,
                    "s3-side" => groupby::s3_side(ctx, q)?,
                    "hybrid" => groupby::hybrid(ctx, q, groupby::HybridOptions::default())?,
                    "s3-native" => whatif::s3_native_groupby(ctx, q)?,
                    _ => groupby::server_side(ctx, q)?,
                },
                AlgoOp::TopK(q, algorithm) => match *algorithm {
                    "sampling" => topk::sampling(ctx, q, None)?,
                    _ => topk::server_side(ctx, q)?,
                },
            };
            let actual = merged_stats(&out.metrics);
            Ok(Executed {
                schema: out.schema,
                rows: out.rows,
                metrics: out.metrics,
                report: OpReport::leaf(node.label(), actual),
            })
        }
    }
}

/// Execute two independent subtrees concurrently (their scans are
/// independent I/O, exactly like the §V filtered join's two sides).
fn execute_pair(ctx: &QueryContext, a: &PlanNode, b: &PlanNode) -> Result<(Executed, Executed)> {
    let mut left = None;
    let mut right = None;
    std::thread::scope(|s| {
        let handle = s.spawn(|| execute(ctx, a));
        right = Some(execute(ctx, b));
        left = Some(handle.join().expect("build subtree panicked"));
    });
    Ok((left.unwrap()?, right.unwrap()?))
}

#[allow(clippy::too_many_arguments)]
fn finish_join(
    node: &PlanNode,
    build: Executed,
    probe: Executed,
    mut metrics: QueryMetrics,
    build_key: &str,
    probe_key: &str,
    phase_label: &str,
) -> Result<Executed> {
    let bk = build.schema.resolve(build_key)?;
    let pk = probe.schema.resolve(probe_key)?;
    let mut local = PhaseStats::default();
    let rows = ops::hash_join(build.rows, bk, probe.rows, pk, &mut local);
    let schema = build.schema.join(&probe.schema);
    metrics.push_serial(phase_label, local);
    Ok(Executed {
        schema,
        rows,
        metrics,
        report: OpReport {
            label: node.label(),
            predicted: None,
            actual: local,
            children: vec![build.report, probe.report],
        },
    })
}

/// Baseline scalar aggregation: full load, evaluate aggregate items
/// locally — streamed. Scan batches fold straight into the accumulators;
/// only the accumulators are resident. (Billing is the caller's query
/// scope's job — the executor fills `QueryOutput::billed` once, at the
/// top.)
fn local_aggregate(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<QueryOutput> {
    let binder = Binder::new(&table.schema);
    let pred = match &stmt.where_clause {
        Some(w) => Some(binder.bind_expr(w)?),
        None => None,
    };
    let mut accs = Vec::new();
    let mut fields = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Agg { func, arg, alias } = item else {
            return Err(Error::Bind(
                "aggregate query cannot contain scalar items".into(),
            ));
        };
        let bound = match arg {
            Some(e) => Some(binder.bind_expr(e)?),
            None => None,
        };
        let dtype = match func {
            AggFunc::Count => pushdown_common::DataType::Int,
            AggFunc::Avg => pushdown_common::DataType::Float,
            _ => bound
                .as_ref()
                .map(|e| e.infer_type())
                .unwrap_or(pushdown_common::DataType::Float),
        };
        fields.push(pushdown_common::Field::new(
            alias.clone().unwrap_or_else(|| format!("_{}", i + 1)),
            dtype,
        ));
        accs.push((func.accumulator(), bound));
    }
    let mut op_stats = PhaseStats::default();
    let summary = if use_columnar(ctx, table) {
        let compiled = pred.as_ref().and_then(ops::compile_predicate);
        plain_scan_columnar_streamed(ctx, table, |batch| {
            let sel = match (&pred, &compiled) {
                (None, _) => ops::full_selection(batch.len()),
                (Some(_), Some(p)) => ops::filter_columnar(&batch, p, &mut op_stats),
                (Some(p), None) => ops::filter_columnar_fallback(&batch, p, &mut op_stats)?,
            };
            op_stats.server_cpu_units += sel.len() as u64 * accs.len() as u64;
            for (acc, arg) in accs.iter_mut() {
                match arg {
                    // Column arguments feed the accumulator a whole
                    // vector at a time.
                    Some(BoundExpr::Column(idx, _)) => {
                        ops::update_accumulator_columnar(acc, batch.column(*idx), &sel)?
                    }
                    Some(e) => {
                        for &i in &sel {
                            acc.update(&pushdown_sql::eval::eval(e, &batch.row_at(i as usize))?)?;
                        }
                    }
                    None => match acc {
                        // COUNT(*) over k selected rows is just +k.
                        pushdown_sql::agg::Accumulator::Count(n) => *n += sel.len() as u64,
                        _ => {
                            for _ in &sel {
                                acc.update(&Value::Bool(true))?;
                            }
                        }
                    },
                }
            }
            Ok(())
        })?
    } else {
        plain_scan_streamed(ctx, table, |batch| {
            let rows = match &pred {
                Some(p) => ops::filter_rows(batch.rows, p, &mut op_stats)?,
                None => batch.rows,
            };
            op_stats.server_cpu_units += rows.len() as u64 * accs.len() as u64;
            for r in &rows {
                for (acc, arg) in accs.iter_mut() {
                    match arg {
                        Some(e) => acc.update(&pushdown_sql::eval::eval(e, r)?)?,
                        None => acc.update(&Value::Bool(true))?,
                    }
                }
            }
            Ok(())
        })?
    };
    let row = Row::new(accs.iter().map(|(a, _)| a.finish()).collect());
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side aggregation", stats);
    Ok(QueryOutput {
        schema: Schema::new(fields),
        rows: vec![row],
        metrics,
        billed: Default::default(),
    })
}
