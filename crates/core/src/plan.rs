//! The physical-plan IR: a small tree of vectorized operators over
//! [`Row`]s, built by the planner ([`crate::planner`]) and driven by the
//! one executor in this module ([`execute`]).
//!
//! Leaves are per-table scans — [`PlanOp::PushdownScan`] ships the
//! predicate and projection to the storage engine, [`PlanOp::LocalScan`]
//! GETs whole partitions and filters on the compute node. Interior operators
//! compose them into multi-table queries: hash equi-joins (with an
//! optional Bloom runtime filter injected into the probe scan, paper
//! §V-A2), residual filters, projections, hash aggregation, multi-key
//! sort and limit. The paper's single-table algorithm families (§IV
//! filter, §VI group-by, §VII top-K, scalar aggregation) participate as
//! leaf operators ([`PlanOp::Algo`]), so *every* query — single-table
//! fast path or composed TPC-H Q3 shape — runs through the same
//! executor.
//!
//! Execution reports per-operator [`PhaseStats`] in an [`OpReport`]
//! tree; [`crate::cost::predict_plan`] produces the same tree shape from
//! catalog statistics, and the planner zips the two so `EXPLAIN` can
//! show predicted-vs-actual per node.

use crate::algos::{filter, groupby, topk, whatif};
use crate::catalog::Table;
use crate::context::QueryContext;
use crate::metrics::QueryMetrics;
use crate::ops;
use crate::output::QueryOutput;
use crate::scan::{
    cached_scan_columnar_streamed, cached_scan_streamed, plain_scan_columnar_streamed,
    plain_scan_streamed, select_scan,
};
use pushdown_common::columnar::ColumnarBatch;
use pushdown_common::perf::{PerfModel, PhaseStats};
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::bind::{Binder, BoundExpr};
use pushdown_sql::{Expr, SelectItem, SelectStmt};

/// One node of a physical plan: an operator, its inputs, and the output
/// schema the planner computed while lowering.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub op: PlanOp,
    pub children: Vec<PlanNode>,
    /// Output schema (lowering-time; execution re-derives and agrees).
    pub schema: Schema,
}

/// The operator vocabulary of the plan IR.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Leaf: GET every partition of `table`, decode locally, apply
    /// `predicate` batch-by-batch (baseline side — all bytes cross the
    /// wire as free plain transfer).
    LocalScan {
        table: Table,
        predicate: Option<Expr>,
    },
    /// Leaf: `predicate` + `projection` pushed into S3 Select
    /// (`None` projection = `*`).
    PushdownScan {
        table: Table,
        predicate: Option<Expr>,
        projection: Option<Vec<String>>,
    },
    /// Leaf: read every partition **through the local segment cache**
    /// (hybrid tier): hits bill zero bytes/requests and pay local scan +
    /// parse time; misses are read-through fills billed exactly once.
    /// `predicate` is applied locally, like [`PlanOp::LocalScan`].
    CachedScan {
        table: Table,
        predicate: Option<Expr>,
    },
    /// Hash inner equi-join: children `[build, probe]`, output rows are
    /// `build ++ probe`. Independent subtrees scan concurrently.
    HashJoin {
        build_key: String,
        probe_key: String,
    },
    /// Hash join whose probe child (a [`PlanOp::PushdownScan`]) is
    /// additionally filtered by a Bloom filter built from the build
    /// side's keys and shipped inside the probe's Select predicate
    /// (paper §V-A2). Build and probe are serial by construction; falls
    /// back to an unfiltered probe when no filter fits the SQL limit
    /// (§V-B1).
    BloomJoin {
        build_key: String,
        probe_key: String,
        fpr: f64,
    },
    /// Residual predicate spanning tables, evaluated locally.
    LocalFilter { predicate: Expr },
    /// Compute one expression per output column (names carried by the
    /// node schema).
    Project { exprs: Vec<Expr> },
    /// Hash aggregation: input columns `0..group_width` are the group
    /// key; aggregate *i* consumes input column `aggs[i].1` (`None` =
    /// `COUNT(*)`). Output sorted by group key (deterministic).
    GroupBy {
        group_width: usize,
        aggs: Vec<(AggFunc, Option<usize>)>,
    },
    /// Scalar aggregation: one output row, even over empty input.
    Aggregate { aggs: Vec<(AggFunc, Option<usize>)> },
    /// Stable multi-key sort (`(column, ascending)`, major first),
    /// optionally truncating to `limit` rows (ORDER BY … LIMIT k).
    Sort {
        keys: Vec<(usize, bool)>,
        limit: Option<usize>,
    },
    /// Plain truncation (LIMIT without ORDER BY).
    Limit { n: usize },
    /// One of the paper's single-table algorithm families, as a leaf
    /// operator: the planner's strategy choice picks the variant, the
    /// executor drives it like any other operator.
    Algo(AlgoOp),
    /// Scatter wrapper (built by [`scatter`]): execute the child scan
    /// leaf's partitions owned by cluster node `node` (of `nodes`) on
    /// that node — its ledger, virtual clock, cache slice and fault
    /// stream. Normally driven by a parent [`PlanOp::Gather`]; executed
    /// bare it degenerates to the child.
    Exchange { node: usize, nodes: usize },
    /// Merge the per-node partition streams of its [`PlanOp::Exchange`]
    /// children back into global partition order. Rows are bit-identical
    /// to executing the underlying scan serially; the shipped bytes are
    /// metered as (non-billable) exchange volume on each node.
    Gather { nodes: usize },
    /// Hash-partition the child's rows on `keys` across `nodes` so a
    /// parent [`PlanOp::GroupBy`] aggregates partial state per node.
    /// Models an all-to-all shuffle: `(nodes-1)/nodes` of the serialized
    /// volume is metered as exchange (the expected cross-node share
    /// under uniformly spread producers).
    Repartition { keys: Vec<usize>, nodes: usize },
}

/// A single-table algorithm family with its chosen variant.
#[derive(Debug, Clone)]
pub enum AlgoOp {
    /// §IV filter: `"server-side"` or `"s3-side"`.
    Filter(filter::FilterQuery, &'static str),
    /// Scalar aggregation (§VIII Q6 shape): `"server-side"`/`"s3-side"`.
    Aggregate(Table, SelectStmt, &'static str),
    /// §VI group-by: `"server-side"`/`"filtered"`/`"s3-side"`/`"hybrid"`
    /// /`"s3-native"`.
    GroupBy(groupby::GroupByQuery, &'static str),
    /// §VII top-K: `"server-side"` or `"sampling"`.
    TopK(topk::TopKQuery, &'static str),
}

impl AlgoOp {
    /// The chosen variant's name (`"server-side"`, `"s3-side"`,
    /// `"cached-local"`, ...).
    pub fn algorithm(&self) -> &'static str {
        match self {
            AlgoOp::Filter(_, a) => a,
            AlgoOp::Aggregate(_, _, a) => a,
            AlgoOp::GroupBy(_, a) => a,
            AlgoOp::TopK(_, a) => a,
        }
    }
}

impl PlanNode {
    pub fn new(op: PlanOp, children: Vec<PlanNode>, schema: Schema) -> PlanNode {
        PlanNode {
            op,
            children,
            schema,
        }
    }

    /// Display label of this operator (used by `Explain::report`).
    pub fn label(&self) -> String {
        match &self.op {
            PlanOp::LocalScan { table, .. } => format!("LocalScan[{}]", table.name),
            PlanOp::PushdownScan { table, .. } => format!("PushdownScan[{}]", table.name),
            PlanOp::CachedScan { table, .. } => format!("CachedScan[{}]", table.name),
            PlanOp::HashJoin {
                build_key,
                probe_key,
            } => {
                let name = if self.children.iter().all(PlanNode::scans_pushed) {
                    "FilteredJoin"
                } else {
                    "HashJoin"
                };
                format!("{name}[{build_key} = {probe_key}]")
            }
            PlanOp::BloomJoin {
                build_key,
                probe_key,
                fpr,
            } => format!("BloomJoin[{build_key} = {probe_key}, fpr {fpr}]"),
            PlanOp::LocalFilter { predicate } => format!("Filter[{predicate}]"),
            PlanOp::Project { exprs } => format!("Project[{} exprs]", exprs.len()),
            PlanOp::GroupBy {
                group_width, aggs, ..
            } => format!("GroupBy[{group_width} keys, {} aggs]", aggs.len()),
            PlanOp::Aggregate { aggs } => format!("Aggregate[{} aggs]", aggs.len()),
            PlanOp::Sort { keys, limit } => match limit {
                Some(k) => format!("TopK[{} keys, limit {k}]", keys.len()),
                None => format!("Sort[{} keys]", keys.len()),
            },
            PlanOp::Limit { n } => format!("Limit[{n}]"),
            PlanOp::Algo(a) => match a {
                AlgoOp::Filter(q, algo) => format!("Filter[{algo}, {}]", q.table.name),
                AlgoOp::Aggregate(t, _, algo) => format!("Aggregate[{algo}, {}]", t.name),
                AlgoOp::GroupBy(q, algo) => format!("GroupBy[{algo}, {}]", q.table.name),
                AlgoOp::TopK(q, algo) => format!("TopK[{algo}, {}]", q.table.name),
            },
            PlanOp::Exchange { node, nodes } => format!("Exchange[node {node}/{nodes}]"),
            PlanOp::Gather { nodes } => format!("Gather[{nodes} nodes]"),
            PlanOp::Repartition { keys, nodes } => {
                format!("Repartition[{} keys, {nodes} nodes]", keys.len())
            }
        }
    }

    /// True when every scan leaf below (and including) this node pushes
    /// into S3 Select.
    fn scans_pushed(&self) -> bool {
        match &self.op {
            PlanOp::LocalScan { .. } | PlanOp::CachedScan { .. } => false,
            PlanOp::PushdownScan { .. } => true,
            _ => self.children.iter().all(PlanNode::scans_pushed),
        }
    }
}

/// Per-operator execution record: what one node actually cost, with the
/// planner's prediction attached when available.
#[derive(Debug, Clone)]
pub struct OpReport {
    pub label: String,
    /// Predicted footprint of this operator (from
    /// [`crate::cost::predict_plan`]); `None` when the planner had no
    /// per-node prediction.
    pub predicted: Option<PhaseStats>,
    /// Measured footprint of this operator alone (children excluded).
    pub actual: PhaseStats,
    pub children: Vec<OpReport>,
}

impl OpReport {
    fn leaf(label: String, actual: PhaseStats) -> OpReport {
        OpReport {
            label,
            predicted: None,
            actual,
            children: Vec::new(),
        }
    }

    /// Indented operator tree with predicted-vs-actual seconds per node.
    pub fn render(&self, model: &PerfModel) -> String {
        let mut out = String::new();
        self.render_into(model, 1, &mut out);
        out
    }

    fn render_into(&self, model: &PerfModel, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let indent = "  ".repeat(depth);
        let actual = model.phase_seconds(&self.actual);
        // Cache-serving nodes show their local-vs-remote byte split
        // (mem/disk hit bytes come from the segment cache tiers; on a
        // cached scan, the plain bytes are the billed gap fills).
        let cache = if self.actual.cache_bytes > 0
            || self.actual.disk_bytes > 0
            || self.label.starts_with("CachedScan")
        {
            format!(
                "  [cache: {} B mem hit, {} B disk hit, {} B filled]",
                self.actual.cache_bytes, self.actual.disk_bytes, self.actual.plain_bytes
            )
        } else {
            String::new()
        };
        match &self.predicted {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "{indent}{}  predicted {:.2}s vs actual {actual:.2}s{cache}",
                    self.label,
                    model.phase_seconds(p),
                );
            }
            None => {
                let _ = writeln!(out, "{indent}{}  actual {actual:.2}s{cache}", self.label);
            }
        }
        for c in &self.children {
            c.render_into(model, depth + 1, out);
        }
    }
}

/// What executing a plan produced: rows, schema, the phase-structured
/// metrics (identical in shape to the prediction's), and the per-node
/// report tree.
#[derive(Debug, Clone)]
pub struct Executed {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub metrics: QueryMetrics,
    pub report: OpReport,
}

impl Executed {
    /// Convert into a [`QueryOutput`] (the caller's scope fills `billed`).
    pub fn into_output(self) -> QueryOutput {
        QueryOutput {
            schema: self.schema,
            rows: self.rows,
            metrics: self.metrics,
            billed: Default::default(),
        }
    }
}

/// Build the Select statement a scan leaf ships: projection columns (or
/// `*`) plus the pushed predicate.
pub(crate) fn scan_stmt(projection: &Option<Vec<String>>, predicate: &Option<Expr>) -> SelectStmt {
    let items = match projection {
        None => vec![SelectItem::Wildcard],
        Some(cols) => cols
            .iter()
            .map(|c| SelectItem::Expr {
                expr: Expr::col(c.clone()),
                alias: None,
            })
            .collect(),
    };
    SelectStmt {
        items,
        alias: None,
        where_clause: predicate.clone(),
        limit: None,
    }
}

/// Compose two concurrently-executed children's metrics: two single
/// groups merge into one parallel group (group time = max); anything
/// deeper concatenates serially (conservative).
pub(crate) fn merge_concurrent(a: QueryMetrics, b: QueryMetrics) -> QueryMetrics {
    let mut out = QueryMetrics::new();
    if a.groups.len() == 1 && b.groups.len() == 1 {
        let mut phases = Vec::new();
        for g in a.groups.into_iter().chain(b.groups) {
            for p in g.phases {
                phases.push((p.label, p.stats));
            }
        }
        out.push_parallel(phases);
    } else {
        out.groups.extend(a.groups);
        out.groups.extend(b.groups);
    }
    out
}

/// Sum every phase of `metrics` into one [`PhaseStats`] (leaf reports).
pub(crate) fn merged_stats(metrics: &QueryMetrics) -> PhaseStats {
    let mut stats = PhaseStats::default();
    for g in &metrics.groups {
        for p in &g.phases {
            stats.merge(&p.stats);
        }
    }
    stats
}

/// Attach the prediction tree's per-node stats to the execution report.
/// The two trees have the same shape by construction (same plan).
pub fn annotate(report: &mut OpReport, predicted: &crate::cost::PredNode) {
    report.predicted = Some(predicted.stats);
    for (r, p) in report.children.iter_mut().zip(&predicted.children) {
        annotate(r, p);
    }
}

/// Whether a leaf scan of `table` should take the vectorized columnar
/// path. Only ColumnarLite tables qualify — CSV always row-decodes — and
/// [`QueryContext::columnar_exec`] is the escape hatch.
fn use_columnar(ctx: &QueryContext, table: &Table) -> bool {
    ctx.columnar_exec && table.format == pushdown_select::InputFormat::Columnar
}

/// Filtering batch sink shared by the columnar leaf scans: compile the
/// bound predicate to a vectorized [`ops::ColumnarPred`] once, evaluate
/// it per batch on column vectors, and gather (late-materialize) only
/// the surviving rows. Charges the same CPU units as the row twin.
fn columnar_filter_sink<'a>(
    bound: &'a Option<BoundExpr>,
    rows: &'a mut Vec<Row>,
    op_stats: &'a mut PhaseStats,
) -> impl FnMut(ColumnarBatch) -> Result<()> + 'a {
    let compiled = bound.as_ref().and_then(ops::compile_predicate);
    move |batch| {
        match bound {
            None => rows.extend(batch.to_rows()),
            Some(b) => {
                let sel = match &compiled {
                    Some(p) => ops::filter_columnar(&batch, p, op_stats),
                    None => ops::filter_columnar_fallback(&batch, b, op_stats)?,
                };
                rows.extend(batch.gather(&sel));
            }
        }
        Ok(())
    }
}

/// Execute a physical plan against the context's store. Every operator
/// reports its own [`PhaseStats`]; billable traffic comes only from the
/// scan leaves, so the summed metrics agree exactly with the scope's
/// cost ledger.
pub fn execute(ctx: &QueryContext, node: &PlanNode) -> Result<Executed> {
    match &node.op {
        PlanOp::LocalScan { table, predicate } => {
            let bound = match predicate {
                Some(p) => Some(Binder::new(&table.schema).bind_expr(p)?),
                None => None,
            };
            let mut op_stats = PhaseStats::default();
            let mut rows = Vec::new();
            let summary = if use_columnar(ctx, table) {
                plain_scan_columnar_streamed(
                    ctx,
                    table,
                    columnar_filter_sink(&bound, &mut rows, &mut op_stats),
                )?
            } else {
                plain_scan_streamed(ctx, table, |batch| {
                    match &bound {
                        Some(b) => rows.extend(ops::filter_rows(batch.rows, b, &mut op_stats)?),
                        None => rows.extend(batch.rows),
                    }
                    Ok(())
                })?
            };
            let mut stats = summary.stats;
            stats.merge(&op_stats);
            let mut metrics = QueryMetrics::new();
            metrics.push_serial(format!("load {}", table.name), stats);
            Ok(Executed {
                schema: summary.schema,
                rows,
                metrics,
                report: OpReport::leaf(node.label(), stats),
            })
        }
        PlanOp::CachedScan { table, predicate } => {
            let bound = match predicate {
                Some(p) => Some(Binder::new(&table.schema).bind_expr(p)?),
                None => None,
            };
            let mut op_stats = PhaseStats::default();
            let mut rows = Vec::new();
            let summary = if use_columnar(ctx, table) {
                cached_scan_columnar_streamed(
                    ctx,
                    table,
                    columnar_filter_sink(&bound, &mut rows, &mut op_stats),
                )?
            } else {
                cached_scan_streamed(ctx, table, |batch| {
                    match &bound {
                        Some(b) => rows.extend(ops::filter_rows(batch.rows, b, &mut op_stats)?),
                        None => rows.extend(batch.rows),
                    }
                    Ok(())
                })?
            };
            let mut stats = summary.stats;
            stats.merge(&op_stats);
            let mut metrics = QueryMetrics::new();
            metrics.push_serial(format!("cached load {}", table.name), stats);
            // The EXPLAIN tree reports the hit/miss/fill split per node.
            let label = format!(
                "{} ({}/{} partitions hit)",
                node.label(),
                summary.hit_parts,
                summary.hit_parts + summary.fill_parts,
            );
            Ok(Executed {
                schema: summary.schema,
                rows,
                metrics,
                report: OpReport::leaf(label, stats),
            })
        }
        PlanOp::PushdownScan {
            table,
            predicate,
            projection,
        } => {
            let scan = select_scan(ctx, table, &scan_stmt(projection, predicate))?;
            let mut metrics = QueryMetrics::new();
            metrics.push_serial(format!("select {}", table.name), scan.stats);
            Ok(Executed {
                schema: scan.schema,
                rows: scan.rows,
                metrics,
                report: OpReport::leaf(node.label(), scan.stats),
            })
        }
        PlanOp::HashJoin {
            build_key,
            probe_key,
        } => {
            let (build, probe) = execute_pair(ctx, &node.children[0], &node.children[1])?;
            let metrics = merge_concurrent(build.metrics.clone(), probe.metrics.clone());
            finish_join(
                node,
                build,
                probe,
                metrics,
                build_key,
                probe_key,
                "hash join",
            )
        }
        PlanOp::BloomJoin {
            build_key,
            probe_key,
            fpr,
        } => {
            let build = execute(ctx, &node.children[0])?;
            let bk = build.schema.resolve(build_key)?;
            if build.schema.dtype_of(bk) != pushdown_common::DataType::Int {
                return Err(Error::Bind(format!(
                    "Bloom join requires an integer join key, `{build_key}` is {}",
                    build.schema.dtype_of(bk)
                )));
            }
            let mut keys = Vec::with_capacity(build.rows.len());
            for r in &build.rows {
                match &r[bk] {
                    Value::Null => {}
                    v => keys.push(v.as_i64()?),
                }
            }
            let probe_node = &node.children[1];
            let PlanOp::PushdownScan {
                table,
                predicate,
                projection,
            } = &probe_node.op
            else {
                return Err(Error::Other(
                    "BloomJoin probe child must be a PushdownScan".into(),
                ));
            };
            // §V-B1: degrade or fall back when the filter cannot fit the
            // SQL size limit; either way the build side already loaded,
            // so the two scans stay serial.
            let (stmt, probe_label) = match ctx.bloom.build(&keys, *fpr, probe_key) {
                Some((bloom_filter, _plan)) => {
                    let bloom_pred = bloom_filter.sql_predicate(probe_key);
                    let pred = match predicate {
                        Some(p) => Expr::and(p.clone(), bloom_pred),
                        None => bloom_pred,
                    };
                    (scan_stmt(projection, &Some(pred)), "bloom probe")
                }
                None => (
                    scan_stmt(projection, predicate),
                    "fallback probe (no bloom)",
                ),
            };
            let scan = select_scan(ctx, table, &stmt)?;
            let mut probe_metrics = QueryMetrics::new();
            probe_metrics.push_serial(format!("{probe_label} {}", table.name), scan.stats);
            let probe = Executed {
                schema: scan.schema,
                rows: scan.rows,
                metrics: probe_metrics,
                report: OpReport::leaf(probe_node.label(), scan.stats),
            };
            let mut metrics = build.metrics.clone();
            metrics.extend(&probe.metrics);
            finish_join(
                node,
                build,
                probe,
                metrics,
                build_key,
                probe_key,
                "hash join (bloom)",
            )
        }
        PlanOp::LocalFilter { predicate } => {
            let child = execute(ctx, &node.children[0])?;
            let bound = Binder::new(&child.schema).bind_expr(predicate)?;
            let mut local = PhaseStats::default();
            let rows = ops::filter_rows(child.rows, &bound, &mut local)?;
            let mut metrics = child.metrics;
            metrics.push_serial("residual filter", local);
            Ok(Executed {
                schema: child.schema,
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Project { exprs } => {
            let child = execute(ctx, &node.children[0])?;
            let binder = Binder::new(&child.schema);
            let bound: Vec<_> = exprs
                .iter()
                .map(|e| binder.bind_expr(e))
                .collect::<Result<_>>()?;
            let mut local = PhaseStats::default();
            let rows = ops::map_rows(&child.rows, &bound, &mut local)?;
            let mut metrics = child.metrics;
            metrics.push_serial("project", local);
            Ok(Executed {
                schema: node.schema.clone(),
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::GroupBy { group_width, aggs } => {
            // A Repartition child switches to scattered execution:
            // per-node partial group-bys over key-hashed buckets.
            if let PlanOp::Repartition { nodes, .. } = &node.children[0].op {
                return execute_partitioned_group_by(ctx, node, *group_width, aggs, *nodes);
            }
            let child = execute(ctx, &node.children[0])?;
            let group_cols: Vec<usize> = (0..*group_width).collect();
            let mut local = PhaseStats::default();
            let rows = ops::hash_group_by(&child.rows, &group_cols, aggs, &mut local)?;
            let mut metrics = child.metrics;
            metrics.push_serial("group-by", local);
            Ok(Executed {
                schema: node.schema.clone(),
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Aggregate { aggs } => {
            let child = execute(ctx, &node.children[0])?;
            let mut local = PhaseStats::default();
            local.server_cpu_units += child.rows.len() as u64 * aggs.len().max(1) as u64;
            let mut accs: Vec<_> = aggs.iter().map(|(f, c)| (f.accumulator(), *c)).collect();
            for r in &child.rows {
                for (acc, col) in accs.iter_mut() {
                    match col {
                        Some(c) => acc.update(&r[*c])?,
                        None => acc.update(&Value::Bool(true))?,
                    }
                }
            }
            let rows = vec![Row::new(accs.iter().map(|(a, _)| a.finish()).collect())];
            let mut metrics = child.metrics;
            metrics.push_serial("aggregate", local);
            Ok(Executed {
                schema: node.schema.clone(),
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Sort { keys, limit } => {
            let child = execute(ctx, &node.children[0])?;
            let mut local = PhaseStats::default();
            let mut rows = ops::sort_rows_by_keys(child.rows, keys, &mut local);
            if let Some(k) = limit {
                rows.truncate(*k);
            }
            let mut metrics = child.metrics;
            metrics.push_serial("sort", local);
            Ok(Executed {
                schema: child.schema,
                rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
        PlanOp::Limit { n } => {
            let mut child = execute(ctx, &node.children[0])?;
            child.rows.truncate(*n);
            Ok(Executed {
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: PhaseStats::default(),
                    children: vec![child.report],
                },
                ..child
            })
        }
        PlanOp::Algo(algo) => {
            // `cached-local` variants are the server-side algorithms with
            // plain partition GETs routed through the segment cache — the
            // match arms below fall through to their server-side branch
            // under a cache-reading context.
            let cached_ctx;
            let ctx = if algo.algorithm() == "cached-local" {
                cached_ctx = ctx.clone().with_cache_reads(true);
                &cached_ctx
            } else {
                ctx
            };
            let out = match algo {
                AlgoOp::Filter(q, algorithm) => match *algorithm {
                    "s3-side" => filter::s3_side(ctx, q)?,
                    _ => filter::server_side(ctx, q)?,
                },
                AlgoOp::Aggregate(table, stmt, algorithm) => match *algorithm {
                    "s3-side" => {
                        let scan = select_scan(ctx, table, stmt)?;
                        let mut metrics = QueryMetrics::new();
                        metrics.push_serial("s3-side aggregation", scan.stats);
                        QueryOutput {
                            schema: scan.schema,
                            rows: scan.rows,
                            metrics,
                            billed: Default::default(),
                        }
                    }
                    _ => local_aggregate(ctx, table, stmt)?,
                },
                AlgoOp::GroupBy(q, algorithm) => match *algorithm {
                    "filtered" => groupby::filtered(ctx, q)?,
                    "s3-side" => groupby::s3_side(ctx, q)?,
                    "hybrid" => groupby::hybrid(ctx, q, groupby::HybridOptions::default())?,
                    "s3-native" => whatif::s3_native_groupby(ctx, q)?,
                    _ => groupby::server_side(ctx, q)?,
                },
                AlgoOp::TopK(q, algorithm) => match *algorithm {
                    "sampling" => topk::sampling(ctx, q, None)?,
                    _ => topk::server_side(ctx, q)?,
                },
            };
            let actual = merged_stats(&out.metrics);
            Ok(Executed {
                schema: out.schema,
                rows: out.rows,
                metrics: out.metrics,
                report: OpReport::leaf(node.label(), actual),
            })
        }
        PlanOp::Gather { nodes } => execute_gather(ctx, node, *nodes),
        // A bare Exchange (no Gather parent driving it) degenerates to
        // its child on the current scope.
        PlanOp::Exchange { .. } => execute(ctx, &node.children[0]),
        PlanOp::Repartition { nodes, .. } => {
            // Standalone repartition (no group-by parent consuming the
            // buckets): rows pass through untouched — partitioning only
            // assigns ownership — but the modeled all-to-all shuffle
            // volume is metered.
            let child = execute(ctx, &node.children[0])?;
            let n = (*nodes).max(1) as u64;
            let total: u64 = child.rows.iter().map(row_exchange_bytes).sum();
            let local = PhaseStats {
                exchange_bytes: total - total / n,
                ..Default::default()
            };
            let mut metrics = child.metrics;
            metrics.push_serial("repartition", local);
            Ok(Executed {
                schema: child.schema,
                rows: child.rows,
                metrics,
                report: OpReport {
                    label: node.label(),
                    predicted: None,
                    actual: local,
                    children: vec![child.report],
                },
            })
        }
    }
}

/// Serialized size of one row on the interconnect: its CSV encoding
/// (field texts, separators, newline) — deterministic and identical to
/// what the row costs as returned Select bytes.
fn row_exchange_bytes(row: &Row) -> u64 {
    let vals = row.values();
    let fields: u64 = vals.iter().map(|v| v.to_csv_field().len() as u64).sum();
    fields + vals.len().saturating_sub(1) as u64 + 1
}

/// Deterministic hash route of a row to one of `n` repartition buckets,
/// keyed on the CSV encodings of its key columns.
fn route_row(row: &Row, keys: &[usize], n: usize) -> usize {
    let text = keys
        .iter()
        .map(|&c| row[c].to_csv_field())
        .collect::<Vec<_>>()
        .join("\x1f");
    (pushdown_common::mix::splitmix64(pushdown_common::mix::fnv1a(text.bytes())) % n as u64)
        as usize
}

/// The scan table under an Exchange wrapper, if its child is a scan leaf.
fn exchange_leaf_table(child: &PlanNode) -> Option<&Table> {
    match &child.op {
        PlanOp::LocalScan { table, .. }
        | PlanOp::CachedScan { table, .. }
        | PlanOp::PushdownScan { table, .. } => Some(table),
        _ => None,
    }
}

struct NodeRun {
    node: usize,
    schema: Option<Schema>,
    parts: Vec<(usize, Vec<Row>)>,
    stats: PhaseStats,
}

/// Execute a Gather fan-out: each Exchange child runs its node's owned
/// partitions *one partition at a time* on that node's scope (joint
/// query+node ledger, node clock, node cache slice, node fault salt),
/// tagging results with the global partition index; the coordinator
/// merges them back in global order, so rows are bit-identical to the
/// serial scan at any node count. Per-node footprints enter the metrics
/// as one parallel group (wall time = slowest node), and each node's
/// shipped bytes are metered as exchange volume.
fn execute_gather(ctx: &QueryContext, node: &PlanNode, _nodes: usize) -> Result<Executed> {
    let Some(cluster) = ctx.cluster.clone() else {
        return Err(Error::Other(
            "Gather requires a cluster context (QueryContext::with_nodes)".into(),
        ));
    };
    let first_leaf = node
        .children
        .first()
        .and_then(|c| c.children.first())
        .ok_or_else(|| Error::Other("Gather has no Exchange children".into()))?;
    let table = exchange_leaf_table(first_leaf)
        .ok_or_else(|| Error::Other("Exchange child must be a scan leaf".into()))?;
    // Global partition listing: the merge order, and (via the cluster's
    // consistent-hash ring) the per-node ownership map.
    let keys = table.partitions(&ctx.store);
    let owned: Vec<(usize, usize, String)> = keys
        .iter()
        .enumerate()
        .map(|(gi, k)| (cluster.assign(&table.bucket, k), gi, k.clone()))
        .collect();
    let results: Vec<Result<NodeRun>> = std::thread::scope(|s| {
        let handles: Vec<_> = node
            .children
            .iter()
            .map(|child| {
                let owned = &owned;
                let cluster = &cluster;
                s.spawn(move || -> Result<NodeRun> {
                    let PlanOp::Exchange { node: k, .. } = child.op else {
                        return Err(Error::Other(
                            "Gather children must be Exchange operators".into(),
                        ));
                    };
                    let leaf = &child.children[0];
                    let nctx = ctx.node_exec(k);
                    let mut run = NodeRun {
                        node: k,
                        schema: None,
                        parts: Vec::new(),
                        stats: PhaseStats::default(),
                    };
                    for (_, gi, key) in owned.iter().filter(|(owner, ..)| *owner == k) {
                        let filter: std::sync::Arc<[String]> =
                            std::sync::Arc::from(vec![key.clone()].into_boxed_slice());
                        let pctx = nctx.with_partition_filter(filter);
                        let ex = execute(&pctx, leaf)?;
                        run.stats.merge(&merged_stats(&ex.metrics));
                        run.schema.get_or_insert(ex.schema);
                        run.parts.push((*gi, ex.rows));
                    }
                    let shipped: u64 = run
                        .parts
                        .iter()
                        .flat_map(|(_, rows)| rows)
                        .map(row_exchange_bytes)
                        .sum();
                    run.stats.exchange_bytes += shipped;
                    cluster
                        .node(k)
                        .exchange_bytes
                        .fetch_add(shipped, std::sync::atomic::Ordering::Relaxed);
                    Ok(run)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gather node thread panicked"))
            .collect()
    });
    let mut runs = results.into_iter().collect::<Result<Vec<_>>>()?;
    let mut tagged: Vec<(usize, Vec<Row>)> =
        runs.iter_mut().flat_map(|r| r.parts.drain(..)).collect();
    tagged.sort_by_key(|(gi, _)| *gi);
    let rows: Vec<Row> = tagged.into_iter().flat_map(|(_, rows)| rows).collect();
    let schema = runs
        .iter()
        .find_map(|r| r.schema.clone())
        .unwrap_or_else(|| node.schema.clone());
    let mut metrics = QueryMetrics::new();
    metrics.push_parallel(
        runs.iter()
            .map(|r| (format!("exchange node {}", r.node), r.stats))
            .collect(),
    );
    let children: Vec<OpReport> = runs
        .iter()
        .map(|r| {
            let scanned = r.stats.plain_bytes + r.stats.cache_bytes + r.stats.s3_scanned_bytes;
            OpReport::leaf(
                format!(
                    "Exchange[node {}: {} B scanned, {} B exchanged]",
                    r.node, scanned, r.stats.exchange_bytes
                ),
                r.stats,
            )
        })
        .collect();
    Ok(Executed {
        schema,
        rows,
        metrics,
        report: OpReport {
            label: node.label(),
            predicted: None,
            // The gather merge itself is a zero-cost splice: partitions
            // arrive tagged and are concatenated in global order.
            actual: PhaseStats::default(),
            children,
        },
    })
}

/// Scattered group-by (GroupBy over Repartition): hash the child's rows
/// on the group key into one bucket per node, aggregate each bucket in
/// parallel, and merge by re-sorting on the group key — each group lives
/// wholly in one bucket with its rows in original order, so aggregate
/// values and the final sorted output are bit-identical to the serial
/// operator.
fn execute_partitioned_group_by(
    ctx: &QueryContext,
    node: &PlanNode,
    group_width: usize,
    aggs: &[(AggFunc, Option<usize>)],
    nodes: usize,
) -> Result<Executed> {
    let rep = &node.children[0];
    let child = execute(ctx, &rep.children[0])?;
    let n = nodes.max(1);
    let group_cols: Vec<usize> = (0..group_width).collect();
    let mut buckets: Vec<Vec<Row>> = (0..n).map(|_| Vec::new()).collect();
    let mut bucket_bytes = vec![0u64; n];
    for row in child.rows {
        let t = route_row(&row, &group_cols, n);
        bucket_bytes[t] += row_exchange_bytes(&row);
        buckets[t].push(row);
    }
    let total_bytes: u64 = bucket_bytes.iter().sum();
    let results: Vec<Result<(Vec<Row>, PhaseStats)>> = std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                let group_cols = &group_cols;
                s.spawn(move || {
                    let mut st = PhaseStats::default();
                    let rows = ops::hash_group_by(bucket, group_cols, aggs, &mut st)?;
                    Ok((rows, st))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("group-by node thread panicked"))
            .collect()
    });
    let mut phases = Vec::with_capacity(n);
    let mut parts: Vec<Vec<Row>> = Vec::with_capacity(n);
    for (k, r) in results.into_iter().enumerate() {
        let (rows, mut st) = r?;
        // Bytes node k receives from the other nodes (expected share
        // under uniformly spread producers).
        let received = bucket_bytes[k] - bucket_bytes[k] / n as u64;
        st.exchange_bytes += received;
        if let Some(cluster) = &ctx.cluster {
            if k < cluster.n() {
                cluster
                    .node(k)
                    .exchange_bytes
                    .fetch_add(received, std::sync::atomic::Ordering::Relaxed);
            }
        }
        phases.push((format!("group-by node {k}"), st));
        parts.push(rows);
    }
    let gb_stats = {
        let mut s = PhaseStats::default();
        for (_, st) in &phases {
            s.merge(st);
        }
        s
    };
    let rep_stats = PhaseStats {
        exchange_bytes: total_bytes - total_bytes / n as u64,
        ..Default::default()
    };
    let mut merge_stats = PhaseStats::default();
    let sort_keys: Vec<(usize, bool)> = (0..group_width).map(|i| (i, true)).collect();
    let rows = ops::sort_rows_by_keys(parts.concat(), &sort_keys, &mut merge_stats);
    let mut metrics = child.metrics;
    metrics.push_parallel(phases);
    metrics.push_serial("group-by merge", merge_stats);
    let mut gb_actual = gb_stats;
    gb_actual.merge(&merge_stats);
    Ok(Executed {
        schema: node.schema.clone(),
        rows,
        metrics,
        report: OpReport {
            label: node.label(),
            predicted: None,
            actual: gb_actual,
            children: vec![OpReport {
                label: rep.label(),
                predicted: None,
                actual: rep_stats,
                children: vec![child.report],
            }],
        },
    })
}

/// Rewrite a plan for scattered execution on the context's cluster:
/// every scan leaf becomes a [`PlanOp::Gather`] over per-node
/// [`PlanOp::Exchange`] wrappers (one per node owning at least one
/// partition), and every group-by above a scattered subtree gains a
/// [`PlanOp::Repartition`] on its group key so nodes aggregate partial
/// state in parallel. Returns the plan unchanged when no cluster is
/// attached or it has a single node — the serial path *is* the N=1
/// cluster.
pub fn scatter(ctx: &QueryContext, node: &PlanNode) -> PlanNode {
    let Some(cluster) = ctx.cluster.clone() else {
        return node.clone();
    };
    if cluster.n() < 2 {
        return node.clone();
    }
    scatter_node(ctx, &cluster, node).0
}

fn scatter_node(
    ctx: &QueryContext,
    cluster: &crate::cluster::Cluster,
    node: &PlanNode,
) -> (PlanNode, bool) {
    match &node.op {
        PlanOp::LocalScan { table, .. }
        | PlanOp::CachedScan { table, .. }
        | PlanOp::PushdownScan { table, .. } => {
            let keys = table.partitions(&ctx.store);
            let mut populated: Vec<usize> = keys
                .iter()
                .map(|k| cluster.assign(&table.bucket, k))
                .collect();
            populated.sort_unstable();
            populated.dedup();
            if populated.is_empty() {
                return (node.clone(), false);
            }
            let children: Vec<PlanNode> = populated
                .into_iter()
                .map(|k| {
                    PlanNode::new(
                        PlanOp::Exchange {
                            node: k,
                            nodes: cluster.n(),
                        },
                        vec![node.clone()],
                        node.schema.clone(),
                    )
                })
                .collect();
            (
                PlanNode::new(
                    PlanOp::Gather { nodes: cluster.n() },
                    children,
                    node.schema.clone(),
                ),
                true,
            )
        }
        // The Bloom probe must stay a bare PushdownScan — the filter is
        // injected into its Select predicate at run time — so only the
        // build side scatters.
        PlanOp::BloomJoin { .. } => {
            let (build, scattered) = scatter_node(ctx, cluster, &node.children[0]);
            let mut out = node.clone();
            out.children[0] = build;
            (out, scattered)
        }
        PlanOp::GroupBy { group_width, .. } => {
            let (child, scattered) = scatter_node(ctx, cluster, &node.children[0]);
            if !scattered {
                return (node.clone(), false);
            }
            let rep = PlanNode::new(
                PlanOp::Repartition {
                    keys: (0..*group_width).collect(),
                    nodes: cluster.n(),
                },
                vec![child.clone()],
                child.schema.clone(),
            );
            let mut out = node.clone();
            out.children = vec![rep];
            (out, true)
        }
        // Algorithm-family leaves manage their own scans; they run on
        // the coordinator (node 0) unscattered.
        PlanOp::Algo(_) => (node.clone(), false),
        _ => {
            let mut scattered = false;
            let mut out = node.clone();
            out.children = node
                .children
                .iter()
                .map(|c| {
                    let (c2, s) = scatter_node(ctx, cluster, c);
                    scattered |= s;
                    c2
                })
                .collect();
            (out, scattered)
        }
    }
}

/// Execute two independent subtrees concurrently (their scans are
/// independent I/O, exactly like the §V filtered join's two sides).
fn execute_pair(ctx: &QueryContext, a: &PlanNode, b: &PlanNode) -> Result<(Executed, Executed)> {
    let mut left = None;
    let mut right = None;
    std::thread::scope(|s| {
        let handle = s.spawn(|| execute(ctx, a));
        right = Some(execute(ctx, b));
        left = Some(handle.join().expect("build subtree panicked"));
    });
    Ok((left.unwrap()?, right.unwrap()?))
}

#[allow(clippy::too_many_arguments)]
fn finish_join(
    node: &PlanNode,
    build: Executed,
    probe: Executed,
    mut metrics: QueryMetrics,
    build_key: &str,
    probe_key: &str,
    phase_label: &str,
) -> Result<Executed> {
    let bk = build.schema.resolve(build_key)?;
    let pk = probe.schema.resolve(probe_key)?;
    let mut local = PhaseStats::default();
    let rows = ops::hash_join(build.rows, bk, probe.rows, pk, &mut local);
    let schema = build.schema.join(&probe.schema);
    metrics.push_serial(phase_label, local);
    Ok(Executed {
        schema,
        rows,
        metrics,
        report: OpReport {
            label: node.label(),
            predicted: None,
            actual: local,
            children: vec![build.report, probe.report],
        },
    })
}

/// Baseline scalar aggregation: full load, evaluate aggregate items
/// locally — streamed. Scan batches fold straight into the accumulators;
/// only the accumulators are resident. (Billing is the caller's query
/// scope's job — the executor fills `QueryOutput::billed` once, at the
/// top.)
fn local_aggregate(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<QueryOutput> {
    let binder = Binder::new(&table.schema);
    let pred = match &stmt.where_clause {
        Some(w) => Some(binder.bind_expr(w)?),
        None => None,
    };
    let mut accs = Vec::new();
    let mut fields = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        let SelectItem::Agg { func, arg, alias } = item else {
            return Err(Error::Bind(
                "aggregate query cannot contain scalar items".into(),
            ));
        };
        let bound = match arg {
            Some(e) => Some(binder.bind_expr(e)?),
            None => None,
        };
        let dtype = match func {
            AggFunc::Count => pushdown_common::DataType::Int,
            AggFunc::Avg => pushdown_common::DataType::Float,
            _ => bound
                .as_ref()
                .map(|e| e.infer_type())
                .unwrap_or(pushdown_common::DataType::Float),
        };
        fields.push(pushdown_common::Field::new(
            alias.clone().unwrap_or_else(|| format!("_{}", i + 1)),
            dtype,
        ));
        accs.push((func.accumulator(), bound));
    }
    let mut op_stats = PhaseStats::default();
    let summary = if use_columnar(ctx, table) {
        let compiled = pred.as_ref().and_then(ops::compile_predicate);
        plain_scan_columnar_streamed(ctx, table, |batch| {
            let sel = match (&pred, &compiled) {
                (None, _) => ops::full_selection(batch.len()),
                (Some(_), Some(p)) => ops::filter_columnar(&batch, p, &mut op_stats),
                (Some(p), None) => ops::filter_columnar_fallback(&batch, p, &mut op_stats)?,
            };
            op_stats.server_cpu_units += sel.len() as u64 * accs.len() as u64;
            for (acc, arg) in accs.iter_mut() {
                match arg {
                    // Column arguments feed the accumulator a whole
                    // vector at a time.
                    Some(BoundExpr::Column(idx, _)) => {
                        ops::update_accumulator_columnar(acc, batch.column(*idx), &sel)?
                    }
                    Some(e) => {
                        for &i in &sel {
                            acc.update(&pushdown_sql::eval::eval(e, &batch.row_at(i as usize))?)?;
                        }
                    }
                    None => match acc {
                        // COUNT(*) over k selected rows is just +k.
                        pushdown_sql::agg::Accumulator::Count(n) => *n += sel.len() as u64,
                        _ => {
                            for _ in &sel {
                                acc.update(&Value::Bool(true))?;
                            }
                        }
                    },
                }
            }
            Ok(())
        })?
    } else {
        plain_scan_streamed(ctx, table, |batch| {
            let rows = match &pred {
                Some(p) => ops::filter_rows(batch.rows, p, &mut op_stats)?,
                None => batch.rows,
            };
            op_stats.server_cpu_units += rows.len() as u64 * accs.len() as u64;
            for r in &rows {
                for (acc, arg) in accs.iter_mut() {
                    match arg {
                        Some(e) => acc.update(&pushdown_sql::eval::eval(e, r)?)?,
                        None => acc.update(&Value::Bool(true))?,
                    }
                }
            }
            Ok(())
        })?
    };
    let row = Row::new(accs.iter().map(|(a, _)| a.finish()).collect());
    let mut stats = summary.stats;
    stats.merge(&op_stats);
    let mut metrics = QueryMetrics::new();
    metrics.push_serial("server-side aggregation", stats);
    Ok(QueryOutput {
        schema: Schema::new(fields),
        rows: vec![row],
        metrics,
        billed: Default::default(),
    })
}
