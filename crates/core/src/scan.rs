//! Table scans: the two ways PushdownDB gets bytes out of S3.
//!
//! * [`plain_scan`] — GET every partition and deserialize on the compute
//!   node (the *baseline* path: all bytes cross the wire; billed as plain
//!   transfer, which is free in-region, plus compute time to parse).
//! * [`select_scan`] — ship a `SELECT` statement to the storage engine
//!   for every partition (the *pushdown* path: bytes scanned and returned
//!   are billed; the response parses slower per byte, but there are fewer
//!   of them).
//!
//! Both scan partitions concurrently on worker threads and merge results
//! in partition order, so results are deterministic. Aggregate statements
//! are re-written per partition and merged on the compute node —
//! `AVG` is decomposed into `SUM`+`COUNT` because per-partition averages
//! do not merge.

use crate::catalog::Table;
use crate::context::QueryContext;
use pushdown_common::perf::PhaseStats;
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_format::columnar::ColumnarReader;
use pushdown_format::csv::CsvReader;
use pushdown_select::{InputFormat, SelectResponse};
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::{SelectItem, SelectStmt};

/// Result of a scan: rows, their schema, and the phase footprint.
#[derive(Debug, Clone)]
pub struct ScanResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub stats: PhaseStats,
}

/// Run `f` over the table's partitions on `threads` workers, preserving
/// partition order in the output.
fn for_each_partition<T, F>(ctx: &QueryContext, table: &Table, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&str) -> Result<T> + Sync,
{
    let keys = table.partitions(&ctx.store);
    if keys.is_empty() {
        return Err(Error::NoSuchKey(format!(
            "table `{}` has no partitions under s3://{}/{}/",
            table.name, table.bucket, table.prefix
        )));
    }
    let threads = ctx.scan_threads.clamp(1, keys.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<T>>> = (0..keys.len()).map(|_| None).collect();
    let slot_refs: Vec<_> = slots.iter_mut().map(parking_lot::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= keys.len() {
                    break;
                }
                let out = f(&keys[i]);
                **slot_refs[i].lock() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every partition slot filled"))
        .collect()
}

fn decode_partition(
    data: &[u8],
    schema: &Schema,
    format: InputFormat,
) -> Result<Vec<Row>> {
    match format {
        InputFormat::Csv => CsvReader::with_header(data, schema.clone())
            .map(|r| r.map(|rec| rec.row))
            .collect(),
        InputFormat::CsvNoHeader => CsvReader::without_header(data, schema.clone())
            .map(|r| r.map(|rec| rec.row))
            .collect(),
        InputFormat::Columnar => {
            let reader = ColumnarReader::open(bytes::Bytes::copy_from_slice(data))?;
            reader.read_all()
        }
    }
}

/// Baseline path: load whole partitions over the wire and parse locally.
pub fn plain_scan(ctx: &QueryContext, table: &Table) -> Result<ScanResult> {
    let parts = for_each_partition(ctx, table, |key| {
        let data = ctx
            .store
            .get_object_retrying(&table.bucket, key, ctx.max_attempts)?;
        let rows = decode_partition(&data, &table.schema, table.format)?;
        Ok((data.len() as u64, rows))
    })?;
    let mut stats = PhaseStats::default();
    let mut rows = Vec::new();
    for (bytes, part_rows) in parts {
        stats.requests += 1;
        stats.plain_bytes += bytes;
        stats.server_cpu_units += part_rows.len() as u64;
        rows.extend(part_rows);
    }
    Ok(ScanResult { schema: table.schema.clone(), rows, stats })
}

/// How a per-partition aggregate column folds into the final answer.
enum MergeKind {
    Sum,
    Count,
    Min,
    Max,
    /// `AVG` decomposed: positions of its SUM and COUNT columns in the
    /// per-partition result.
    Avg { sum_col: usize, count_col: usize },
}

/// Pushdown path: run `stmt` against every partition via S3 Select and
/// merge the responses.
///
/// * Scalar statements: responses concatenate in partition order; a
///   `LIMIT` is satisfied by querying partitions *sequentially* and
///   stopping early (the sampling phases of §VI-B and §VII-A rely on the
///   scan — and its bill — stopping with the limit).
/// * Aggregate statements: rewritten per partition (`AVG → SUM, COUNT`)
///   and merged on the compute node.
pub fn select_scan(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<ScanResult> {
    if stmt.is_aggregate() {
        select_scan_aggregate(ctx, table, stmt)
    } else if stmt.limit.is_some() {
        select_scan_limited(ctx, table, stmt)
    } else {
        select_scan_scalar(ctx, table, stmt)
    }
}

fn accumulate_response(stats: &mut PhaseStats, resp: &SelectResponse) {
    stats.requests += 1;
    stats.s3_scanned_bytes += resp.stats.bytes_scanned;
    stats.select_returned_bytes += resp.stats.bytes_returned;
    stats.server_cpu_units += resp.stats.records_returned;
    stats.expr_terms = stats.expr_terms.max(resp.stats.expr_terms);
}

fn select_scan_scalar(
    ctx: &QueryContext,
    table: &Table,
    stmt: &SelectStmt,
) -> Result<ScanResult> {
    let responses = for_each_partition(ctx, table, |key| {
        ctx.engine
            .select_stmt(&table.bucket, key, stmt, &table.schema, table.format)
    })?;
    let mut stats = PhaseStats::default();
    let mut rows = Vec::new();
    let mut schema = None;
    for resp in responses {
        accumulate_response(&mut stats, &resp);
        if schema.is_none() {
            schema = Some(resp.output_schema.clone());
        }
        rows.extend(resp.rows()?);
    }
    Ok(ScanResult {
        schema: schema.expect("at least one partition"),
        rows,
        stats,
    })
}

fn select_scan_limited(
    ctx: &QueryContext,
    table: &Table,
    stmt: &SelectStmt,
) -> Result<ScanResult> {
    let limit = stmt.limit.expect("limited scan") as usize;
    let mut stats = PhaseStats::default();
    let mut rows = Vec::new();
    let mut schema = None;
    for key in table.partitions(&ctx.store) {
        let remaining = limit - rows.len();
        if remaining == 0 {
            break;
        }
        let mut part_stmt = stmt.clone();
        part_stmt.limit = Some(remaining as u64);
        let resp =
            ctx.engine
                .select_stmt(&table.bucket, &key, &part_stmt, &table.schema, table.format)?;
        accumulate_response(&mut stats, &resp);
        if schema.is_none() {
            schema = Some(resp.output_schema.clone());
        }
        rows.extend(resp.rows()?);
    }
    let schema = schema.ok_or_else(|| {
        Error::NoSuchKey(format!("table `{}` has no partitions", table.name))
    })?;
    Ok(ScanResult { schema, rows, stats })
}

fn select_scan_aggregate(
    ctx: &QueryContext,
    table: &Table,
    stmt: &SelectStmt,
) -> Result<ScanResult> {
    // Rewrite: one partition-level item list, plus merge instructions that
    // map partition columns back to the original items.
    let mut part_items: Vec<SelectItem> = Vec::new();
    let mut merges: Vec<MergeKind> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Agg { func, arg, alias } => match func {
                AggFunc::Sum => {
                    merges.push(MergeKind::Sum);
                    part_items.push(item.clone());
                }
                AggFunc::Count => {
                    merges.push(MergeKind::Count);
                    part_items.push(item.clone());
                }
                AggFunc::Min => {
                    merges.push(MergeKind::Min);
                    part_items.push(item.clone());
                }
                AggFunc::Max => {
                    merges.push(MergeKind::Max);
                    part_items.push(item.clone());
                }
                AggFunc::Avg => {
                    let sum_col = part_items.len();
                    part_items.push(SelectItem::Agg {
                        func: AggFunc::Sum,
                        arg: arg.clone(),
                        alias: alias.clone(),
                    });
                    part_items.push(SelectItem::Agg {
                        func: AggFunc::Count,
                        arg: arg.clone(),
                        alias: None,
                    });
                    merges.push(MergeKind::Avg { sum_col, count_col: sum_col + 1 });
                }
            },
            other => {
                return Err(Error::Bind(format!(
                    "aggregate scan cannot contain scalar item `{other}`"
                )))
            }
        }
    }
    let part_stmt = SelectStmt {
        items: part_items,
        alias: stmt.alias.clone(),
        where_clause: stmt.where_clause.clone(),
        limit: None,
    };

    let responses = for_each_partition(ctx, table, |key| {
        ctx.engine
            .select_stmt(&table.bucket, key, &part_stmt, &table.schema, table.format)
    })?;

    let mut stats = PhaseStats::default();
    let mut partials: Vec<Row> = Vec::new();
    let mut part_schema = None;
    for resp in responses {
        accumulate_response(&mut stats, &resp);
        if part_schema.is_none() {
            part_schema = Some(resp.output_schema.clone());
        }
        partials.extend(resp.rows()?);
    }
    let part_schema = part_schema.expect("at least one partition");

    // Merge partition rows according to the merge plan.
    let mut out: Vec<Value> = Vec::with_capacity(stmt.items.len());
    let mut col_of_item: Vec<usize> = Vec::new();
    {
        let mut c = 0;
        for m in &merges {
            col_of_item.push(c);
            c += match m {
                MergeKind::Avg { .. } => 2,
                _ => 1,
            };
        }
    }
    for (m, &col) in merges.iter().zip(&col_of_item) {
        let column = |idx: usize| partials.iter().map(move |r| r[idx].clone());
        let merged = match m {
            MergeKind::Sum | MergeKind::Count => {
                let mut acc = AggFunc::Sum.accumulator();
                for v in column(col) {
                    acc.update(&v)?;
                }
                match (m, acc.finish()) {
                    // COUNT of zero partitions/nulls is 0, not NULL.
                    (MergeKind::Count, Value::Null) => Value::Int(0),
                    (_, v) => v,
                }
            }
            MergeKind::Min => {
                let mut acc = AggFunc::Min.accumulator();
                for v in column(col) {
                    acc.update(&v)?;
                }
                acc.finish()
            }
            MergeKind::Max => {
                let mut acc = AggFunc::Max.accumulator();
                for v in column(col) {
                    acc.update(&v)?;
                }
                acc.finish()
            }
            MergeKind::Avg { sum_col, count_col } => {
                let mut total = 0.0;
                let mut n: i64 = 0;
                for r in &partials {
                    if !r[*sum_col].is_null() {
                        total += r[*sum_col].as_f64()?;
                    }
                    n += r[*count_col].as_i64()?;
                }
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
        };
        out.push(merged);
    }
    stats.server_cpu_units += partials.len() as u64;

    // Output schema: named like the original statement's items.
    let fields: Vec<pushdown_common::Field> = stmt
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let SelectItem::Agg { func, alias, .. } = item else { unreachable!() };
            let name = alias.clone().unwrap_or_else(|| format!("_{}", i + 1));
            let dtype = match func {
                AggFunc::Count => pushdown_common::DataType::Int,
                AggFunc::Avg => pushdown_common::DataType::Float,
                _ => {
                    // Take the partition schema's type for the first column
                    // of this item.
                    part_schema.dtype_of(col_of_item[i])
                }
            };
            pushdown_common::Field::new(name, dtype)
        })
        .collect();

    Ok(ScanResult {
        schema: Schema::new(fields),
        rows: vec![Row::new(out)],
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::upload_csv_table;
    use pushdown_common::DataType;
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_select;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64), Value::Float(i as f64 / 2.0)]))
            .collect()
    }

    fn ctx_with_table(n: usize, per_part: usize) -> (QueryContext, Table) {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(n), per_part).unwrap();
        (QueryContext::new(store), t)
    }

    #[test]
    fn plain_scan_reads_everything_in_order() {
        let (ctx, t) = ctx_with_table(500, 100);
        let r = plain_scan(&ctx, &t).unwrap();
        assert_eq!(r.rows, rows(500));
        assert_eq!(r.stats.requests, 5);
        assert_eq!(r.stats.plain_bytes, t.total_bytes(&ctx.store));
        assert_eq!(r.stats.s3_scanned_bytes, 0);
    }

    #[test]
    fn select_scan_filters_across_partitions() {
        let (ctx, t) = ctx_with_table(500, 100);
        let stmt = parse_select("SELECT k FROM S3Object WHERE k % 100 = 0").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(
            r.rows,
            vec![
                Row::new(vec![Value::Int(0)]),
                Row::new(vec![Value::Int(100)]),
                Row::new(vec![Value::Int(200)]),
                Row::new(vec![Value::Int(300)]),
                Row::new(vec![Value::Int(400)]),
            ]
        );
        assert_eq!(r.stats.requests, 5);
        assert_eq!(r.stats.s3_scanned_bytes, t.total_bytes(&ctx.store));
        assert!(r.stats.select_returned_bytes < 100);
        assert_eq!(r.stats.plain_bytes, 0);
    }

    #[test]
    fn select_scan_aggregates_merge_across_partitions() {
        let (ctx, t) = ctx_with_table(1000, 170);
        let stmt = parse_select(
            "SELECT SUM(v), COUNT(*), MIN(k), MAX(k), AVG(v) FROM S3Object WHERE k >= 10",
        )
        .unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        let expect_sum: f64 = (10..1000).map(|i| i as f64 / 2.0).sum();
        assert!((row[0].as_f64().unwrap() - expect_sum).abs() < 1e-6);
        assert_eq!(row[1], Value::Int(990));
        assert_eq!(row[2], Value::Int(10));
        assert_eq!(row[3], Value::Int(999));
        assert!((row[4].as_f64().unwrap() - expect_sum / 990.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_of_empty_match_is_null_and_zero() {
        let (ctx, t) = ctx_with_table(100, 30);
        let stmt =
            parse_select("SELECT SUM(v), COUNT(*) FROM S3Object WHERE k > 10000").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
        assert_eq!(r.rows[0][1], Value::Int(0));
    }

    #[test]
    fn limited_scan_stops_early_and_bills_less() {
        let (ctx, t) = ctx_with_table(1000, 100);
        let stmt = parse_select("SELECT k FROM S3Object LIMIT 150").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.rows.len(), 150);
        // First 150 rows in order.
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[149][0], Value::Int(149));
        // Only two partitions touched (100 + 50).
        assert_eq!(r.stats.requests, 2);
        assert!(r.stats.s3_scanned_bytes < t.total_bytes(&ctx.store) / 3);
    }

    #[test]
    fn scan_survives_transient_faults() {
        let (ctx, t) = ctx_with_table(100, 50);
        ctx.store.inject_faults(2);
        let r = plain_scan(&ctx, &t).unwrap();
        assert_eq!(r.rows.len(), 100);
    }

    #[test]
    fn missing_table_errors() {
        let store = S3Store::new();
        let ctx = QueryContext::new(store);
        let ghost = Table {
            name: "ghost".into(),
            bucket: "b".into(),
            prefix: "ghost".into(),
            schema: schema(),
            format: InputFormat::Csv,
            row_count: 0,
        };
        assert!(plain_scan(&ctx, &ghost).is_err());
    }

    #[test]
    fn expr_terms_propagate_to_stats() {
        let (ctx, t) = ctx_with_table(100, 100);
        let stmt =
            parse_select("SELECT k FROM S3Object WHERE k > 1 AND k < 50 AND v > 0.5").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.stats.expr_terms, 3);
    }
}
