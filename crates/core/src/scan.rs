//! Table scans: the two ways PushdownDB gets bytes out of S3.
//!
//! * [`plain_scan`] / [`plain_scan_streamed`] — GET every partition and
//!   deserialize on the compute node (the *baseline* path: all bytes
//!   cross the wire; billed as plain transfer, which is free in-region,
//!   plus compute time to parse).
//! * [`select_scan`] / [`select_scan_streamed`] — ship a `SELECT`
//!   statement to the storage engine for every partition (the *pushdown*
//!   path: bytes scanned and returned are billed; the response parses
//!   slower per byte, but there are fewer of them).
//!
//! # Streaming execution
//!
//! Both scans run partitions concurrently on a bounded worker pool and
//! deliver rows downstream as fixed-capacity [`RowBatch`]es **in
//! partition order**, so results stay deterministic. Each in-flight
//! partition feeds a small bounded queue; workers block once their queue
//! fills. Plain scans decode incrementally (CSV record-by-record,
//! columnar row-group-by-row-group), capping their peak resident rows at
//! `O(scan_threads × queue depth × batch_rows)` regardless of table
//! size. Select scans decode each partition's *response* before
//! batching, so their bound is `O(scan_threads × response rows)` — the
//! billed returned subset, not the table. The `*_streamed` entry points
//! expose the batch stream directly; [`plain_scan`] / [`select_scan`]
//! are thin collecting wrappers for callers that genuinely need the
//! full result.
//!
//! Aggregate statements are re-written per partition and merged on the
//! compute node — `AVG` is decomposed into `SUM`+`COUNT` because
//! per-partition averages do not merge.

use crate::catalog::Table;
use crate::context::QueryContext;
use pushdown_common::columnar::ColumnarBatch;
use pushdown_common::perf::PhaseStats;
use pushdown_common::row::{BatchBuilder, RowBatch};
use pushdown_common::{Error, Result, Row, Schema, Value};
use pushdown_format::columnar::ColumnarReader;
use pushdown_format::csv::CsvReader;
use pushdown_select::InputFormat;
use pushdown_sql::agg::AggFunc;
use pushdown_sql::ast::{SelectItem, SelectStmt};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::OnceLock;

/// Result of a fully materialized scan: rows, their schema, and the
/// phase footprint.
#[derive(Debug, Clone)]
pub struct ScanResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub stats: PhaseStats,
}

/// What a streamed scan reports once every batch has been consumed.
#[derive(Debug, Clone)]
pub struct ScanSummary {
    pub schema: Schema,
    pub stats: PhaseStats,
}

/// [`ScanSummary`] of a cache-aware scan, with per-partition hit/fill
/// counts for the EXPLAIN surface. Mem-tier hit bytes land in
/// `stats.cache_bytes`, disk-tier hit bytes in `stats.disk_bytes`, and
/// gap-fill bytes in `stats.plain_bytes` (a fill *is* a billed plain
/// GET — on a partial hit, exactly the gap ranges are billed).
#[derive(Debug, Clone)]
pub struct CachedScanSummary {
    pub schema: Schema,
    pub stats: PhaseStats,
    /// Partitions served entirely from the local segment cache (either
    /// tier, no remote bytes).
    pub hit_parts: u64,
    /// Partitions that fetched at least one gap range from the store
    /// (billed fills; a partial hit counts here, not in `hit_parts`).
    pub fill_parts: u64,
}

/// Full batches buffered per in-flight partition before its worker
/// blocks. Small on purpose: memory is bounded by
/// `scan_threads × (PARTITION_QUEUE_DEPTH + 1) × batch_rows` rows.
const PARTITION_QUEUE_DEPTH: usize = 2;

enum PartMsg<T> {
    Item(T),
    /// Terminates one partition's stream, carrying its phase footprint.
    Done(Result<PhaseStats>),
}

/// Handed to partition producers to push items downstream. Sending
/// blocks while the partition's queue is full; a consumer that aborts
/// the scan drops every receiver, which wakes all blocked senders with
/// a disconnection error.
pub struct Emitter<'a, T> {
    tx: &'a SyncSender<PartMsg<T>>,
}

impl<T> Emitter<'_, T> {
    fn send(&self, msg: PartMsg<T>) -> Result<()> {
        self.tx
            .send(msg)
            .map_err(|_| Error::Other("scan cancelled by consumer".into()))
    }

    pub fn emit(&self, item: T) -> Result<()> {
        self.send(PartMsg::Item(item))
    }
}

/// Run `produce` over every partition on `ctx.scan_threads` workers and
/// feed everything it emits to `consume` **in partition order**, merging
/// the per-partition [`PhaseStats`] the producers return.
///
/// Workers claim partitions in index order and push into one bounded
/// queue per partition; the consumer drains queues in index order, so
/// output order is deterministic while decode work overlaps across
/// partitions. A consumer error cancels outstanding producers.
fn stream_partitions<T, P, C>(
    ctx: &QueryContext,
    keys: &[String],
    produce: P,
    mut consume: C,
) -> Result<PhaseStats>
where
    T: Send,
    P: Fn(&str, &Emitter<'_, T>) -> Result<PhaseStats> + Sync,
    C: FnMut(T) -> Result<()>,
{
    let threads = ctx.scan_threads.clamp(1, keys.len().max(1));
    let mut senders = Vec::with_capacity(keys.len());
    let mut receivers = Vec::with_capacity(keys.len());
    for _ in keys {
        let (tx, rx) = sync_channel(PARTITION_QUEUE_DEPTH);
        senders.push(tx);
        receivers.push(rx);
    }
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let mut outcome: Result<PhaseStats> = Ok(PhaseStats::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= keys.len() || cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let emitter = Emitter { tx: &senders[i] };
                let result = produce(&keys[i], &emitter);
                let failed = result.is_err();
                // Best-effort: if the consumer aborted, this queue's
                // receiver is gone and the send simply errors.
                let _ = emitter.send(PartMsg::Done(result));
                if failed {
                    break;
                }
            });
        }

        let mut stats = PhaseStats::default();
        'partitions: for rx in &receivers {
            loop {
                match rx.recv() {
                    Ok(PartMsg::Item(item)) => {
                        if let Err(e) = consume(item) {
                            outcome = Err(e);
                            break 'partitions;
                        }
                    }
                    Ok(PartMsg::Done(Ok(part_stats))) => {
                        stats.merge(&part_stats);
                        break;
                    }
                    Ok(PartMsg::Done(Err(e))) => {
                        outcome = Err(e);
                        break 'partitions;
                    }
                    Err(_) => {
                        outcome = Err(Error::Other("partition worker exited unexpectedly".into()));
                        break 'partitions;
                    }
                }
            }
        }
        if outcome.is_ok() {
            outcome = Ok(stats);
        } else {
            // Abort: stop workers claiming new partitions, and drop every
            // receiver so producers blocked on full queues wake with a
            // disconnection error and the scope can join.
            cancelled.store(true, Ordering::Relaxed);
            receivers.clear();
        }
    });
    outcome
}

/// Run `f` once per partition on the worker pool, returning results in
/// partition order (the non-streaming fan-out used by aggregate scans).
fn for_each_partition<T, F>(ctx: &QueryContext, table: &Table, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&str) -> Result<T> + Sync,
{
    let keys = partition_keys(ctx, table)?;
    let mut out = Vec::with_capacity(keys.len());
    stream_partitions(
        ctx,
        &keys,
        |key, emitter| {
            emitter.emit(f(key)?)?;
            Ok(PhaseStats::default())
        },
        |item| {
            out.push(item);
            Ok(())
        },
    )?;
    Ok(out)
}

fn partition_keys(ctx: &QueryContext, table: &Table) -> Result<Vec<String>> {
    let mut keys = table.partitions(&ctx.store);
    if keys.is_empty() {
        return Err(Error::NoSuchKey(format!(
            "table `{}` has no partitions under s3://{}/{}/",
            table.name, table.bucket, table.prefix
        )));
    }
    // A partition filter (set by the scattered Gather path) narrows the
    // scan to its keys, preserving global listing order. The filter keys
    // come from the same listing, so the intersection is never empty.
    if let Some(filter) = &ctx.partition_filter {
        keys.retain(|k| filter.iter().any(|f| f == k));
        if keys.is_empty() {
            return Err(Error::NoSuchKey(format!(
                "partition filter matches no partition of table `{}`",
                table.name
            )));
        }
    }
    Ok(keys)
}

/// Decode one partition's bytes incrementally, pushing full batches out
/// through `sink`. Returns the number of rows decoded.
pub(crate) fn decode_partition_batches(
    data: bytes::Bytes,
    schema: &Schema,
    format: InputFormat,
    batch_rows: usize,
    mut sink: impl FnMut(RowBatch) -> Result<()>,
) -> Result<u64> {
    let mut builder = BatchBuilder::new(schema.clone(), batch_rows);
    let mut count = 0u64;
    match format {
        InputFormat::Csv | InputFormat::CsvNoHeader => {
            let reader = if format == InputFormat::Csv {
                CsvReader::with_header(&data, schema.clone())
            } else {
                CsvReader::without_header(&data, schema.clone())
            };
            for record in reader {
                count += 1;
                if let Some(full) = builder.push(record?.row) {
                    sink(full)?;
                }
            }
        }
        InputFormat::Columnar => {
            let reader = ColumnarReader::open(data)?;
            let all_cols: Vec<usize> = (0..schema.len()).collect();
            for g in 0..reader.num_row_groups() {
                for row in reader.read_rows_projected(g, &all_cols)? {
                    count += 1;
                    if let Some(full) = builder.push(row) {
                        sink(full)?;
                    }
                }
            }
        }
    }
    if let Some(tail) = builder.finish() {
        sink(tail)?;
    }
    Ok(count)
}

/// Columnar twin of [`decode_partition_batches`]: push
/// [`ColumnarBatch`]es of at most `batch_rows` rows. ColumnarLite
/// partitions decode group-at-a-time straight into typed column vectors
/// (no row materialization); CSV falls back to row decode and pivots each
/// batch into columns. Returns the number of rows decoded.
fn decode_partition_columnar(
    data: bytes::Bytes,
    schema: &Schema,
    format: InputFormat,
    batch_rows: usize,
    mut sink: impl FnMut(ColumnarBatch) -> Result<()>,
) -> Result<u64> {
    let mut count = 0u64;
    match format {
        InputFormat::Csv | InputFormat::CsvNoHeader => {
            let mut builder = BatchBuilder::new(schema.clone(), batch_rows);
            let reader = if format == InputFormat::Csv {
                CsvReader::with_header(&data, schema.clone())
            } else {
                CsvReader::without_header(&data, schema.clone())
            };
            for record in reader {
                count += 1;
                if let Some(full) = builder.push(record?.row) {
                    sink(ColumnarBatch::from_row_batch(&full))?;
                }
            }
            if let Some(tail) = builder.finish() {
                sink(ColumnarBatch::from_row_batch(&tail))?;
            }
        }
        InputFormat::Columnar => {
            let reader = ColumnarReader::open(data)?;
            for g in 0..reader.num_row_groups() {
                let group = reader.read_group_batch(g)?;
                count += group.len() as u64;
                for batch in group.chunks(batch_rows) {
                    sink(batch)?;
                }
            }
        }
    }
    Ok(count)
}

/// Baseline path, streaming: GET each partition, decode it batch-at-a-
/// time, and hand batches to `on_batch` in partition order. Peak
/// resident rows are bounded by the worker pool, not the table.
///
/// When the context has `cache_reads` set **and** the store carries a
/// [`pushdown_cache::SegmentCache`], partitions are read *through* the
/// cache instead ([`cached_scan_streamed`]): hits bill nothing, misses
/// fill. This is how `cached-local` plan candidates reuse every
/// server-side algorithm unchanged.
pub fn plain_scan_streamed(
    ctx: &QueryContext,
    table: &Table,
    mut on_batch: impl FnMut(RowBatch) -> Result<()>,
) -> Result<ScanSummary> {
    if ctx.cache_reads && ctx.store.cache().is_some() {
        let cached = cached_scan_streamed(ctx, table, on_batch)?;
        return Ok(ScanSummary {
            schema: cached.schema,
            stats: cached.stats,
        });
    }
    let keys = partition_keys(ctx, table)?;
    let stats = stream_partitions(
        ctx,
        &keys,
        |key, emitter| {
            let fetched = ctx.store.get_object_with(&table.bucket, key, &ctx.retry)?;
            let data = fetched.value;
            let mut part = PhaseStats {
                // Every retried attempt billed a request; meter them all so
                // metrics agree with the ledger even under injected faults.
                requests: u64::from(fetched.attempts),
                plain_bytes: data.len() as u64,
                // ColumnarLite bytes ingest at their own parse rate. Keyed
                // on the table format (not the execution path), so row and
                // columnar execution report identical stats.
                cl_parse_bytes: cl_bytes(table, data.len()),
                ..Default::default()
            };
            let rows = decode_partition_batches(
                data,
                &table.schema,
                table.format,
                ctx.batch_rows,
                |batch| emitter.emit(batch),
            )?;
            part.server_cpu_units += rows;
            Ok(part)
        },
        &mut on_batch,
    )?;
    Ok(ScanSummary {
        schema: table.schema.clone(),
        stats,
    })
}

/// The portion of a fetched partition that parses at
/// [`pushdown_common::perf::PerfParams::parse_cl_bw`]: all of it for
/// ColumnarLite tables, none for CSV.
fn cl_bytes(table: &Table, len: usize) -> u64 {
    if table.format == InputFormat::Columnar {
        len as u64
    } else {
        0
    }
}

/// Chunk layout used to cache one partition's bytes: ColumnarLite files
/// split at row-group extents (plus the footer as its own hot segment);
/// everything else splits into fixed blocks of
/// [`QueryContext::cache_chunk_bytes`]. An unreadable ColumnarLite file
/// caches as one whole-object chunk — the coarse path, never a wrong
/// layout.
pub(crate) fn chunk_layout(
    table: &Table,
    chunk_bytes: u64,
    data: &bytes::Bytes,
) -> Vec<(u64, u64)> {
    let len = data.len() as u64;
    match table.format {
        InputFormat::Columnar => ColumnarReader::open(data.clone())
            .map(|r| r.row_group_extents())
            .unwrap_or_else(|_| vec![(0, len)]),
        InputFormat::Csv | InputFormat::CsvNoHeader => {
            let step = chunk_bytes.max(1);
            (0..len)
                .step_by(step as usize)
                .map(|first| (first, (first + step).min(len)))
                .collect()
        }
    }
}

/// Fold one partition's [`pushdown_s3::ChunkedFetch`] into its
/// [`PhaseStats`] and the hit/fill partition counters.
fn account_chunked(
    fetched: &pushdown_s3::ChunkedFetch,
    table: &Table,
    hit_parts: &std::sync::atomic::AtomicU64,
    fill_parts: &std::sync::atomic::AtomicU64,
) -> PhaseStats {
    if fetched.hit {
        hit_parts.fetch_add(1, Ordering::Relaxed);
    } else {
        fill_parts.fetch_add(1, Ordering::Relaxed);
    }
    PhaseStats {
        // Every retried gap-GET attempt billed a request; meter them all
        // so metrics agree with the ledger even under injected faults.
        requests: u64::from(fetched.attempts),
        plain_bytes: fetched.gap_bytes,
        cache_bytes: fetched.mem_bytes,
        disk_bytes: fetched.disk_bytes,
        cl_parse_bytes: cl_bytes(table, fetched.data.len()),
        ..Default::default()
    }
}

/// Cache-aware baseline scan: read every partition **through** the
/// store's tiered segment cache at chunk granularity. Resident chunks
/// are served locally (mem-tier bytes in `stats.cache_bytes`, disk-tier
/// bytes in `stats.disk_bytes` — nothing billed, the virtual clock
/// advances at each tier's read bandwidth); only the gaps are fetched,
/// adjacent gaps coalesced into single range GETs under the uniform
/// [`pushdown_common::RetryPolicy`], billed exactly once (every attempt
/// a request, the bytes once) like any plain GET. Decoding and batch
/// delivery are identical to [`plain_scan_streamed`], so results are
/// byte-for-byte the same with the cache hot, partially warm, cold, or
/// absent.
pub fn cached_scan_streamed(
    ctx: &QueryContext,
    table: &Table,
    mut on_batch: impl FnMut(RowBatch) -> Result<()>,
) -> Result<CachedScanSummary> {
    let keys = partition_keys(ctx, table)?;
    let hit_parts = std::sync::atomic::AtomicU64::new(0);
    let fill_parts = std::sync::atomic::AtomicU64::new(0);
    let stats = stream_partitions(
        ctx,
        &keys,
        |key, emitter| {
            let fetched = ctx.store.get_object_chunked_cached_with(
                &table.bucket,
                key,
                &ctx.retry,
                |data| chunk_layout(table, ctx.cache_chunk_bytes, data),
            )?;
            let mut part = account_chunked(&fetched, table, &hit_parts, &fill_parts);
            let rows = decode_partition_batches(
                fetched.data,
                &table.schema,
                table.format,
                ctx.batch_rows,
                |batch| emitter.emit(batch),
            )?;
            part.server_cpu_units += rows;
            Ok(part)
        },
        &mut on_batch,
    )?;
    Ok(CachedScanSummary {
        schema: table.schema.clone(),
        stats,
        hit_parts: hit_parts.into_inner(),
        fill_parts: fill_parts.into_inner(),
    })
}

/// Vectorized twin of [`plain_scan_streamed`]: partitions decode into
/// [`ColumnarBatch`]es (typed column vectors, dictionary strings kept
/// coded) instead of row batches. Billing, retries, redirect-to-cache
/// behaviour and CPU accounting are identical to the row path — only the
/// in-memory representation handed to `on_batch` differs, so downstream
/// kernels can filter/aggregate column-at-a-time and materialize rows
/// late.
pub fn plain_scan_columnar_streamed(
    ctx: &QueryContext,
    table: &Table,
    mut on_batch: impl FnMut(ColumnarBatch) -> Result<()>,
) -> Result<ScanSummary> {
    if ctx.cache_reads && ctx.store.cache().is_some() {
        let cached = cached_scan_columnar_streamed(ctx, table, on_batch)?;
        return Ok(ScanSummary {
            schema: cached.schema,
            stats: cached.stats,
        });
    }
    let keys = partition_keys(ctx, table)?;
    let stats = stream_partitions(
        ctx,
        &keys,
        |key, emitter| {
            let fetched = ctx.store.get_object_with(&table.bucket, key, &ctx.retry)?;
            let data = fetched.value;
            let mut part = PhaseStats {
                requests: u64::from(fetched.attempts),
                plain_bytes: data.len() as u64,
                cl_parse_bytes: cl_bytes(table, data.len()),
                ..Default::default()
            };
            let rows = decode_partition_columnar(
                data,
                &table.schema,
                table.format,
                ctx.batch_rows,
                |batch| emitter.emit(batch),
            )?;
            part.server_cpu_units += rows;
            Ok(part)
        },
        &mut on_batch,
    )?;
    Ok(ScanSummary {
        schema: table.schema.clone(),
        stats,
    })
}

/// Vectorized twin of [`cached_scan_streamed`]: read every partition
/// through the segment cache, decoding into [`ColumnarBatch`]es. Hit and
/// fill accounting match the row path exactly.
pub fn cached_scan_columnar_streamed(
    ctx: &QueryContext,
    table: &Table,
    mut on_batch: impl FnMut(ColumnarBatch) -> Result<()>,
) -> Result<CachedScanSummary> {
    let keys = partition_keys(ctx, table)?;
    let hit_parts = std::sync::atomic::AtomicU64::new(0);
    let fill_parts = std::sync::atomic::AtomicU64::new(0);
    let stats = stream_partitions(
        ctx,
        &keys,
        |key, emitter| {
            let fetched = ctx.store.get_object_chunked_cached_with(
                &table.bucket,
                key,
                &ctx.retry,
                |data| chunk_layout(table, ctx.cache_chunk_bytes, data),
            )?;
            let mut part = account_chunked(&fetched, table, &hit_parts, &fill_parts);
            let rows = decode_partition_columnar(
                fetched.data,
                &table.schema,
                table.format,
                ctx.batch_rows,
                |batch| emitter.emit(batch),
            )?;
            part.server_cpu_units += rows;
            Ok(part)
        },
        &mut on_batch,
    )?;
    Ok(CachedScanSummary {
        schema: table.schema.clone(),
        stats,
        hit_parts: hit_parts.into_inner(),
        fill_parts: fill_parts.into_inner(),
    })
}

/// Baseline path: load whole partitions over the wire and parse locally.
/// Collecting wrapper over [`plain_scan_streamed`].
pub fn plain_scan(ctx: &QueryContext, table: &Table) -> Result<ScanResult> {
    let mut rows = Vec::new();
    let summary = plain_scan_streamed(ctx, table, |batch| {
        rows.extend(batch.rows);
        Ok(())
    })?;
    Ok(ScanResult {
        schema: summary.schema,
        rows,
        stats: summary.stats,
    })
}

/// How a per-partition aggregate column folds into the final answer.
enum MergeKind {
    Sum,
    Count,
    Min,
    Max,
    /// `AVG` decomposed: positions of its SUM and COUNT columns in the
    /// per-partition result.
    Avg {
        sum_col: usize,
        count_col: usize,
    },
}

fn accumulate_response(stats: &mut PhaseStats, resp: &pushdown_select::SelectResponse) {
    // attempts ≥ 1; each billed one ledger request (retries included).
    stats.requests += u64::from(resp.stats.attempts.max(1));
    stats.s3_scanned_bytes += resp.stats.bytes_scanned;
    stats.select_returned_bytes += resp.stats.bytes_returned;
    stats.server_cpu_units += resp.stats.records_returned;
    stats.expr_terms = stats.expr_terms.max(resp.stats.expr_terms);
}

/// Pushdown path, streaming: run `stmt` against every partition via S3
/// Select and deliver response rows as batches in partition order.
///
/// * Scalar statements stream with full partition parallelism. Each
///   worker materializes its partition's *response* rows before
///   batching, so peak residency follows the billed returned subset
///   (small under pushdown), not the table.
/// * `LIMIT` statements query partitions *sequentially* and stop early
///   (the sampling phases of §VI-B and §VII-A rely on the scan — and its
///   bill — stopping with the limit), streaming each response.
/// * Aggregate statements produce their single merged row as one batch.
pub fn select_scan_streamed(
    ctx: &QueryContext,
    table: &Table,
    stmt: &SelectStmt,
    mut on_batch: impl FnMut(RowBatch) -> Result<()>,
) -> Result<ScanSummary> {
    if stmt.is_aggregate() || stmt.limit.is_some() {
        // Both shapes produce bounded output (one row, or ≤ LIMIT rows):
        // materialize via the dedicated paths and re-batch.
        let scan = select_scan(ctx, table, stmt)?;
        for batch in RowBatch::chunks(&scan.schema, scan.rows, ctx.batch_rows) {
            on_batch(batch)?;
        }
        return Ok(ScanSummary {
            schema: scan.schema,
            stats: scan.stats,
        });
    }

    let keys = partition_keys(ctx, table)?;
    let schema_slot: OnceLock<Schema> = OnceLock::new();
    let stats = stream_partitions(
        ctx,
        &keys,
        |key, emitter| {
            let resp =
                ctx.engine
                    .select_stmt(&table.bucket, key, stmt, &table.schema, table.format)?;
            let mut part = PhaseStats::default();
            accumulate_response(&mut part, &resp);
            let _ = schema_slot.set(resp.output_schema.clone());
            let rows = resp.rows()?;
            for batch in RowBatch::chunks(&resp.output_schema, rows, ctx.batch_rows) {
                emitter.emit(batch)?;
            }
            Ok(part)
        },
        &mut on_batch,
    )?;
    let schema = schema_slot
        .into_inner()
        .expect("at least one partition responded");
    Ok(ScanSummary { schema, stats })
}

/// Pushdown path: run `stmt` against every partition via S3 Select and
/// merge the responses. Collecting wrapper over the streaming scans.
pub fn select_scan(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<ScanResult> {
    if stmt.is_aggregate() {
        select_scan_aggregate(ctx, table, stmt)
    } else if stmt.limit.is_some() {
        select_scan_limited(ctx, table, stmt)
    } else {
        let mut rows = Vec::new();
        let summary = select_scan_streamed(ctx, table, stmt, |batch| {
            rows.extend(batch.rows);
            Ok(())
        })?;
        Ok(ScanResult {
            schema: summary.schema,
            rows,
            stats: summary.stats,
        })
    }
}

fn select_scan_limited(ctx: &QueryContext, table: &Table, stmt: &SelectStmt) -> Result<ScanResult> {
    let limit = stmt.limit.expect("limited scan") as usize;
    let mut stats = PhaseStats::default();
    let mut rows = Vec::new();
    let mut schema = None;
    for key in table.partitions(&ctx.store) {
        let remaining = limit - rows.len();
        if remaining == 0 {
            break;
        }
        let mut part_stmt = stmt.clone();
        part_stmt.limit = Some(remaining as u64);
        let resp =
            ctx.engine
                .select_stmt(&table.bucket, &key, &part_stmt, &table.schema, table.format)?;
        accumulate_response(&mut stats, &resp);
        if schema.is_none() {
            schema = Some(resp.output_schema.clone());
        }
        rows.extend(resp.rows()?);
    }
    let schema = schema
        .ok_or_else(|| Error::NoSuchKey(format!("table `{}` has no partitions", table.name)))?;
    Ok(ScanResult {
        schema,
        rows,
        stats,
    })
}

/// Run a `LIMIT`-bounded statement with the limit **striped across
/// partitions** (per-partition shares) instead of taking a prefix of the
/// table.
///
/// A plain `LIMIT n` scan ([`select_scan`]) queries partitions in order
/// and stops early, so it returns the table's first `n` rows *in storage
/// order* — a prefix, not a sample. Phases that treat the result as a
/// sample (the §VII-A top-K sampling phase, statistics probes) degrade
/// badly on sorted input: the prefix is the most biased subset possible.
/// This scan gives partition `i` the share `⌊(i+1)·n/P⌋ − ⌊i·n/P⌋`
/// (shares telescope to exactly `n`), so
/// every partition contributes proportionally and the worst-case bias is
/// bounded by the per-partition storage order. Shares run concurrently
/// on the worker pool; rows return in partition order (deterministic).
pub fn select_scan_striped_limit(
    ctx: &QueryContext,
    table: &Table,
    stmt: &SelectStmt,
    limit: usize,
) -> Result<ScanResult> {
    let keys = partition_keys(ctx, table)?;
    let parts = keys.len();
    let limit = limit.max(1);
    let share_of = |key: &str| -> u64 {
        let i = keys
            .iter()
            .position(|k| k == key)
            .expect("key comes from the same partition listing");
        ((i + 1) * limit / parts - i * limit / parts) as u64
    };
    let responses = for_each_partition(ctx, table, |key| {
        let share = share_of(key);
        if share == 0 {
            return Ok(None);
        }
        let mut part_stmt = stmt.clone();
        part_stmt.limit = Some(share);
        ctx.engine
            .select_stmt(&table.bucket, key, &part_stmt, &table.schema, table.format)
            .map(Some)
    })?;
    let mut stats = PhaseStats::default();
    let mut rows = Vec::new();
    let mut schema = None;
    for resp in responses.into_iter().flatten() {
        accumulate_response(&mut stats, &resp);
        if schema.is_none() {
            schema = Some(resp.output_schema.clone());
        }
        rows.extend(resp.rows()?);
    }
    let schema = schema
        .ok_or_else(|| Error::NoSuchKey(format!("table `{}` has no partitions", table.name)))?;
    Ok(ScanResult {
        schema,
        rows,
        stats,
    })
}

fn select_scan_aggregate(
    ctx: &QueryContext,
    table: &Table,
    stmt: &SelectStmt,
) -> Result<ScanResult> {
    // Rewrite: one partition-level item list, plus merge instructions that
    // map partition columns back to the original items.
    let mut part_items: Vec<SelectItem> = Vec::new();
    let mut merges: Vec<MergeKind> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Agg { func, arg, alias } => match func {
                AggFunc::Sum => {
                    merges.push(MergeKind::Sum);
                    part_items.push(item.clone());
                }
                AggFunc::Count => {
                    merges.push(MergeKind::Count);
                    part_items.push(item.clone());
                }
                AggFunc::Min => {
                    merges.push(MergeKind::Min);
                    part_items.push(item.clone());
                }
                AggFunc::Max => {
                    merges.push(MergeKind::Max);
                    part_items.push(item.clone());
                }
                AggFunc::Avg => {
                    let sum_col = part_items.len();
                    part_items.push(SelectItem::Agg {
                        func: AggFunc::Sum,
                        arg: arg.clone(),
                        alias: alias.clone(),
                    });
                    part_items.push(SelectItem::Agg {
                        func: AggFunc::Count,
                        arg: arg.clone(),
                        alias: None,
                    });
                    merges.push(MergeKind::Avg {
                        sum_col,
                        count_col: sum_col + 1,
                    });
                }
            },
            other => {
                return Err(Error::Bind(format!(
                    "aggregate scan cannot contain scalar item `{other}`"
                )))
            }
        }
    }
    let part_stmt = SelectStmt {
        items: part_items,
        alias: stmt.alias.clone(),
        where_clause: stmt.where_clause.clone(),
        limit: None,
    };

    let responses = for_each_partition(ctx, table, |key| {
        ctx.engine
            .select_stmt(&table.bucket, key, &part_stmt, &table.schema, table.format)
    })?;

    let mut stats = PhaseStats::default();
    let mut partials: Vec<Row> = Vec::new();
    let mut part_schema = None;
    for resp in responses {
        accumulate_response(&mut stats, &resp);
        if part_schema.is_none() {
            part_schema = Some(resp.output_schema.clone());
        }
        partials.extend(resp.rows()?);
    }
    let part_schema = part_schema.expect("at least one partition");

    // Merge partition rows according to the merge plan.
    let mut out: Vec<Value> = Vec::with_capacity(stmt.items.len());
    let mut col_of_item: Vec<usize> = Vec::new();
    {
        let mut c = 0;
        for m in &merges {
            col_of_item.push(c);
            c += match m {
                MergeKind::Avg { .. } => 2,
                _ => 1,
            };
        }
    }
    for (m, &col) in merges.iter().zip(&col_of_item) {
        let column = |idx: usize| partials.iter().map(move |r| r[idx].clone());
        let merged = match m {
            MergeKind::Sum | MergeKind::Count => {
                let mut acc = AggFunc::Sum.accumulator();
                for v in column(col) {
                    acc.update(&v)?;
                }
                match (m, acc.finish()) {
                    // COUNT of zero partitions/nulls is 0, not NULL.
                    (MergeKind::Count, Value::Null) => Value::Int(0),
                    (_, v) => v,
                }
            }
            MergeKind::Min => {
                let mut acc = AggFunc::Min.accumulator();
                for v in column(col) {
                    acc.update(&v)?;
                }
                acc.finish()
            }
            MergeKind::Max => {
                let mut acc = AggFunc::Max.accumulator();
                for v in column(col) {
                    acc.update(&v)?;
                }
                acc.finish()
            }
            MergeKind::Avg { sum_col, count_col } => {
                let mut total = 0.0;
                let mut n: i64 = 0;
                for r in &partials {
                    if !r[*sum_col].is_null() {
                        total += r[*sum_col].as_f64()?;
                    }
                    n += r[*count_col].as_i64()?;
                }
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(total / n as f64)
                }
            }
        };
        out.push(merged);
    }
    stats.server_cpu_units += partials.len() as u64;

    // Output schema: named like the original statement's items.
    let fields: Vec<pushdown_common::Field> = stmt
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let SelectItem::Agg { func, alias, .. } = item else {
                unreachable!()
            };
            let name = alias.clone().unwrap_or_else(|| format!("_{}", i + 1));
            let dtype = match func {
                AggFunc::Count => pushdown_common::DataType::Int,
                AggFunc::Avg => pushdown_common::DataType::Float,
                _ => {
                    // Take the partition schema's type for the first column
                    // of this item.
                    part_schema.dtype_of(col_of_item[i])
                }
            };
            pushdown_common::Field::new(name, dtype)
        })
        .collect();

    Ok(ScanResult {
        schema: Schema::new(fields),
        rows: vec![Row::new(out)],
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{upload_columnar_table, upload_csv_table};
    use pushdown_common::DataType;
    use pushdown_format::columnar::WriterOptions;
    use pushdown_s3::S3Store;
    use pushdown_sql::parse_select;

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64), Value::Float(i as f64 / 2.0)]))
            .collect()
    }

    fn ctx_with_table(n: usize, per_part: usize) -> (QueryContext, Table) {
        let store = S3Store::new();
        let t = upload_csv_table(&store, "b", "t", &schema(), &rows(n), per_part).unwrap();
        (QueryContext::new(store), t)
    }

    #[test]
    fn plain_scan_reads_everything_in_order() {
        let (ctx, t) = ctx_with_table(500, 100);
        let r = plain_scan(&ctx, &t).unwrap();
        assert_eq!(r.rows, rows(500));
        assert_eq!(r.stats.requests, 5);
        assert_eq!(r.stats.plain_bytes, t.total_bytes(&ctx.store));
        assert_eq!(r.stats.s3_scanned_bytes, 0);
    }

    #[test]
    fn streamed_scan_batches_are_bounded_ordered_and_complete() {
        let (mut ctx, t) = ctx_with_table(1000, 170);
        ctx.batch_rows = 64;
        let mut seen = Vec::new();
        let mut max_batch = 0;
        let summary = plain_scan_streamed(&ctx, &t, |batch| {
            assert!(!batch.is_empty());
            max_batch = max_batch.max(batch.len());
            seen.extend(batch.rows);
            Ok(())
        })
        .unwrap();
        // Batches respect the capacity, arrive in partition order, and
        // concatenate to exactly the materialized result.
        assert!(max_batch <= 64);
        assert_eq!(seen, rows(1000));
        let materialized = plain_scan(&ctx, &t).unwrap();
        assert_eq!(summary.stats, materialized.stats);
        assert_eq!(summary.schema, materialized.schema);
    }

    #[test]
    fn streamed_scan_matches_across_batch_sizes_and_threads() {
        let (ctx, t) = ctx_with_table(700, 90);
        let want = plain_scan(&ctx, &t).unwrap();
        for (batch_rows, threads) in [(1, 1), (7, 2), (256, 8), (100_000, 3)] {
            let mut ctx2 = ctx.clone();
            ctx2.batch_rows = batch_rows;
            ctx2.scan_threads = threads;
            let got = plain_scan(&ctx2, &t).unwrap();
            assert_eq!(got.rows, want.rows, "batch {batch_rows} threads {threads}");
            assert_eq!(got.stats, want.stats);
        }
    }

    #[test]
    fn streamed_select_scan_matches_materialized() {
        let (mut ctx, t) = ctx_with_table(900, 128);
        ctx.batch_rows = 50;
        let stmt = parse_select("SELECT k FROM S3Object WHERE k % 3 = 0").unwrap();
        let mut streamed = Vec::new();
        let summary = select_scan_streamed(&ctx, &t, &stmt, |batch| {
            assert!(batch.len() <= 50);
            streamed.extend(batch.rows);
            Ok(())
        })
        .unwrap();
        let materialized = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(streamed, materialized.rows);
        assert_eq!(summary.stats, materialized.stats);
    }

    #[test]
    fn streamed_scan_consumer_errors_cancel_cleanly() {
        let (mut ctx, t) = ctx_with_table(5000, 100);
        ctx.batch_rows = 32;
        let mut batches = 0;
        let err = plain_scan_streamed(&ctx, &t, |_| {
            batches += 1;
            if batches == 3 {
                Err(Error::Other("stop".into()))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), Error::Other("stop".into()).to_string());
    }

    #[test]
    fn streamed_columnar_scan_preserves_rows() {
        let store = S3Store::new();
        let t = upload_columnar_table(
            &store,
            "b",
            "t",
            &schema(),
            &rows(600),
            150,
            WriterOptions {
                rows_per_group: 47,
                compress: true,
            },
        )
        .unwrap();
        let mut ctx = QueryContext::new(store);
        ctx.batch_rows = 33;
        let mut seen = Vec::new();
        plain_scan_streamed(&ctx, &t, |batch| {
            assert!(batch.len() <= 33);
            seen.extend(batch.rows);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, rows(600));
    }

    fn columnar_table(store: &S3Store, n: usize, per_part: usize) -> Table {
        upload_columnar_table(
            store,
            "b",
            "t",
            &schema(),
            &rows(n),
            per_part,
            WriterOptions {
                rows_per_group: 47,
                compress: true,
            },
        )
        .unwrap()
    }

    #[test]
    fn columnar_scan_matches_row_scan_rows_and_stats() {
        let store = S3Store::new();
        let t = columnar_table(&store, 600, 150);
        let mut ctx = QueryContext::new(store);
        ctx.batch_rows = 33;
        let mut row_rows = Vec::new();
        let row_summary = plain_scan_streamed(&ctx, &t, |b| {
            row_rows.extend(b.rows);
            Ok(())
        })
        .unwrap();
        let mut col_rows = Vec::new();
        let col_summary = plain_scan_columnar_streamed(&ctx, &t, |b| {
            assert!(b.len() <= 33);
            col_rows.extend(b.to_rows());
            Ok(())
        })
        .unwrap();
        assert_eq!(col_rows, row_rows);
        // Billing and parse accounting are representation-invariant: the
        // ColumnarLite bytes parsed are keyed on the table format, so the
        // row path reports them too.
        assert_eq!(col_summary.stats, row_summary.stats);
        assert!(col_summary.stats.cl_parse_bytes > 0);
        assert_eq!(
            col_summary.stats.cl_parse_bytes,
            col_summary.stats.plain_bytes
        );
    }

    #[test]
    fn columnar_scan_over_csv_falls_back_to_row_decode() {
        let (mut ctx, t) = ctx_with_table(400, 90);
        ctx.batch_rows = 64;
        let want = plain_scan(&ctx, &t).unwrap();
        let mut got = Vec::new();
        let summary = plain_scan_columnar_streamed(&ctx, &t, |b| {
            assert!(b.len() <= 64);
            got.extend(b.to_rows());
            Ok(())
        })
        .unwrap();
        assert_eq!(got, want.rows);
        assert_eq!(summary.stats, want.stats);
        // CSV bytes are not ColumnarLite-encoded.
        assert_eq!(summary.stats.cl_parse_bytes, 0);
    }

    #[test]
    fn columnar_scan_invariant_across_batch_sizes_and_threads() {
        let store = S3Store::new();
        let t = columnar_table(&store, 700, 160);
        let ctx = QueryContext::new(store);
        let mut want_rows = Vec::new();
        let want = plain_scan_columnar_streamed(&ctx, &t, |b| {
            want_rows.extend(b.to_rows());
            Ok(())
        })
        .unwrap();
        for (batch_rows, threads) in [(1, 1), (7, 2), (256, 8), (100_000, 3)] {
            let mut ctx2 = ctx.clone();
            ctx2.batch_rows = batch_rows;
            ctx2.scan_threads = threads;
            let mut got_rows = Vec::new();
            let got = plain_scan_columnar_streamed(&ctx2, &t, |b| {
                got_rows.extend(b.to_rows());
                Ok(())
            })
            .unwrap();
            assert_eq!(got_rows, want_rows, "batch {batch_rows} threads {threads}");
            assert_eq!(got.stats, want.stats);
        }
    }

    #[test]
    fn cached_columnar_scan_accounting_matches_row_path() {
        let store = S3Store::new();
        store.set_cache(Some(pushdown_cache::SegmentCache::new(
            1 << 30,
            pushdown_common::Pricing::us_east(),
        )));
        let t = columnar_table(&store, 500, 120);
        let ctx = QueryContext::new(store).with_cache_reads(true);

        // Cold pass fills the cache through the row path.
        let mut cold_rows = Vec::new();
        let cold = cached_scan_streamed(&ctx, &t, |b| {
            cold_rows.extend(b.rows);
            Ok(())
        })
        .unwrap();
        assert_eq!(cold.fill_parts, cold.hit_parts + cold.fill_parts);

        // Warm columnar pass: every partition hits, nothing billed.
        let mut warm_rows = Vec::new();
        let warm = cached_scan_columnar_streamed(&ctx, &t, |b| {
            warm_rows.extend(b.to_rows());
            Ok(())
        })
        .unwrap();
        assert_eq!(warm_rows, cold_rows);
        assert_eq!(warm.hit_parts, cold.fill_parts);
        assert_eq!(warm.fill_parts, 0);
        assert_eq!(warm.stats.requests, 0);
        assert_eq!(warm.stats.plain_bytes, 0);
        assert_eq!(warm.stats.cache_bytes, cold.stats.plain_bytes);
        assert_eq!(warm.stats.cl_parse_bytes, cold.stats.cl_parse_bytes);
        assert_eq!(warm.stats.server_cpu_units, cold.stats.server_cpu_units);
    }

    #[test]
    fn select_scan_filters_across_partitions() {
        let (ctx, t) = ctx_with_table(500, 100);
        let stmt = parse_select("SELECT k FROM S3Object WHERE k % 100 = 0").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(
            r.rows,
            vec![
                Row::new(vec![Value::Int(0)]),
                Row::new(vec![Value::Int(100)]),
                Row::new(vec![Value::Int(200)]),
                Row::new(vec![Value::Int(300)]),
                Row::new(vec![Value::Int(400)]),
            ]
        );
        assert_eq!(r.stats.requests, 5);
        assert_eq!(r.stats.s3_scanned_bytes, t.total_bytes(&ctx.store));
        assert!(r.stats.select_returned_bytes < 100);
        assert_eq!(r.stats.plain_bytes, 0);
    }

    #[test]
    fn select_scan_aggregates_merge_across_partitions() {
        let (ctx, t) = ctx_with_table(1000, 170);
        let stmt = parse_select(
            "SELECT SUM(v), COUNT(*), MIN(k), MAX(k), AVG(v) FROM S3Object WHERE k >= 10",
        )
        .unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        let expect_sum: f64 = (10..1000).map(|i| i as f64 / 2.0).sum();
        assert!((row[0].as_f64().unwrap() - expect_sum).abs() < 1e-6);
        assert_eq!(row[1], Value::Int(990));
        assert_eq!(row[2], Value::Int(10));
        assert_eq!(row[3], Value::Int(999));
        assert!((row[4].as_f64().unwrap() - expect_sum / 990.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_of_empty_match_is_null_and_zero() {
        let (ctx, t) = ctx_with_table(100, 30);
        let stmt = parse_select("SELECT SUM(v), COUNT(*) FROM S3Object WHERE k > 10000").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
        assert_eq!(r.rows[0][1], Value::Int(0));
    }

    #[test]
    fn limited_scan_stops_early_and_bills_less() {
        let (ctx, t) = ctx_with_table(1000, 100);
        let stmt = parse_select("SELECT k FROM S3Object LIMIT 150").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.rows.len(), 150);
        // First 150 rows in order.
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[149][0], Value::Int(149));
        // Only two partitions touched (100 + 50).
        assert_eq!(r.stats.requests, 2);
        assert!(r.stats.s3_scanned_bytes < t.total_bytes(&ctx.store) / 3);
    }

    #[test]
    fn scan_survives_transient_faults() {
        let (mut ctx, t) = ctx_with_table(100, 50);
        ctx.store
            .set_fault_plan(Some(pushdown_s3::FaultPlan::new(5, 0.4)));
        ctx.retry = pushdown_common::RetryPolicy::with_attempts(16);
        let r = plain_scan(&ctx, &t).unwrap();
        assert_eq!(r.rows.len(), 100);
        // Retried attempts are metered as extra requests (2 partitions).
        assert!(r.stats.requests >= 2);
        assert_eq!(r.stats.requests, ctx.billed().requests);
    }

    #[test]
    fn missing_table_errors() {
        let store = S3Store::new();
        let ctx = QueryContext::new(store);
        let ghost = Table {
            name: "ghost".into(),
            bucket: "b".into(),
            prefix: "ghost".into(),
            schema: schema(),
            format: InputFormat::Csv,
            row_count: 0,
            stats: None,
        };
        assert!(plain_scan(&ctx, &ghost).is_err());
    }

    #[test]
    fn expr_terms_propagate_to_stats() {
        let (ctx, t) = ctx_with_table(100, 100);
        let stmt =
            parse_select("SELECT k FROM S3Object WHERE k > 1 AND k < 50 AND v > 0.5").unwrap();
        let r = select_scan(&ctx, &t, &stmt).unwrap();
        assert_eq!(r.stats.expr_terms, 3);
    }
}
