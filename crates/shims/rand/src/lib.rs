//! Offline stand-in for the `rand` crate (0.9-era API).
//!
//! Provides [`rngs::StdRng`], [`Rng`] and [`SeedableRng`] with exactly the
//! methods this workspace calls: `random_range` over integer and float
//! ranges, `random::<f64>()`, and `random_bool`. The generator is a
//! deterministic xoshiro256** seeded through splitmix64 — statistically
//! solid for test-data generation, not cryptographic.

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait StandardSample {
    fn sample(rng: &mut impl Rng) -> Self;
}

impl StandardSample for f64 {
    fn sample(rng: &mut impl Rng) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample(rng: &mut impl Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample(rng: &mut impl Rng) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample(rng: &mut impl Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for i64 {
    fn sample(rng: &mut impl Rng) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample(rng: &mut impl Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can draw from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl Rng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        start + u * (end - start)
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// The subset of `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the real `StdRng` is also a
    /// seedable, deterministic generator; algorithms differ, streams are
    /// stable within this workspace).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.random_range(3..17i64);
            assert!((3..17).contains(&v));
            let w = a.random_range(0..=5usize);
            assert!(w <= 5);
            let f = a.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = a.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probabilities() {
        let mut r = StdRng::seed_from_u64(7);
        let n = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&n), "{n}");
    }
}
