//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the small subset of the real API it actually uses: [`Bytes`] as a
//! cheaply cloneable, sliceable, immutable byte buffer backed by an
//! `Arc<[u8]>`. Semantics match the real crate for this subset; swap the
//! workspace dependency for the real `bytes` when a registry is available.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer viewing a static slice (copied here; the real crate
    /// borrows, which only changes allocation behavior, not semantics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted, like the real
    /// crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not be greater than end");
        assert!(end <= len, "range end out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.slice(1..).to_vec(), vec![2, 3]);
        assert_eq!(b.len(), 5);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0u8; 3]);
        let _ = b.slice(0..4);
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from("abc"));
        assert_eq!(Bytes::from(String::from("xy")).to_vec(), b"xy".to_vec());
    }
}
