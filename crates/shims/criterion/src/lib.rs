//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! a minimal timing harness with the same surface the workspace's bench
//! targets use: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs a short warm-up, then a fixed number of timed
//! iterations, and prints median/mean timings (plus throughput when
//! declared). There is no statistical analysis, HTML report, or CLI
//! filtering — swap in the real `criterion` when a registry is available.

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in `iter_batched` (accepted for
/// API compatibility; every batch size maps to one input per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Declared work per iteration, used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, self.measurement_time, None, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for compatibility with generated mains; no CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(
            &full,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records one timing sample per call
/// to `iter`/`iter_batched`.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iterations as u32);
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iterations as u32);
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up + calibration: find an iteration count that keeps the whole
    // run near the measurement budget.
    let mut calib = Bencher {
        samples: Vec::new(),
        iterations: 1,
    };
    f(&mut calib);
    let per_iter = calib.samples.last().copied().unwrap_or(Duration::ZERO);
    let budget = measurement_time.as_secs_f64() / sample_size.max(1) as f64;
    let iterations = if per_iter.is_zero() {
        1000
    } else {
        (budget / per_iter.as_secs_f64()).clamp(1.0, 10_000.0) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let mut line = format!(
        "{name}: median {:.3?}, mean {:.3?} ({} samples x {} iters)",
        median,
        mean,
        samples.len(),
        iterations
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(b) => {
                line.push_str(&format!(", {:.1} MiB/s", per_sec(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!(", {:.0} elem/s", per_sec(e)));
            }
        }
    }
    println!("{line}");
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
