//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (a poisoned std lock is recovered transparently, which matches
//! `parking_lot`'s behavior of not poisoning at all). Only the subset the
//! workspace uses is provided.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
