//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! a compact, deterministic property-testing harness covering the subset
//! of the real API the test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`, multiple
//!   `#[test]` functions, `arg in strategy` bindings);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_oneof!`] (plain and weighted arms);
//! * strategies: numeric ranges, `any::<T>()`, `Just`, regex-like string
//!   literals (`"[a-z]{0,6}"`), tuples, `prop_map`, `prop_recursive`,
//!   `boxed`, and [`collection::vec`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic run-to-run) and failing inputs are
//! reported but **not shrunk**.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator state (xoshiro256**, seeded from the test
    /// path so every test has its own stable stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seed from an arbitrary label (e.g. the test's module path).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking: a
    /// strategy simply produces one value per case.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values passing `f`, regenerating otherwise. Panics
        /// (citing `reason`) if 1000 consecutive draws all fail — a
        /// filter that tight should be rewritten as a constructive
        /// strategy.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Depth-bounded recursive strategy. `depth` is honored; the
        /// size/branch hints are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                // Mix the base back in at every level so generated trees
                // have varied depth rather than always hitting the bound.
                level =
                    Union::weighted(vec![(1, base.clone()), (2, recurse(level).boxed())]).boxed();
            }
            level
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// `prop_filter` combinator: rejection sampling with a bounded retry
    /// budget.
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.reason
            );
        }
    }

    /// Weighted choice between strategies of a common value type
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    // ---- numeric range strategies ----------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.unit_f64() * (end - start)
        }
    }

    // ---- string pattern strategies ---------------------------------

    /// String literals act as regex-like generators for the subset
    /// `[class]{lo,hi}` / `[class]{n}` / literal characters, e.g.
    /// `"[a-zA-Z0-9 ']{0,12}"` or `"[ -~]{0,20}"`.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '[' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed class in pattern `{pattern}`"));
                let alphabet = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                let (lo, hi, next) = parse_quantifier(&chars, i, pattern);
                i = next;
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
                }
            } else {
                // Literal character (optionally quantified).
                let c = chars[i];
                i += 1;
                let (lo, hi, next) = parse_quantifier(&chars, i, pattern);
                i = next;
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(c);
                }
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty class in pattern `{pattern}`");
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                assert!(lo <= hi, "inverted class range in pattern `{pattern}`");
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).unwrap());
                }
                j += 3;
            } else {
                alphabet.push(class[j]);
                j += 1;
            }
        }
        alphabet
    }

    /// Parse `{lo,hi}` or `{n}` at position `i`; defaults to `{1}`.
    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = chars[i + 1..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| p + i + 1)
            .unwrap_or_else(|| panic!("unclosed quantifier in pattern `{pattern}`"));
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("quantifier lower bound"),
                b.trim().parse().expect("quantifier upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        };
        assert!(lo <= hi, "inverted quantifier in pattern `{pattern}`");
        (lo, hi, close + 1)
    }

    // ---- tuple strategies ------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix full-range values with small magnitudes so edge
                    // cases near zero are exercised often.
                    let raw = rng.next_u64();
                    match rng.next_u64() % 4 {
                        0 => (raw % 17) as $t,
                        1 => (raw % 1024) as $t,
                        _ => raw as $t,
                    }
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            const SPECIALS: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::EPSILON,
            ];
            if rng.next_u64().is_multiple_of(16) {
                SPECIALS[(rng.next_u64() % SPECIALS.len() as u64) as usize]
            } else {
                (rng.unit_f64() - 0.5) * 2e9
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(32 + (rng.next_u64() % 95) as u32).unwrap()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Accepted size specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec<T>` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// Re-export the guts the macros reference through `$crate`.
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// The entry point: a block of deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ( $($strat,)+ );
            for case in 0..config.cases {
                let ( $($arg,)+ ) = {
                    let ( $(ref $arg,)+ ) = strategies;
                    ( $($crate::strategy::Strategy::new_value($arg, &mut rng),)+ )
                };
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert within a property; failure aborts only the current case with
/// the generated inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i64..5, b in 0usize..10, f in -1.0f64..1.0) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(v in collection::vec((0i32..3, any::<bool>()), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (x, _) in &v {
                prop_assert!((0..3).contains(x));
            }
        }

        #[test]
        fn string_patterns_match_their_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![3 => (0i64..5).prop_map(|x| x * 2), 1 => Just(-1i64)]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..10).contains(&v)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => (*v >= 0 && *v < 10) as usize,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..200 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 16);
        }
    }
}
