//! # pushdown-format
//!
//! Storage formats for PushdownDB:
//!
//! * [`csv`] — the row format of all primary experiments (paper §III) and
//!   of every S3 Select response (§IX), with exact per-record byte ranges
//!   for the §IV-A index tables;
//! * [`columnar`] — **ColumnarLite**, the Parquet-substitute for the
//!   Fig-11 experiments: row groups, column chunks, min/max statistics,
//!   dictionary encoding, block compression;
//! * [`compress`] — the self-contained LZ codec standing in for Snappy.

pub mod columnar;
pub mod compress;
pub mod csv;

pub use columnar::{ColumnarReader, ColumnarWriter, WriterOptions};
pub use csv::{CsvReader, CsvRecord, CsvWriter};
